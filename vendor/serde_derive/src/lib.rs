//! No-op `Serialize` / `Deserialize` derives for the offline serde stub.
//!
//! The workspace never serializes at runtime, so the derives only need to
//! exist, accept the usual `#[serde(...)]` helper attribute, and expand to
//! nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the stubbed `Serialize` is a marker trait with no items.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stubbed `Deserialize` is a marker trait with no items.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
