//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate re-implements exactly the
//! API surface the workspace consumes — [`RngCore`], [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`] and [`rngs::StdRng`] — on top of
//! xoshiro256++ seeded through SplitMix64. The stream differs from upstream
//! `rand`'s ChaCha12-based `StdRng`, but every consumer in this workspace
//! only relies on *determinism for a fixed seed* and sound statistical
//! quality, both of which xoshiro256++ provides.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`]; infallible for every generator here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample: Sized {
    /// Draws one value from the generator.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against round-off.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        (self.start + u * (self.end - self.start)).min(self.end - f32::EPSILON)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded via SplitMix64 so that nearby integer seeds yield
    /// decorrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_plausibly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut ok = [0u8; 5];
        rng.try_fill_bytes(&mut ok).unwrap();
    }
}
