//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The real crate cannot be fetched in this build environment, so this stub
//! implements the pieces the workspace's property tests consume: the
//! [`proptest!`] macro over `arg in strategy` bindings, range / tuple /
//! `any::<T>()` strategies, `collection::vec` / `collection::hash_set`, and
//! the `prop_assert*` macros. Generation is deterministic: each test case's
//! RNG is derived from the test's name and the case index, so failures are
//! reproducible run-to-run. Shrinking is intentionally not implemented.
//!
//! The case count defaults to 32 and honours `PROPTEST_CASES` like the real
//! crate.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs, from `PROPTEST_CASES` (default 32).
#[must_use]
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for `case` of the property named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)`; `lo` when the span is empty.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64() % (hi - lo)
        }
    }
}

/// A value generator; the stub's equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.unit() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        })
        .generate(rng) as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let mag = (rng.unit() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection size specifications: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.below(self.lo as u64, self.hi as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `HashSet` strategy: distinct elements from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut set = HashSet::with_capacity(target);
            // Duplicates are possible; cap the attempts so tiny domains
            // cannot loop forever and settle for a smaller set instead.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 32 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Arbitrary, Just, SizeRange, Strategy, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `fn name(arg in strategy, ...) { body }` form used across
/// this workspace. Each property runs [`cases`] times with a deterministic
/// per-case RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg =
                        $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Generated floats stay inside their strategy range.
        #[test]
        fn floats_in_range(x in 2.0f64..5.0) {
            prop_assert!((2.0..5.0).contains(&x));
        }

        /// Vec strategies honour their size bounds.
        #[test]
        fn vecs_sized(v in crate::collection::vec(0usize..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        /// Tuple + any strategies compose.
        #[test]
        fn tuples_compose(pair in (any::<bool>(), 0i32..4)) {
            let (_b, i) = pair;
            prop_assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn hash_sets_are_distinct() {
        let mut rng = TestRng::for_case("hash_sets", 0);
        let s = crate::collection::hash_set((-5i32..5, -5i32..5), 2..10);
        let set = Strategy::generate(&s, &mut rng);
        assert!(set.len() >= 2 || set.len() < 10);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("p", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
