//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize` / `Deserialize` on its result and
//! statistics types but never serializes them at runtime (no `serde_json`,
//! no `bincode` — the bench suite writes CSV by hand). With no registry
//! access in the build environment, this stub keeps the derives compiling:
//! the traits are markers and the derive macros (from the sibling
//! `serde_derive` stub) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
