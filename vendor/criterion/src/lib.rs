//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides [`Criterion::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of the real
//! crate's statistical engine, each benchmark is warmed up briefly and then
//! timed over enough iterations to fill a fixed measurement window; the
//! mean wall-clock per iteration is printed in a `name: time` row. That is
//! enough to compare hot paths before/after a change in this offline
//! environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Mirrors the real crate's CLI hook; accepts no arguments here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as the benchmark `name` and prints a mean-time row.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            println!(
                "{name}: time {} ({} iterations)",
                fmt_time(per_iter),
                b.iters
            );
        } else {
            println!("{name}: no iterations recorded");
        }
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly: first until the warm-up window elapses, then
    /// until the measurement window elapses, timing the measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if started.elapsed() >= self.measurement {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = started.elapsed();
    }
}

/// Bundles benchmark functions into a callable group, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
