//! Extending the mixture of experts with a user-defined memory function —
//! the paper's headline extensibility claim (§1, §3.4): "new functions can
//! easily be added and are selected only when appropriate", with no
//! retraining of the selector.
//!
//! The new expert models footprints that grow with the *square root* of
//! the input (e.g. an application whose cache scales with an index over
//! the data): `y = m·√x + b`.
//!
//! ```sh
//! cargo run --release --example custom_expert
//! ```

use mlkit::regression::{CurveFamily, FittedCurve};
use moe_core::calibration::CalibratedModel;
use moe_core::expert::MemoryExpert;
use moe_core::features::FeatureVector;
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use moe_core::MoeError;
use std::sync::Arc;

/// `y = m·√x + b`, calibrated exactly from two points.
#[derive(Debug)]
struct SqrtExpert;

impl MemoryExpert for SqrtExpert {
    fn name(&self) -> &str {
        "Square-Root Regression"
    }

    fn formula(&self) -> &str {
        "y = m*sqrt(x) + b"
    }

    fn fit(&self, xs: &[f64], ys: &[f64]) -> Result<CalibratedModel, MoeError> {
        // Linear in √x: reuse the linear least-squares machinery.
        let sqrt_xs: Vec<f64> = xs.iter().map(|x| x.max(0.0).sqrt()).collect();
        let lin = mlkit::regression::fit_linear(&sqrt_xs, ys)
            .map_err(|e| MoeError::InvalidTraining(e.to_string()))?;
        // Carry the coefficients on a linear curve over √x; evaluation
        // below goes through the same transform.
        Ok(CalibratedModel::from_curve(FittedCurve {
            family: CurveFamily::Linear,
            m: lin.m,
            b: lin.b,
        }))
    }

    fn calibrate(&self, p1: (f64, f64), p2: (f64, f64)) -> Result<CalibratedModel, MoeError> {
        self.fit(&[p1.0, p2.0], &[p1.1, p2.1])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A registry with the three built-in Table 1 experts...
    let mut registry = ExpertRegistry::builtin();
    println!("built-in experts:");
    for (id, expert) in registry.iter() {
        println!("  {id}: {:<36} {}", expert.name(), expert.formula());
    }

    // ...plus the user-defined fourth one.
    let sqrt_id = registry.register(Arc::new(SqrtExpert));
    println!("registered {sqrt_id}: Square-Root Regression (y = m*sqrt(x) + b)\n");

    // Train a selector where one synthetic program family exhibits the
    // new behaviour. Feature vectors: the √-family has a distinctive
    // signature on the first half of the features.
    let mut programs = Vec::new();
    for j in 0..4 {
        let jf = f64::from(j) * 0.01;
        programs.push(TrainingProgram::new(
            format!("linear-app-{j}"),
            FeatureVector::from_fn(|i| if i < 11 { 0.2 + jf } else { 0.8 }),
            registry.id_of("Linear Regression").expect("builtin"),
        ));
        programs.push(TrainingProgram::new(
            format!("sqrt-app-{j}"),
            FeatureVector::from_fn(|i| if i < 11 { 0.9 + jf } else { 0.1 }),
            sqrt_id,
        ));
    }
    let predictor = MoePredictor::train(registry, &programs, PredictorConfig::default())?;

    // An unseen application resembling the √ family arrives.
    let features = FeatureVector::from_fn(|i| if i < 11 { 0.88 } else { 0.12 });
    let selection = predictor.select(&features)?;
    println!(
        "selector chose: {} (distance {:.3})",
        predictor.registry().get(selection.expert)?.name(),
        selection.distance
    );
    assert_eq!(selection.expert, sqrt_id);

    // Calibrate on two profiling points of a true √ curve y = 3√x + 1.
    let truth = |x: f64| 3.0 * x.sqrt() + 1.0;
    let model = predictor.calibrate(selection.expert, (1.0, truth(1.0)), (4.0, truth(4.0)))?;
    println!(
        "\ncalibrated y = m*sqrt(x) + b on (1, {:.1}) and (4, {:.1}):",
        truth(1.0),
        truth(4.0)
    );
    for x in [9.0f64, 25.0, 100.0] {
        // The model stores (m, b) over √x; evaluate through the transform.
        let predicted = model.curve().m * x.sqrt() + model.curve().b;
        println!(
            "  x = {x:>5.0} GB  →  predicted {predicted:>6.2} GB (truth {:>6.2} GB)",
            truth(x)
        );
    }
    println!("\nNo selector retraining was needed to support the new expert.");
    Ok(())
}
