//! A small co-location campaign: one random 11-application mix (scenario
//! L5 of Table 3) scheduled on the paper's 40-node cluster under four
//! policies, reporting the paper's two metrics.
//!
//! ```sh
//! cargo run --release --example colocation_campaign
//! ```

use colocate::harness::{run_policy, RunConfig};
use colocate::scheduler::PolicyKind;
use simkit::SimRng;
use workloads::mixes::resolve;
use workloads::{Catalog, MixScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mut rng = SimRng::seed_from(5);
    let scenario = MixScenario::TABLE3[4]; // L5: 11 applications
    let mix = scenario.random_mix(&catalog, &mut rng);

    println!("scenario {} — {} applications:", scenario.name(), mix.len());
    for entry in &mix {
        println!("  {:<22} {}", resolve(&catalog, entry).name(), entry.size);
    }

    println!(
        "\n{:<14} {:>8} {:>12} {:>16} {:>6}",
        "policy", "STP", "ANTT red.", "makespan (min)", "OOMs"
    );
    println!("{}", "-".repeat(60));
    for policy in [
        PolicyKind::Pairwise,
        PolicyKind::Quasar,
        PolicyKind::Moe,
        PolicyKind::Oracle,
    ] {
        let out = run_policy(policy, &catalog, &mix, &config, 5)?;
        println!(
            "{:<14} {:>8.2} {:>11.1}% {:>16.1} {:>6}",
            out.schedule.policy,
            out.normalized.normalized_stp,
            out.normalized.antt_reduction_pct,
            out.makespan_secs / 60.0,
            out.schedule.oom_kills
        );
    }
    println!("\n(higher STP and higher ANTT reduction are better; Oracle is the ceiling)");
    Ok(())
}
