//! Quickstart: train the mixture-of-experts system offline, then predict
//! the memory needs of an unseen Spark application and size an executor
//! under a memory budget — the §4 runtime flow in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use colocate::predictors::{MemoryPredictor, MoePolicy};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{train_system, TrainingConfig};
use simkit::SimRng;
use workloads::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline (Fig. 2): profile the 16 HiBench/BigDataBench training
    // programs, fit each one's memory function, train the KNN selector.
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(2026);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng)?;
    println!("trained on {} programs; {} experts registered", 16, 3);

    // Runtime (§4.1): an application from a suite never seen in training
    // arrives with a 30 GB input. Profile ~100 MB for features plus two
    // small calibration runs.
    let app = catalog.by_name("SB.TriangleCount").expect("catalog");
    let (profile, cost) = profile_app(app, 30.0, 40, 64.0, &ProfilingConfig::default(), &mut rng);
    println!(
        "profiled {}: {:.1} s feature extraction, {:.1} s calibration \
         ({:.2} GB of input processed — it counts toward the job)",
        app.name(),
        cost.feature_secs,
        cost.calibration_secs,
        cost.profiled_gb
    );

    // Select the expert and calibrate its two coefficients.
    let moe = MoePolicy::new(system.clone());
    let prediction = moe.predict(&profile)?;
    let selection = system.predictor.select(&profile.features)?;
    let expert = system.predictor.registry().get(selection.expert)?;
    println!(
        "selected expert: {} (distance {:.3}{})",
        expert.name(),
        selection.distance,
        if selection.low_confidence {
            ", LOW CONFIDENCE — conservative fallback"
        } else {
            ""
        }
    );

    // The two questions the dispatcher asks (§4.3).
    for slice in [2.0, 8.0, 25.0] {
        println!(
            "  executor holding {slice:>4.1} GB  →  predicted footprint {:>6.2} GB \
             (ground truth {:>6.2} GB)",
            prediction.model.footprint_gb(slice),
            app.true_footprint_gb(slice)
        );
    }
    let budget = 40.0;
    match prediction.model.max_input_for_budget(budget) {
        Some(x) => println!(
            "  under a {budget:.0} GB budget the executor can cache {:.1} GB of input",
            x
        ),
        None => println!("  nothing fits under a {budget:.0} GB budget"),
    }
    Ok(())
}
