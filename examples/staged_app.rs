//! A multi-stage Spark job: build a stage DAG, execute it on the
//! substrate, and budget memory for it with §3.4-style phase modeling —
//! each stage profiled as its own application, the composite model
//! answering with peak-safe numbers.
//!
//! ```sh
//! cargo run --release --example staged_app
//! ```

use mlkit::regression::{CurveFamily, FittedCurve};
use moe_core::expert::ExpertId;
use moe_core::features::FeatureVector;
use moe_core::phases::{PhaseProfile, PhasedModel};
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::ClusterEngine;
use sparklite::perf::InterferenceModel;
use sparklite::stages::{run_staged_isolated, StageSpec, StagedApp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A classic shuffle job: read -> {map_a, map_b} -> join.
    let read_curve = FittedCurve {
        family: CurveFamily::Exponential,
        m: 6.0,
        b: 1.5,
    };
    let map_curve = FittedCurve {
        family: CurveFamily::Linear,
        m: 0.4,
        b: 1.0,
    };
    let join_curve = FittedCurve {
        family: CurveFamily::NapierianLog,
        m: 14.0,
        b: 1.6,
    };
    let stage = |name: &str, data: f64, cpu: f64, curve: FittedCurve| StageSpec {
        name: name.into(),
        data_gb: data,
        rate_gb_per_s: 0.05,
        cpu_util: cpu,
        memory_curve: curve,
    };
    let app = StagedApp::new(
        "shuffle-join",
        vec![
            stage("read", 24.0, 0.2, read_curve),
            stage("map_a", 12.0, 0.4, map_curve),
            stage("map_b", 12.0, 0.4, map_curve),
            stage("join", 18.0, 0.35, join_curve),
        ],
        vec![vec![], vec![0], vec![0], vec![1, 2]],
    )?;

    println!("stage DAG '{}':", app.name());
    for (i, s) in app.stages().iter().enumerate() {
        println!(
            "  [{i}] {:<6} {:>5.1} GB  cpu {:>3.0} %  deps {:?}",
            s.name,
            s.data_gb,
            s.cpu_util * 100.0,
            app.deps_of(i)
        );
    }
    println!("topological order: {:?}", app.topological_order().unwrap());

    // Execute it on two nodes.
    let mut engine = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
    let nodes = engine.cluster().node_ids();
    let makespan = run_staged_isolated(&mut engine, &app, &nodes, 0.0)?;
    println!("\nexecuted in {:.1} min on 2 nodes", makespan / 60.0);

    // Phase modeling: profile each stage as its own application (three
    // clusters of synthetic features stand in for profiling runs) and
    // compose the peak-safe model.
    let cluster_features =
        |c: usize| FeatureVector::from_fn(|i| if i / 8 == c { 0.9 } else { 0.1 });
    let registry = ExpertRegistry::builtin();
    let mut programs = Vec::new();
    for c in 0..3 {
        for j in 0..3 {
            let mut f = cluster_features(c);
            f.set(moe_core::features::RawFeature::Sy, 0.1 + j as f64 * 0.01);
            programs.push(TrainingProgram::new(
                format!("train-{c}-{j}"),
                f,
                ExpertId::from_usize(c),
            ));
        }
    }
    let predictor = MoePredictor::train(registry, &programs, PredictorConfig::default())?;

    // Profiles: the read stage looks exponential (cluster 1), the maps
    // linear (cluster 0), the join logarithmic (cluster 2).
    let profile = |name: &str, c: usize, curve: &FittedCurve| PhaseProfile {
        name: name.into(),
        features: cluster_features(c),
        calibration: [(1.0, curve.eval(1.0)), (2.0, curve.eval(2.0))],
    };
    let model = PhasedModel::from_profiles(
        &predictor,
        &[
            profile("read", 1, &read_curve),
            profile("map", 0, &map_curve),
            profile("join", 2, &join_curve),
        ],
    )?;

    println!("\nphase-aware memory answers:");
    for slice in [4.0, 12.0, 40.0] {
        let dominant = model.dominant_phase(slice);
        println!(
            "  slice {slice:>5.1} GB → peak {:>6.2} GB (dominated by '{}')",
            model.peak_footprint_gb(slice),
            dominant.name
        );
    }
    let budget = 16.0;
    match model.max_input_for_budget(budget) {
        Some(x) => {
            println!("  a {budget:.0} GB budget safely hosts {x:.1} GB slices across all phases")
        }
        None => println!("  nothing fits a {budget:.0} GB budget"),
    }
    Ok(())
}
