//! Driving the sparklite substrate directly: submit applications, place
//! executors by hand, watch contention, paging and OOM behaviour — the
//! machinery underneath every scheduling policy.
//!
//! ```sh
//! cargo run --release --example online_cluster
//! ```

use mlkit::regression::{CurveFamily, FittedCurve};
use sparklite::app::AppSpec;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::ClusterEngine;
use sparklite::perf::{InterferenceModel, MemoryPressure};

fn spec(name: &str, input_gb: f64, cpu: f64, m: f64, b: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        input_gb,
        rate_gb_per_s: 0.02,
        cpu_util: cpu,
        memory_curve: FittedCurve {
            family: CurveFamily::Linear,
            m,
            b,
        },
        footprint_noise_sd: 0.0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
    let node = engine.cluster().node_ids()[0];

    // Two well-behaved tenants.
    let a = engine.submit(spec("etl", 20.0, 0.30, 0.8, 2.0));
    let b = engine.submit(spec("train", 20.0, 0.35, 0.9, 1.5));
    engine.spawn_executor(a, node, 20.0, 18.0)?;
    engine.spawn_executor(b, node, 20.0, 19.5)?;
    println!(
        "node0 after two spawns: cpu load {:.0} %, free memory {:.1} GB, pressure {:?}",
        engine.node_cpu_load(node) * 100.0,
        engine.node_free_memory(node),
        engine.memory_pressure(node)
    );

    // A third tenant under-declares its memory: the scheduler reserves
    // 10 GB but the executor actually needs ~47 GB — RAM + swap blow past
    // their limits and the engine reports an OOM condition.
    let c = engine.submit(spec("rogue", 50.0, 0.25, 0.9, 2.0));
    engine.spawn_executor(c, node, 50.0, 10.0)?;
    println!(
        "after the rogue spawn: pressure {:?}",
        engine.memory_pressure(node)
    );
    if matches!(engine.memory_pressure(node), MemoryPressure::OutOfMemory) {
        let victim = engine.oom_victim(node).expect("someone to kill");
        let owner = engine.executor(victim)?.app();
        let returned = engine.kill_executor(victim)?;
        println!(
            "OOM killer removed {victim} (owner {owner}); {returned:.1} GB of input re-queued"
        );
    }

    // Run the remaining executors to completion, reporting progress.
    while let Some((dt, done)) = engine.next_completion() {
        engine.advance(dt);
        let exec = engine.executor(done)?;
        println!(
            "t+{dt:>8.1}s  {done} finished its {:.1} GB slice for {}",
            exec.slice_gb(),
            exec.app()
        );
        engine.complete_executor(done)?;
    }
    println!(
        "etl finished: {}; train finished: {}; rogue remains unfinished: {} GB unassigned",
        engine.app(a).is_finished(),
        engine.app(b).is_finished(),
        engine.app(c).unassigned_gb()
    );
    Ok(())
}
