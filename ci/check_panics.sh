#!/usr/bin/env bash
# Panic-freedom gate for the crash-consistency-critical paths: the journal
# layer, the campaign harness, checkpoint codecs, the bench emission
# helpers, the hot-path cache modules (event queue slab + calendar
# backend, sharded engine rate cache + tournament tree, monitor window
# memoization), the mlkit compute kernels, the ML campaign drivers, the
# scale-sweep workload builders, the open-system layer (arrival plans +
# admission service), the chaos-search harness (episode generation +
# shrinking, invariant battery, fig22 driver), the prediction
# serving path (model artifacts, micro-batching, the firehose and its
# fig23 driver), and the intra-simulation parallelism layer (the
# simkit::par primitives and the fig20 threads-axis driver) must not
# contain `unwrap()` / `expect(` outside test code.
#
# Intentional exceptions live in ci/panic_allowlist.txt as
# `<path>:<needle>` lines; a gated line is tolerated iff it contains the
# needle verbatim. Keep the list short and justified.
set -euo pipefail

cd "$(dirname "$0")/.."

GATED_FILES=(
  crates/simkit/src/journal.rs
  crates/colocate/src/checkpoint.rs
  crates/colocate/src/harness.rs
  crates/bench/src/fsutil.rs
  crates/bench/src/report.rs
  crates/bench/src/csv.rs
  crates/bench/src/lib.rs
  crates/simkit/src/event.rs
  crates/sparklite/src/engine.rs
  crates/sparklite/src/tourney.rs
  crates/sparklite/src/monitor.rs
  crates/bench/src/scalekit.rs
  crates/mlkit/src/kernels.rs
  crates/mlkit/src/linalg.rs
  crates/mlkit/src/knn.rs
  crates/colocate/src/predictors.rs
  crates/colocate/src/training.rs
  crates/bench/src/mlcamp.rs
  crates/simkit/src/arrivals.rs
  crates/colocate/src/service.rs
  crates/simkit/src/chaoskit.rs
  crates/colocate/src/invariants.rs
  crates/bench/src/bin/fig22_chaos_search.rs
  crates/colocate/src/serving.rs
  crates/bench/src/serving.rs
  crates/bench/src/bin/fig23_serving.rs
  crates/simkit/src/par.rs
  crates/bench/src/bin/fig20_scale.rs
)

ALLOWLIST=ci/panic_allowlist.txt
fail=0

for f in "${GATED_FILES[@]}"; do
  # Strip everything from the unit-test module to EOF: the gate covers
  # runtime code only, and these crates keep tests in a trailing
  # `#[cfg(test)]` block by convention.
  hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
    | grep -n '\.unwrap()\|\.expect(' \
    | grep -v 'unwrap_or' || true)
  [ -z "$hits" ] && continue
  while IFS= read -r hit; do
    line=${hit%%:*}
    text=${hit#*:}
    allowed=0
    if [ -f "$ALLOWLIST" ]; then
      while IFS= read -r rule; do
        case $rule in ''|'#'*) continue ;; esac
        rule_path=${rule%%:*}
        rule_needle=${rule#*:}
        if [ "$rule_path" = "$f" ] && [ "${text#*"$rule_needle"}" != "$text" ]; then
          allowed=1
          break
        fi
      done < "$ALLOWLIST"
    fi
    if [ "$allowed" -eq 0 ]; then
      echo "PANIC GATE: $f:$line: $text" >&2
      fail=1
    fi
  done <<< "$hits"
done

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "unwrap()/expect( found in crash-consistency-critical non-test code." >&2
  echo "Return a typed error instead, or add a justified line to $ALLOWLIST." >&2
  exit 1
fi
echo "panic gate: clean"
