//! # spark-moe — memory-aware Spark task co-location, reproduced in Rust
//!
//! An open-source reproduction of *"Improving Spark Application Throughput
//! Via Memory Aware Task Co-location: A Mixture of Experts Approach"*
//! (Marco, Taylor, Porter, Wang — Middleware '17), built as a Cargo
//! workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`moe_core`] | the paper's contribution: mixture-of-experts memory modeling |
//! | [`mlkit`] | from-scratch ML: PCA, Varimax, KNN, trees, forests, NB, SVM, MLP, curve fitting |
//! | [`sparklite`] | Spark-like substrate: executors, memory/paging/OOM, interference |
//! | [`simkit`] | deterministic discrete-event simulation core |
//! | [`workloads`] | the 44 evaluated benchmarks, PARSEC co-runners, Table 3/4 mixes |
//! | [`colocate`] | the runtime system + every comparative scheduler + metrics |
//!
//! This façade crate re-exports the workspace members and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). See `README.md` for a guided tour, `DESIGN.md` for the
//! paper-to-module map, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use colocate::training::{train_system, TrainingConfig};
//! use colocate::predictors::{MemoryPredictor, MoePolicy};
//! use colocate::profiling::{profile_app, ProfilingConfig};
//! use simkit::SimRng;
//! use workloads::Catalog;
//!
//! let catalog = Catalog::paper();
//! let mut rng = SimRng::seed_from(7);
//! let system = train_system(&catalog, &TrainingConfig::default(), &mut rng)?;
//! let moe = MoePolicy::new(system);
//!
//! // Predict the memory needs of an application never seen in training.
//! let app = catalog.by_name("SB.TriangleCount").unwrap();
//! let (profile, _cost) = profile_app(app, 30.0, 40, 64.0, &ProfilingConfig::default(), &mut rng);
//! let prediction = moe.predict(&profile)?;
//! let footprint = prediction.model.footprint_gb(8.0);
//! assert!(footprint > 0.0);
//! # Ok::<(), colocate::ColocateError>(())
//! ```

pub use colocate;
pub use mlkit;
pub use moe_core;
pub use simkit;
pub use sparklite;
pub use workloads;
