//! `spark-moe-sim` — run co-location campaigns from the command line.
//!
//! ```text
//! spark-moe-sim [--policy moe|oracle|pairwise|quasar|online|isolated|all]
//!               [--scenario L1..L10] [--mixes N] [--seed N] [--nodes N]
//! ```
//!
//! Prints normalized STP, ANTT reduction, makespan and OOM kills per
//! policy, averaged over the requested number of random mixes.

use colocate::harness::{evaluate_scenario_multi, RunConfig};
use colocate::scheduler::PolicyKind;
use sparklite::cluster::ClusterSpec;
use workloads::{Catalog, MixScenario};

#[derive(Debug)]
struct Args {
    policies: Vec<PolicyKind>,
    scenario: MixScenario,
    mixes: usize,
    seed: u64,
    nodes: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: spark-moe-sim [--policy moe|oracle|pairwise|quasar|online|isolated|all]\n\
         \x20                   [--scenario L1..L10] [--mixes N] [--seed N] [--nodes N]"
    );
    std::process::exit(2)
}

fn parse_policy(name: &str) -> Option<Vec<PolicyKind>> {
    Some(match name {
        "moe" | "ours" => vec![PolicyKind::Moe],
        "oracle" => vec![PolicyKind::Oracle],
        "pairwise" => vec![PolicyKind::Pairwise],
        "quasar" => vec![PolicyKind::Quasar],
        "online" => vec![PolicyKind::OnlineSearch],
        "isolated" => vec![PolicyKind::Isolated],
        "all" => vec![
            PolicyKind::Pairwise,
            PolicyKind::OnlineSearch,
            PolicyKind::Quasar,
            PolicyKind::Moe,
            PolicyKind::Oracle,
        ],
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        policies: parse_policy("all").expect("static"),
        scenario: MixScenario::TABLE3[4],
        mixes: 3,
        seed: 42,
        nodes: 40,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).unwrap_or_else(|| usage());
        match flag {
            "--policy" => args.policies = parse_policy(value).unwrap_or_else(|| usage()),
            "--scenario" => {
                let label: usize = value
                    .trim_start_matches(['L', 'l'])
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.scenario = *MixScenario::TABLE3
                    .iter()
                    .find(|s| s.label == label)
                    .unwrap_or_else(|| usage());
            }
            "--mixes" => args.mixes = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let catalog = Catalog::paper();
    let mut config = RunConfig::default();
    config.scheduler.cluster = ClusterSpec::small(args.nodes);

    println!(
        "scenario {} ({} apps) on {} nodes — {} mixes, seed {}",
        args.scenario.name(),
        args.scenario.apps,
        args.nodes,
        args.mixes,
        args.seed
    );
    println!(
        "{:<14} {:>10} {:>12} {:>18}",
        "policy", "STP", "ANTT red.", "STP [min, max]"
    );
    println!("{}", "-".repeat(58));

    let stats = evaluate_scenario_multi(
        &args.policies,
        args.scenario,
        &catalog,
        &config,
        args.mixes,
        args.seed,
    )
    .unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(1)
    });
    for (policy, s) in args.policies.iter().zip(stats.per_policy.iter()) {
        println!(
            "{:<14} {:>10.2} {:>11.1}% {:>18}",
            policy.display_name(),
            s.stp_mean,
            s.antt_mean,
            format!("[{:.2}, {:.2}]", s.stp_min_max.0, s.stp_min_max.1)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_parse() {
        assert_eq!(parse_policy("moe").unwrap(), vec![PolicyKind::Moe]);
        assert_eq!(parse_policy("ours").unwrap(), vec![PolicyKind::Moe]);
        assert_eq!(parse_policy("oracle").unwrap(), vec![PolicyKind::Oracle]);
        assert_eq!(parse_policy("all").unwrap().len(), 5);
        assert!(parse_policy("bogus").is_none());
    }

    #[test]
    fn all_excludes_isolated_baseline() {
        // "all" compares co-location schemes; the isolated baseline enters
        // through the metrics, not as a row.
        assert!(!parse_policy("all").unwrap().contains(&PolicyKind::Isolated));
    }
}
