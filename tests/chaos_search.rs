//! Chaos-search acceptance: a seeded episode budget checks out
//! deterministically (same seed → identical report at every worker
//! count, all the way through the serialised `BENCH_chaossearch.json`
//! bytes), episode replay is a pure function of `(seed, episode)`, and
//! the delta-debugging shrinker reduces a violating episode to a minimal
//! reproducer.
//!
//! The development sweeps behind this PR (~10k episodes across several
//! spaces and base seeds, including 1-node clusters and saturated fault
//! storms) surfaced no real invariant violations — the battery's
//! regression value is pinned here instead: `the_swept_budget_is_clean`
//! locks the default space at seed 42 as violation-free, so any future
//! change that breaks job conservation, committed-GB accounting, WFQ
//! ordering, breaker liveness or quarantine finiteness turns this test
//! red with a shrunk reproducer in the failure message.

use bench_suite::report::chaossearch_json;
use colocate::invariants::{chaos_search, check_episode, search_space, SearchConfig, PRESETS};
use simkit::chaoskit::{shrink, Episode, Violation};
use workloads::Catalog;

fn small_search(workers: usize) -> SearchConfig {
    SearchConfig {
        episodes: 12,
        base_seed: 42,
        shrink_budget: 64,
        workers,
        space: search_space(),
    }
}

/// The acceptance bar: the default swept budget is clean, and if it ever
/// stops being clean the failure message carries the minimal reproducer.
#[test]
fn the_swept_budget_is_clean() {
    let catalog = Catalog::paper();
    let report = chaos_search(&catalog, &small_search(1));
    assert_eq!(report.episodes, 12);
    assert!(
        report.violations.is_empty(),
        "invariant violations found; minimal reproducers:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "  [{}] {} — replay: {}",
                v.violation.invariant,
                v.violation.detail,
                v.shrink.episode.to_json()
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Same seed, same report — including the serialised JSON — at every
/// worker count: invariant (f) of the battery.
#[test]
fn search_reports_are_worker_count_bit_identical() {
    let catalog = Catalog::paper();
    let serial = chaos_search(&catalog, &small_search(1));
    let parallel = chaos_search(&catalog, &small_search(4));
    assert_eq!(serial, parallel);
    assert_eq!(
        chaossearch_json(&serial, None),
        chaossearch_json(&parallel, None),
        "BENCH_chaossearch.json must not depend on the worker count"
    );
}

/// Two identical searches produce byte-identical artifacts — the
/// `(seed, episode)` replay contract end to end.
#[test]
fn search_replays_bit_identically_from_the_seed() {
    let catalog = Catalog::paper();
    let a = chaossearch_json(&chaos_search(&catalog, &small_search(2)), None);
    let b = chaossearch_json(&chaos_search(&catalog, &small_search(2)), None);
    assert_eq!(a, b);
}

/// An episode's check is a pure function of the episode: replaying any
/// drawn episode — including across every preset — yields the same
/// verdict both times.
#[test]
fn episode_checks_replay_deterministically_across_presets() {
    let catalog = Catalog::paper();
    let space = search_space();
    let mut seen_presets = vec![false; PRESETS];
    for seed in 100..112 {
        let episode = Episode::draw(seed, &space);
        seen_presets[episode.preset] = true;
        assert_eq!(
            check_episode(&catalog, &episode),
            check_episode(&catalog, &episode),
            "episode seed {seed} must replay to the same verdict"
        );
    }
    assert!(
        seen_presets.iter().filter(|&&s| s).count() >= 3,
        "12 draws should land on most presets; got {seen_presets:?}"
    );
}

/// End-to-end shrink on a real (synthetic-invariant) violation: wire a
/// checker that flags any episode whose fault plan still contains a
/// node-crash, and confirm the minimal reproducer is a single fault with
/// its duration halved to the floor — and that it replays from the
/// episode alone.
#[test]
fn shrinking_produces_a_replayable_minimal_reproducer() {
    let space = search_space();
    // Find a drawn episode that actually contains a node crash.
    let (episode, violation) = (0..64)
        .find_map(|seed| {
            let e = Episode::draw(seed, &space);
            synthetic_check(&e).map(|v| (e, v))
        })
        .expect("64 draws at full intensity must include a node crash");
    let result = shrink(&episode, violation, 10_000, synthetic_check);
    assert!(!result.exhausted);
    assert_eq!(
        result.episode.faults.len(),
        1,
        "one node-crash fault must suffice"
    );
    assert!(
        result.episode.arrivals.is_empty(),
        "arrivals are irrelevant to this invariant and must all drop"
    );
    // The reproducer replays from the episode alone: re-checking it (the
    // single source of truth a bug report would carry) re-fires the same
    // violation, bit for bit.
    assert_eq!(
        synthetic_check(&result.episode),
        Some(result.violation.clone())
    );
    let json = result.episode.to_json();
    assert_eq!(json, result.episode.to_json());
}

fn synthetic_check(e: &Episode) -> Option<Violation> {
    e.faults
        .iter()
        .any(|f| matches!(f.kind, simkit::faults::FaultKind::NodeCrash { .. }))
        .then(|| Violation::new("synthetic-node-crash", "plan contains a node crash"))
}
