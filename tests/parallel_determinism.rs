//! Determinism under campaign parallelism: the thread-pool fan-out in
//! `colocate::harness` must be a pure optimisation. For a fixed seed, a
//! campaign's statistics are required to be **bit-for-bit identical** for
//! every worker count (the replays commit in index order), and the
//! isolated-baseline cache must return exactly what uncached solo runs
//! produce.

use colocate::harness::{
    evaluate_scenario, evaluate_scenario_multi, isolated_times, BaselineCache, RunConfig,
    ScenarioStats,
};
use colocate::scheduler::{PolicyKind, SchedulerConfig};
use simkit::SimRng;
use sparklite::cluster::ClusterSpec;
use workloads::{Catalog, MixScenario};

fn config_with_workers(workers: usize) -> RunConfig {
    config_with_cluster(workers, ClusterSpec::small(4))
}

fn config_with_cluster(workers: usize, cluster: ClusterSpec) -> RunConfig {
    RunConfig {
        scheduler: SchedulerConfig {
            cluster,
            ..Default::default()
        },
        workers: Some(workers),
        ..Default::default()
    }
}

/// Bitwise equality: `assert_eq!` on floats would accept `-0.0 == 0.0`
/// and reject NaN; the guarantee under test is *bit-for-bit* replay.
fn assert_stats_identical(a: &ScenarioStats, b: &ScenarioStats, label: &str) {
    assert_eq!(a.mixes, b.mixes, "{label}: mix counts diverged");
    let pairs = [
        ("stp_mean", a.stp_mean, b.stp_mean),
        ("stp_min", a.stp_min_max.0, b.stp_min_max.0),
        ("stp_max", a.stp_min_max.1, b.stp_min_max.1),
        ("antt_mean", a.antt_mean, b.antt_mean),
        ("antt_min", a.antt_min_max.0, b.antt_min_max.0),
        ("antt_max", a.antt_min_max.1, b.antt_min_max.1),
    ];
    for (field, x, y) in pairs {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: {field} differs ({x} vs {y})"
        );
    }
}

#[test]
fn multi_policy_campaign_is_worker_count_invariant() {
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 2, apps: 3 };
    let policies = [PolicyKind::Pairwise, PolicyKind::Oracle];
    let serial = evaluate_scenario_multi(
        &policies,
        scenario,
        &catalog,
        &config_with_workers(1),
        4,
        99,
    )
    .unwrap();
    for workers in [2, 4, 7] {
        let parallel = evaluate_scenario_multi(
            &policies,
            scenario,
            &catalog,
            &config_with_workers(workers),
            4,
            99,
        )
        .unwrap();
        for (pi, (s, p)) in serial
            .per_policy
            .iter()
            .zip(parallel.per_policy.iter())
            .enumerate()
        {
            assert_stats_identical(s, p, &format!("policy {pi}, {workers} workers"));
        }
    }
}

#[test]
fn converging_campaign_is_worker_count_invariant() {
    // evaluate_scenario couples parallelism with the §5.2 early-exit rule;
    // speculative replays past the convergence point must be discarded so
    // even the *number of mixes folded* matches the serial run.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 1, apps: 2 };
    let serial = evaluate_scenario(
        PolicyKind::Oracle,
        scenario,
        &catalog,
        &config_with_workers(1),
        2,
        6,
        11,
    )
    .unwrap();
    for workers in [2, 5] {
        let parallel = evaluate_scenario(
            PolicyKind::Oracle,
            scenario,
            &catalog,
            &config_with_workers(workers),
            2,
            6,
            11,
        )
        .unwrap();
        assert_stats_identical(&serial, &parallel, &format!("{workers} workers"));
    }
}

#[test]
fn large_cluster_campaign_is_worker_count_invariant() {
    // The 400-node configuration drives the scale machinery — per-node
    // rate-cache shards, the tournament tree, hot-node OOM scans — through
    // the full scheduling stack; its statistics must stay bit-for-bit
    // identical across worker counts, exactly like the 4-node scenarios.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 2, apps: 6 };
    let policies = [PolicyKind::Pairwise, PolicyKind::Oracle];
    let cluster = ClusterSpec::with_nodes(400);
    let serial = evaluate_scenario_multi(
        &policies,
        scenario,
        &catalog,
        &config_with_cluster(1, cluster.clone()),
        2,
        123,
    )
    .unwrap();
    for workers in [2, 4] {
        let parallel = evaluate_scenario_multi(
            &policies,
            scenario,
            &catalog,
            &config_with_cluster(workers, cluster.clone()),
            2,
            123,
        )
        .unwrap();
        for (pi, (s, p)) in serial
            .per_policy
            .iter()
            .zip(parallel.per_policy.iter())
            .enumerate()
        {
            assert_stats_identical(s, p, &format!("400 nodes, policy {pi}, {workers} workers"));
        }
    }
}

#[test]
fn baseline_cache_matches_uncached_solo_runs() {
    let catalog = Catalog::paper();
    let config = config_with_workers(1);
    let mut rng = SimRng::seed_from(5);
    // A mix with guaranteed repeats: every scenario draw plus itself.
    let mut mix = MixScenario { label: 3, apps: 4 }.random_mix(&catalog, &mut rng);
    let dup = mix.clone();
    mix.extend(dup);

    let cache = BaselineCache::new();
    let seed = 31;
    let cached = cache
        .isolated_times(&catalog, &mix, &config.scheduler, seed)
        .unwrap();
    let uncached = isolated_times(&catalog, &mix, &config.scheduler, seed).unwrap();
    assert_eq!(cached.len(), uncached.len());
    for (i, (c, u)) in cached.iter().zip(uncached.iter()).enumerate() {
        assert_eq!(c.to_bits(), u.to_bits(), "app {i}: cached {c} vs solo {u}");
    }

    let (hits, misses) = cache.stats();
    assert!(
        hits >= mix.len() as u64 / 2,
        "duplicated mix must hit: {hits}"
    );
    assert!(misses <= mix.len() as u64 / 2 + 1, "misses {misses}");

    // A different seed is a different baseline: the cache must not leak
    // entries across keys.
    let other = cache
        .isolated_times(&catalog, &mix, &config.scheduler, seed + 1)
        .unwrap();
    let fresh = isolated_times(&catalog, &mix, &config.scheduler, seed + 1).unwrap();
    for (c, u) in other.iter().zip(fresh.iter()) {
        assert_eq!(c.to_bits(), u.to_bits());
    }
}

#[test]
fn env_thread_override_does_not_change_results() {
    // The binaries pick up SPARK_MOE_THREADS via RunConfig::effective_workers;
    // forcing an oversubscribed pool through the env must be invisible in
    // the statistics.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 1, apps: 2 };
    let policies = [PolicyKind::Oracle];
    let pinned =
        evaluate_scenario_multi(&policies, scenario, &catalog, &config_with_workers(1), 3, 7)
            .unwrap();

    std::env::set_var("SPARK_MOE_THREADS", "6");
    let mut env_config = config_with_workers(1);
    env_config.workers = None; // defer to the environment
    assert_eq!(env_config.effective_workers(), 6);
    let from_env =
        evaluate_scenario_multi(&policies, scenario, &catalog, &env_config, 3, 7).unwrap();
    std::env::remove_var("SPARK_MOE_THREADS");

    assert_stats_identical(
        &pinned.per_policy[0],
        &from_env.per_policy[0],
        "env-driven pool",
    );
}
