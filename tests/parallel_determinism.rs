//! Determinism under campaign parallelism: the thread-pool fan-out in
//! `colocate::harness` must be a pure optimisation. For a fixed seed, a
//! campaign's statistics are required to be **bit-for-bit identical** for
//! every worker count (the replays commit in index order), and the
//! isolated-baseline cache must return exactly what uncached solo runs
//! produce.
//!
//! The intra-sim suite at the bottom pins the same promise one level
//! down (DESIGN.md §17): *inside* one engine, the parallel dirty-shard
//! rate refresh must leave every observable — rates, `next_completion`,
//! elapsed clock, live population — bit-identical at any
//! `SPARK_MOE_THREADS`, including under proptest-driven random placement
//! mutation storms pinned against the retained serial oracle.

use bench_suite::scalekit::{
    build_queue, completion_churn, engine_digest, hold_churn, scale_engine, scale_engine_tracked,
    slice_gb, storm_mutate, EXECUTORS_PER_NODE,
};
use colocate::harness::{
    evaluate_scenario, evaluate_scenario_multi, isolated_times, BaselineCache, RunConfig,
    ScenarioStats,
};
use colocate::scheduler::{PolicyKind, SchedulerConfig};
use proptest::prelude::*;
use simkit::{QueueBackend, SimRng};
use sparklite::cluster::ClusterSpec;
use sparklite::engine::{ClusterEngine, RateCacheMode};
use sparklite::{AppId, ExecutorId};
use workloads::{Catalog, MixScenario};

fn config_with_workers(workers: usize) -> RunConfig {
    config_with_cluster(workers, ClusterSpec::small(4))
}

fn config_with_cluster(workers: usize, cluster: ClusterSpec) -> RunConfig {
    RunConfig {
        scheduler: SchedulerConfig {
            cluster,
            ..Default::default()
        },
        workers: Some(workers),
        ..Default::default()
    }
}

/// Bitwise equality: `assert_eq!` on floats would accept `-0.0 == 0.0`
/// and reject NaN; the guarantee under test is *bit-for-bit* replay.
fn assert_stats_identical(a: &ScenarioStats, b: &ScenarioStats, label: &str) {
    assert_eq!(a.mixes, b.mixes, "{label}: mix counts diverged");
    let pairs = [
        ("stp_mean", a.stp_mean, b.stp_mean),
        ("stp_min", a.stp_min_max.0, b.stp_min_max.0),
        ("stp_max", a.stp_min_max.1, b.stp_min_max.1),
        ("antt_mean", a.antt_mean, b.antt_mean),
        ("antt_min", a.antt_min_max.0, b.antt_min_max.0),
        ("antt_max", a.antt_min_max.1, b.antt_min_max.1),
    ];
    for (field, x, y) in pairs {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: {field} differs ({x} vs {y})"
        );
    }
}

#[test]
fn multi_policy_campaign_is_worker_count_invariant() {
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 2, apps: 3 };
    let policies = [PolicyKind::Pairwise, PolicyKind::Oracle];
    let serial = evaluate_scenario_multi(
        &policies,
        scenario,
        &catalog,
        &config_with_workers(1),
        4,
        99,
    )
    .unwrap();
    for workers in [2, 4, 7] {
        let parallel = evaluate_scenario_multi(
            &policies,
            scenario,
            &catalog,
            &config_with_workers(workers),
            4,
            99,
        )
        .unwrap();
        for (pi, (s, p)) in serial
            .per_policy
            .iter()
            .zip(parallel.per_policy.iter())
            .enumerate()
        {
            assert_stats_identical(s, p, &format!("policy {pi}, {workers} workers"));
        }
    }
}

#[test]
fn converging_campaign_is_worker_count_invariant() {
    // evaluate_scenario couples parallelism with the §5.2 early-exit rule;
    // speculative replays past the convergence point must be discarded so
    // even the *number of mixes folded* matches the serial run.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 1, apps: 2 };
    let serial = evaluate_scenario(
        PolicyKind::Oracle,
        scenario,
        &catalog,
        &config_with_workers(1),
        2,
        6,
        11,
    )
    .unwrap();
    for workers in [2, 5] {
        let parallel = evaluate_scenario(
            PolicyKind::Oracle,
            scenario,
            &catalog,
            &config_with_workers(workers),
            2,
            6,
            11,
        )
        .unwrap();
        assert_stats_identical(&serial, &parallel, &format!("{workers} workers"));
    }
}

#[test]
fn large_cluster_campaign_is_worker_count_invariant() {
    // The 400-node configuration drives the scale machinery — per-node
    // rate-cache shards, the tournament tree, hot-node OOM scans — through
    // the full scheduling stack; its statistics must stay bit-for-bit
    // identical across worker counts, exactly like the 4-node scenarios.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 2, apps: 6 };
    let policies = [PolicyKind::Pairwise, PolicyKind::Oracle];
    let cluster = ClusterSpec::with_nodes(400);
    let serial = evaluate_scenario_multi(
        &policies,
        scenario,
        &catalog,
        &config_with_cluster(1, cluster.clone()),
        2,
        123,
    )
    .unwrap();
    for workers in [2, 4] {
        let parallel = evaluate_scenario_multi(
            &policies,
            scenario,
            &catalog,
            &config_with_cluster(workers, cluster.clone()),
            2,
            123,
        )
        .unwrap();
        for (pi, (s, p)) in serial
            .per_policy
            .iter()
            .zip(parallel.per_policy.iter())
            .enumerate()
        {
            assert_stats_identical(s, p, &format!("400 nodes, policy {pi}, {workers} workers"));
        }
    }
}

#[test]
fn baseline_cache_matches_uncached_solo_runs() {
    let catalog = Catalog::paper();
    let config = config_with_workers(1);
    let mut rng = SimRng::seed_from(5);
    // A mix with guaranteed repeats: every scenario draw plus itself.
    let mut mix = MixScenario { label: 3, apps: 4 }.random_mix(&catalog, &mut rng);
    let dup = mix.clone();
    mix.extend(dup);

    let cache = BaselineCache::new();
    let seed = 31;
    let cached = cache
        .isolated_times(&catalog, &mix, &config.scheduler, seed)
        .unwrap();
    let uncached = isolated_times(&catalog, &mix, &config.scheduler, seed).unwrap();
    assert_eq!(cached.len(), uncached.len());
    for (i, (c, u)) in cached.iter().zip(uncached.iter()).enumerate() {
        assert_eq!(c.to_bits(), u.to_bits(), "app {i}: cached {c} vs solo {u}");
    }

    let (hits, misses) = cache.stats();
    assert!(
        hits >= mix.len() as u64 / 2,
        "duplicated mix must hit: {hits}"
    );
    assert!(misses <= mix.len() as u64 / 2 + 1, "misses {misses}");

    // A different seed is a different baseline: the cache must not leak
    // entries across keys.
    let other = cache
        .isolated_times(&catalog, &mix, &config.scheduler, seed + 1)
        .unwrap();
    let fresh = isolated_times(&catalog, &mix, &config.scheduler, seed + 1).unwrap();
    for (c, u) in other.iter().zip(fresh.iter()) {
        assert_eq!(c.to_bits(), u.to_bits());
    }
}

/// Engine-step outputs on a 400-node cluster, bit-identical at 1/2/4/8
/// refresh workers: each round runs a placement storm (every shard
/// dirty — well past the 64-shard parallel gate), a completion-churn
/// burst and an explicit `next_completion` → `advance` engine step, and
/// digests the full observable state (rates, next completion, clock,
/// population) after each. Every worker count must reproduce the
/// workers=1 digest trace exactly.
#[test]
fn intra_sim_engine_steps_are_worker_count_invariant() {
    const NODES: usize = 400;
    let mut reference: Option<Vec<u64>> = None;
    for workers in [1usize, 2, 4, 8] {
        let (mut eng, mut slots) = scale_engine_tracked(NODES, RateCacheMode::Sharded);
        eng.set_refresh_workers(workers);
        let mut k = NODES * EXECUTORS_PER_NODE;
        let mut digests = Vec::new();
        for _ in 0..3 {
            storm_mutate(&mut eng, &mut slots, k);
            k += NODES;
            digests.push(engine_digest(&mut eng));
            k = completion_churn(&mut eng, 50, k);
            digests.push(engine_digest(&mut eng));
            if let Some((dt, _)) = eng.next_completion() {
                eng.advance(dt * 0.5);
            }
            digests.push(engine_digest(&mut eng));
        }
        match &reference {
            None => reference = Some(digests),
            Some(r) => assert_eq!(r, &digests, "{workers} refresh workers diverged"),
        }
    }
}

/// The fig20 hold-benchmark state (queue checksums on both backends) and
/// the scale sweep's churn digests (both rate-cache modes) are pure
/// functions of the configuration at any worker count — exactly what
/// `SPARK_MOE_SCALE_CHECK=1` prints and CI `cmp`s across
/// `SPARK_MOE_THREADS` values.
#[test]
fn fig20_benchmark_state_is_worker_count_invariant() {
    const NODES: usize = 400;
    let mut reference: Option<(u64, u64, u64, u64)> = None;
    for workers in [1usize, 2, 4, 8] {
        let hold = |backend| {
            let mut q = build_queue(backend, 1000);
            hold_churn(&mut q, 1000, 5_000, 0).to_bits()
        };
        let churn = |mode| {
            let mut eng = scale_engine(NODES, mode);
            eng.set_refresh_workers(workers);
            completion_churn(&mut eng, 200, NODES * EXECUTORS_PER_NODE);
            engine_digest(&mut eng)
        };
        let state = (
            hold(QueueBackend::Heap),
            hold(QueueBackend::Calendar),
            churn(RateCacheMode::WholePlacement),
            churn(RateCacheMode::Sharded),
        );
        match &reference {
            None => reference = Some(state),
            Some(r) => assert_eq!(r, &state, "{workers} refresh workers diverged"),
        }
    }
}

/// One random placement mutation applied identically to both engines.
/// Encoded as `(kind, a, b)` integer tuples (the vendored proptest stub
/// has no enum strategies).
fn apply_mutation(
    eng: &mut ClusterEngine,
    slots: &mut [(AppId, ExecutorId)],
    (kind, a, b): (usize, usize, usize),
    k: usize,
) {
    let nodes = slots.len();
    let node_ids = eng.cluster().node_ids();
    match kind {
        // Partial storm: kill + respawn the tracked executor on a random
        // contiguous wrap-around span of ≥64 nodes (above the parallel
        // gate, below a full storm). Completion churn may have retired a
        // tracked executor; adopt the node's current first slice instead
        // (membership order is deterministic across worker counts).
        0 => {
            let count = 64 + b % (nodes - 63);
            for j in 0..count {
                let i = (a + j) % nodes;
                if eng.executor(slots[i].1).is_err() {
                    if let Some(adopted) = eng.node_executors_iter(node_ids[i]).next() {
                        slots[i].0 = eng.executor(adopted).expect("member is live").app();
                        slots[i].1 = adopted;
                    }
                }
                if eng.executor(slots[i].1).is_ok() {
                    eng.kill_executor(slots[i].1).expect("tracked slot is live");
                }
                slots[i].1 = eng
                    .spawn_executor(slots[i].0, node_ids[i], slice_gb(k + j), 14.0)
                    .expect("respawn fits")
                    .expect("input available");
            }
        }
        // Completion-churn burst: the scheduler's event loop shape.
        1 => {
            completion_churn(eng, 1 + a % 40, k);
        }
        // A partial engine step: advance to a fraction of the next
        // completion (dt is engine-derived, so identical states advance
        // identically).
        2 => {
            if let Some((dt, _)) = eng.next_completion() {
                eng.advance(dt * (a % 100) as f64 / 100.0);
            }
        }
        // Node failure + restore: kills the node's executors through the
        // failure path, then respawns the tracked slot (the untracked
        // sibling stays retired — same population on both engines).
        _ => {
            let i = a % nodes;
            eng.fail_node(node_ids[i]).expect("node is online");
            eng.restore_node(node_ids[i]).expect("node is offline");
            slots[i].1 = eng
                .spawn_executor(slots[i].0, node_ids[i], slice_gb(k), 14.0)
                .expect("respawn fits")
                .expect("input available");
        }
    }
}

proptest! {
    /// Random mutation storms, parallel path (4 workers) pinned against
    /// the serial oracle (1 worker): after every mutation the two
    /// engines' full observable state must agree bit-for-bit. Tracked
    /// executors are killed through waves and node failures, so the
    /// dirty sets cross the parallel gate from arbitrary placements.
    #[test]
    fn parallel_refresh_matches_serial_oracle_under_random_mutations(
        ops in proptest::collection::vec((0usize..4, 0usize..10_000, 0usize..10_000), 1..7),
    ) {
        const NODES: usize = 128;
        let (mut par, mut par_slots) = scale_engine_tracked(NODES, RateCacheMode::Sharded);
        let (mut ser, mut ser_slots) = scale_engine_tracked(NODES, RateCacheMode::Sharded);
        par.set_refresh_workers(4);
        ser.set_refresh_workers(1);
        prop_assert_eq!(par.refresh_workers(), 4);
        prop_assert_eq!(ser.refresh_workers(), 1);
        let mut k = NODES * EXECUTORS_PER_NODE;
        for op in ops {
            apply_mutation(&mut par, &mut par_slots, op, k);
            apply_mutation(&mut ser, &mut ser_slots, op, k);
            k += 2 * NODES;
            prop_assert_eq!(
                engine_digest(&mut par),
                engine_digest(&mut ser),
                "divergence after {:?}",
                op
            );
        }
    }
}

#[test]
fn env_thread_override_does_not_change_results() {
    // The binaries pick up SPARK_MOE_THREADS via RunConfig::effective_workers;
    // forcing an oversubscribed pool through the env must be invisible in
    // the statistics.
    let catalog = Catalog::paper();
    let scenario = MixScenario { label: 1, apps: 2 };
    let policies = [PolicyKind::Oracle];
    let pinned =
        evaluate_scenario_multi(&policies, scenario, &catalog, &config_with_workers(1), 3, 7)
            .unwrap();

    std::env::set_var("SPARK_MOE_THREADS", "6");
    let mut env_config = config_with_workers(1);
    env_config.workers = None; // defer to the environment
    assert_eq!(env_config.effective_workers(), 6);
    let from_env =
        evaluate_scenario_multi(&policies, scenario, &catalog, &env_config, 3, 7).unwrap();
    std::env::remove_var("SPARK_MOE_THREADS");

    assert_stats_identical(
        &pinned.per_policy[0],
        &from_env.per_policy[0],
        "env-driven pool",
    );
}
