//! Worker-count invariance of the ML evaluation campaigns.
//!
//! The leave-one-out campaigns behind `fig17_accuracy`, `fig18_curves` and
//! `tab05_classifiers` fan their folds out across threads
//! (`simkit::par::par_map_indexed`), profile once from the campaign seed
//! and give each fold its own derived RNG. The binaries print exactly the
//! strings built here, so asserting the reports byte-identical at 1 vs 4
//! workers pins the `SPARK_MOE_THREADS=1` vs `=4` stdout equality the CI
//! bit-identity gate also checks.

use bench_suite::mlcamp;
use workloads::Catalog;

#[test]
fn fig17_report_is_byte_identical_across_worker_counts() {
    let catalog = Catalog::paper();
    let one = mlcamp::fig17_report(&catalog, 1).expect("fig17 at 1 worker");
    let four = mlcamp::fig17_report(&catalog, 4).expect("fig17 at 4 workers");
    assert_eq!(
        one, four,
        "fig17_accuracy stdout must not depend on workers"
    );
}

#[test]
fn fig18_report_is_byte_identical_across_worker_counts() {
    let catalog = Catalog::paper();
    let one = mlcamp::fig18_report(&catalog, 1).expect("fig18 at 1 worker");
    let four = mlcamp::fig18_report(&catalog, 4).expect("fig18 at 4 workers");
    assert_eq!(one, four, "fig18_curves stdout must not depend on workers");
}

#[test]
fn tab05_report_is_byte_identical_across_worker_counts() {
    let catalog = Catalog::paper();
    let one = mlcamp::tab05_report(&catalog, 1).expect("tab05 at 1 worker");
    let four = mlcamp::tab05_report(&catalog, 4).expect("tab05 at 4 workers");
    assert_eq!(
        one, four,
        "tab05_classifiers stdout must not depend on workers"
    );
}
