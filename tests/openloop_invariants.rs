//! Open-system invariants: the streaming service must collapse to the
//! closed-system scheduler when nothing open-system is enabled (batch
//! arrivals, no admission), must stay bit-identical across worker counts
//! all the way through the JSON record, must conserve work under load
//! shedding, and the admission-controlled configuration must beat the
//! uncontrolled open system in an overload storm — the PR's acceptance
//! bar, pinned at test scale.

use bench_suite::report::openloop_stats_json;
use colocate::harness::{isolated_times_custom, trained_system_for, ChaosSpec, RunConfig};
use colocate::scheduler::{run_schedule_custom, PolicyKind, ResilienceConfig, SchedulerConfig};
use colocate::service::{
    evaluate_openloop, run_service, AdmissionConfig, OpenLoopEntry, OpenLoopSpec, ServiceConfig,
};
use simkit::arrivals::{ArrivalPlan, ArrivalProcess};
use sparklite::cluster::ClusterSpec;
use workloads::mixes::InputSize;
use workloads::Catalog;

fn small_config(nodes: usize) -> SchedulerConfig {
    SchedulerConfig {
        cluster: ClusterSpec::small(nodes),
        ..Default::default()
    }
}

fn classes_of(catalog: &Catalog, names: &[&str], size: InputSize) -> Vec<(usize, f64)> {
    names
        .iter()
        .map(|n| (catalog.by_name(n).unwrap().index(), size.gb()))
        .collect()
}

/// With a batch plan (every job at t = 0) and admission disabled, the
/// open-system service is the closed-system scheduler, bit for bit —
/// including under a trained predictive policy.
#[test]
fn batch_plan_without_admission_is_bit_identical_to_the_closed_system() {
    let catalog = Catalog::paper();
    let sched = small_config(4);
    let run_config = RunConfig {
        scheduler: sched.clone(),
        ..Default::default()
    };
    let jobs = classes_of(
        &catalog,
        &["HB.Sort", "HB.PageRank", "BDB.Grep", "SP.Kmeans"],
        InputSize::Medium,
    );
    let system = trained_system_for(PolicyKind::Moe, &catalog, &run_config, 13)
        .unwrap()
        .unwrap();
    let closed =
        run_schedule_custom(PolicyKind::Moe, &catalog, &jobs, Some(&system), &sched, 13).unwrap();

    let plan = ArrivalPlan::batch(&(0..jobs.len()).map(|i| (0, i)).collect::<Vec<_>>());
    let config = ServiceConfig {
        scheduler: sched,
        admission: AdmissionConfig::default(),
        tenant_weights: Vec::new(),
        job_classes: jobs,
    };
    let open = run_service(
        PolicyKind::Moe,
        &catalog,
        &plan,
        Some(&system),
        &config,
        13,
        None,
    )
    .unwrap();

    assert_eq!(
        open.makespan_secs.to_bits(),
        closed.makespan_secs.to_bits(),
        "batch plan + disabled admission must reproduce the closed loop"
    );
    assert_eq!(open.oom_kills, closed.oom_kills);
    for (j, a) in open.jobs.iter().zip(closed.per_app.iter()) {
        assert_eq!(j.finished_at.unwrap().to_bits(), a.finished_at.to_bits());
        assert_eq!(j.arrived_at.to_bits(), 0.0f64.to_bits());
    }
    assert_eq!(open.shed_jobs, 0);
    assert_eq!(open.deferrals, 0);
    assert_eq!(open.abstain_placements, 0);
    assert_eq!(open.breaker_trips, 0);
}

/// A zero-rate arrival process draws nothing; the campaign must report
/// empty folds instead of erroring out.
#[test]
fn zero_rate_campaigns_fold_to_empty_stats() {
    let catalog = Catalog::paper();
    let config = RunConfig {
        scheduler: small_config(4),
        ..Default::default()
    };
    let spec = OpenLoopSpec {
        process: ArrivalProcess::Poisson { rate_per_sec: 0.0 },
        horizon_secs: 1_000.0,
        tenants: 1,
        tenant_weights: Vec::new(),
        job_classes: classes_of(&catalog, &["HB.Sort"], InputSize::Small),
        max_jobs: 0,
        chaos: ChaosSpec::at_intensity(0.0),
        replications: 2,
    };
    let entries = [OpenLoopEntry {
        label: "oracle",
        policy: PolicyKind::Oracle,
        admission: AdmissionConfig::controlled(),
        resilience: ResilienceConfig::default(),
    }];
    let stats = evaluate_openloop(&entries, &catalog, &config, &spec, 3).unwrap();
    let e = &stats.per_entry[0];
    assert_eq!((e.arrivals, e.finished, e.shed), (0, 0, 0));
    assert!(e.slowdown_p99.is_nan(), "no jobs, no tail");
}

/// The whole open-loop record — including the serialised JSON artifact —
/// must be bit-identical at every worker count.
#[test]
fn open_loop_campaigns_are_worker_count_bit_identical() {
    let catalog = Catalog::paper();
    let job_classes = classes_of(&catalog, &["HB.Sort", "BDB.Grep"], InputSize::Small);
    let iso = isolated_times_custom(&catalog, &job_classes, &small_config(4), 5).unwrap();
    let mean_iso = iso.iter().sum::<f64>() / iso.len() as f64;
    let entries = [
        OpenLoopEntry {
            label: "admission",
            policy: PolicyKind::Oracle,
            admission: AdmissionConfig::controlled(),
            resilience: ResilienceConfig::self_healing(),
        },
        OpenLoopEntry {
            label: "open",
            policy: PolicyKind::Oracle,
            admission: AdmissionConfig::default(),
            resilience: ResilienceConfig::default(),
        },
    ];
    let spec = OpenLoopSpec {
        process: ArrivalProcess::Poisson {
            rate_per_sec: 1.5 / mean_iso,
        },
        horizon_secs: 6.0 * mean_iso,
        tenants: 2,
        tenant_weights: Vec::new(),
        job_classes,
        max_jobs: 10,
        chaos: ChaosSpec {
            intensity: 0.3,
            spot_rate: 0.5,
            ..ChaosSpec::default()
        },
        replications: 3,
    };
    let run = |workers: usize| {
        let config = RunConfig {
            scheduler: small_config(4),
            workers: Some(workers),
            ..Default::default()
        };
        let stats = evaluate_openloop(&entries, &catalog, &config, &spec, 5).unwrap();
        openloop_stats_json(&[(1.5, stats)])
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "BENCH_openloop.json must not depend on the worker count"
    );
    assert!(serial.contains("\"spot_preemptions\""));
}

/// Load shedding bounds the queue but never loses a kept job: every
/// arrival either finishes or is counted shed, nothing in between.
#[test]
fn shedding_conserves_work_across_a_campaign() {
    let catalog = Catalog::paper();
    let config = RunConfig {
        scheduler: small_config(4),
        ..Default::default()
    };
    let job_classes = classes_of(&catalog, &["HB.Sort"], InputSize::Small);
    let iso = isolated_times_custom(&catalog, &job_classes, &config.scheduler, 8).unwrap();
    let entries = [OpenLoopEntry {
        label: "tiny queue",
        policy: PolicyKind::Oracle,
        admission: AdmissionConfig {
            enabled: true,
            queue_capacity: 2,
            shed_watermark: 1,
            // Headroom so tight admission serialises: the queue must build
            // past the watermark and shed.
            headroom_frac: 0.01,
            ..AdmissionConfig::default()
        },
        resilience: ResilienceConfig::default(),
    }];
    let spec = OpenLoopSpec {
        process: ArrivalProcess::Poisson {
            rate_per_sec: 4.0 / iso[0],
        },
        horizon_secs: 4.0 * iso[0],
        tenants: 3,
        tenant_weights: vec![2.0, 1.0, 1.0],
        job_classes,
        max_jobs: 16,
        chaos: ChaosSpec::at_intensity(0.0),
        replications: 2,
    };
    let stats = evaluate_openloop(&entries, &catalog, &config, &spec, 8).unwrap();
    let e = &stats.per_entry[0];
    assert!(e.arrivals > 0, "the overloaded process must draw arrivals");
    assert_eq!(
        e.finished + e.shed,
        e.arrivals,
        "every arrival either finishes or is shed"
    );
    assert!(e.shed > 0, "a 4x-overloaded 2-slot queue must shed");
    assert!(e.max_queue_depth <= 2 + 1);
}

/// The acceptance bar, pinned at exactly the `fig21_openloop` storm cell:
/// a 2-node edge slice, memory-hungry linear-family 100 GB jobs arriving
/// at 3× service capacity under full-intensity chaos (spot preemptions,
/// prediction noise across the whole horizon). The admission-controlled
/// self-healing MoE must keep both the p99 job slowdown and the OOM count
/// strictly below the same policy with admission disabled.
#[test]
fn admission_control_beats_the_open_system_in_an_overload_storm() {
    let catalog = Catalog::paper();
    let config = RunConfig {
        scheduler: small_config(2),
        ..Default::default()
    };
    let job_classes: Vec<(usize, f64)> =
        ["SP.NaiveBayes", "BDB.NaivesBayes", "HB.Bayes", "SP.Pearson"]
            .iter()
            .map(|n| (catalog.by_name(n).unwrap().index(), 100.0))
            .collect();
    let iso = isolated_times_custom(&catalog, &job_classes, &config.scheduler, 42).unwrap();
    let mean_iso = iso.iter().sum::<f64>() / iso.len() as f64;
    let entries = [
        OpenLoopEntry {
            label: "admission",
            policy: PolicyKind::Moe,
            admission: AdmissionConfig::controlled(),
            resilience: ResilienceConfig::self_healing(),
        },
        OpenLoopEntry {
            label: "no admission",
            policy: PolicyKind::Moe,
            admission: AdmissionConfig::default(),
            resilience: ResilienceConfig::self_healing(),
        },
    ];
    let spec = OpenLoopSpec {
        process: ArrivalProcess::Poisson {
            rate_per_sec: 3.0 / mean_iso,
        },
        horizon_secs: 18.0 * mean_iso / 3.0,
        tenants: 3,
        tenant_weights: Vec::new(),
        job_classes,
        max_jobs: 36,
        chaos: ChaosSpec {
            intensity: 1.0,
            spot_rate: 0.5,
            noise_sd: 1.5,
            noise_window_frac: 1.0,
            ..ChaosSpec::default()
        },
        replications: 3,
    };
    let stats = evaluate_openloop(&entries, &catalog, &config, &spec, 42).unwrap();
    let (ours, base) = (&stats.per_entry[0], &stats.per_entry[1]);
    assert!(base.arrivals > 0 && base.finished > 0);
    assert!(
        base.oom_kills > 0,
        "the storm must push the uncontrolled system into OOM kills"
    );
    assert!(
        ours.slowdown_p99 < base.slowdown_p99,
        "admission p99 {:.2} must beat open-system p99 {:.2}",
        ours.slowdown_p99,
        base.slowdown_p99
    );
    assert!(
        ours.oom_kills < base.oom_kills,
        "admission OOMs {} must stay below open-system OOMs {}",
        ours.oom_kills,
        base.oom_kills
    );
}
