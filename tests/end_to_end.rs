//! Cross-crate integration tests: full co-location campaigns on the paper
//! cluster, exercising training (moe-core + mlkit), profiling and
//! scheduling (colocate), the substrate (sparklite) and the workload
//! models together.

use colocate::harness::{isolated_times, run_policy, trained_system_for, RunConfig};
use colocate::scheduler::{run_schedule, PolicyKind};
use simkit::SimRng;
use workloads::mixes::MixEntry;
use workloads::{Catalog, InputSize, MixScenario};

fn mix_of(catalog: &Catalog, names: &[(&str, InputSize)]) -> Vec<MixEntry> {
    names
        .iter()
        .map(|(n, s)| MixEntry {
            benchmark: catalog.by_name(n).unwrap().index(),
            size: *s,
        })
        .collect()
}

#[test]
fn policies_rank_in_paper_order_on_average() {
    // Single mixes have wide whiskers (Fig. 6's min-max bars overlap);
    // the ranking claim is about scenario means, so average a few mixes.
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let policies = [
        PolicyKind::Pairwise,
        PolicyKind::Quasar,
        PolicyKind::Moe,
        PolicyKind::Oracle,
        PolicyKind::OnlineSearch,
    ];
    let stats = colocate::harness::evaluate_scenario_multi(
        &policies,
        MixScenario::TABLE3[8], // L9: 26 apps
        &catalog,
        &config,
        4,
        77,
    )
    .unwrap();
    let stp: Vec<f64> = stats.per_policy.iter().map(|s| s.stp_mean).collect();
    let (pairwise, quasar, moe, oracle, online) = (stp[0], stp[1], stp[2], stp[3], stp[4]);

    // The Fig. 6/10 ordering. Oracle and MoE may be close — and MoE's
    // profiling latency staggers admissions, which occasionally *helps*
    // STP by easing all-at-once contention, so allow a small inversion.
    // Online Search must trail badly; Pairwise sits under the predictive
    // schemes.
    assert!(
        oracle >= moe * 0.92,
        "oracle {oracle:.2} must be at least on par with moe {moe:.2}"
    );
    assert!(
        moe > pairwise,
        "moe {moe:.2} must beat pairwise {pairwise:.2}"
    );
    assert!(
        moe >= quasar * 0.99,
        "moe {moe:.2} must be at least on par with quasar {quasar:.2}"
    );
    assert!(
        online < moe * 0.7,
        "online search {online:.2} must trail moe {moe:.2} badly"
    );
}

#[test]
fn co_location_improves_throughput_over_isolated() {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mix = mix_of(
        &catalog,
        &[
            ("HB.Sort", InputSize::Medium),
            ("HB.PageRank", InputSize::Medium),
            ("SP.glm-regression", InputSize::Medium),
            ("BDB.Grep", InputSize::Medium),
            ("SB.Hive", InputSize::Medium),
            ("SP.Kmeans", InputSize::Medium),
        ],
    );
    let moe = run_policy(PolicyKind::Moe, &catalog, &mix, &config, 5).unwrap();
    // Six jobs co-located should make substantially more aggregate
    // progress than one-at-a-time execution (STP formula (1) > 2).
    assert!(
        moe.normalized.normalized_stp > 2.0,
        "STP {:.2}",
        moe.normalized.normalized_stp
    );
    assert!(moe.normalized.antt_reduction_pct > 0.0);
    assert_eq!(moe.turnarounds.len(), 6);
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mut rng = SimRng::seed_from(9);
    let mix = MixScenario::TABLE3[2].random_mix(&catalog, &mut rng);
    let a = run_policy(PolicyKind::Moe, &catalog, &mix, &config, 3).unwrap();
    let b = run_policy(PolicyKind::Moe, &catalog, &mix, &config, 3).unwrap();
    assert_eq!(a.turnarounds, b.turnarounds);
    assert_eq!(a.makespan_secs, b.makespan_secs);
    assert_eq!(a.normalized.normalized_stp, b.normalized.normalized_stp);
}

#[test]
fn profiling_contributes_to_output_and_is_bounded() {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mix = mix_of(&catalog, &[("HB.Kmeans", InputSize::Medium)]);
    let system = trained_system_for(PolicyKind::Moe, &catalog, &config, 4)
        .unwrap()
        .unwrap();
    let outcome = run_schedule(
        PolicyKind::Moe,
        &catalog,
        &mix,
        Some(&system),
        &config.scheduler,
        4,
    )
    .unwrap();
    let app = &outcome.per_app[0];
    assert!(app.profiling.profiled_gb > 0.0);
    assert!(app.profiling.total_secs() > 0.0);
    // Profiling latency stays a modest fraction of the job (Fig. 11/12).
    let iso = isolated_times(&catalog, &mix, &config.scheduler, 4).unwrap()[0];
    assert!(
        app.profiling.total_secs() < 0.3 * iso,
        "profiling {:.0}s vs isolated {iso:.0}s",
        app.profiling.total_secs()
    );
}

#[test]
fn every_policy_finishes_every_app() {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mut rng = SimRng::seed_from(31);
    let mix = MixScenario::TABLE3[3].random_mix(&catalog, &mut rng); // L4: 9 apps
    for policy in [
        PolicyKind::Isolated,
        PolicyKind::Pairwise,
        PolicyKind::OnlineSearch,
        PolicyKind::Quasar,
        PolicyKind::Moe,
        PolicyKind::UnifiedLinear,
        PolicyKind::UnifiedExponential,
        PolicyKind::UnifiedLog,
        PolicyKind::UnifiedAnn,
        PolicyKind::Oracle,
    ] {
        let out = run_policy(policy, &catalog, &mix, &config, 31)
            .unwrap_or_else(|e| panic!("{policy:?} failed: {e}"));
        assert_eq!(out.turnarounds.len(), 9, "{policy:?}");
        assert!(
            out.turnarounds.iter().all(|&t| t > 0.0),
            "{policy:?} produced non-positive turnarounds"
        );
    }
}

#[test]
fn oom_kills_are_rare_under_accurate_prediction() {
    // §2.3: with accurate predictions the paper never observed OOM
    // re-runs. Allow a handful across a large mix, but not systematic
    // thrash.
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let mut rng = SimRng::seed_from(55);
    let mix = MixScenario::TABLE3[9].random_mix(&catalog, &mut rng); // L10
    let out = run_policy(PolicyKind::Moe, &catalog, &mix, &config, 55).unwrap();
    assert!(
        out.schedule.oom_kills <= 3,
        "{} OOM kills under MoE",
        out.schedule.oom_kills
    );
}
