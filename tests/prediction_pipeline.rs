//! Integration tests for the offline-training → runtime-prediction
//! pipeline across mlkit, moe-core, workloads and colocate.

use colocate::predictors::{MemoryPredictor, MoePolicy, Oracle, QuasarPredictor};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{family_expert_id, train_loocv, train_system, TrainingConfig};
use simkit::SimRng;
use workloads::{signatures, Catalog, Suite};

#[test]
fn expert_selection_generalizes_to_unseen_suites() {
    // The paper trains on HiBench + BigDataBench and deploys on Spark-Perf
    // and Spark-Bench (§5.2). The selector must transfer.
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(1);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
    let mut hits = 0;
    let mut total = 0;
    for bench in catalog.all() {
        if matches!(bench.suite(), Suite::SparkPerf | Suite::SparkBench) {
            for _ in 0..4 {
                let features = signatures::observe_default(bench, &mut rng);
                let sel = system.predictor.select(&features).unwrap();
                total += 1;
                if sel.expert == family_expert_id(bench.family()) {
                    hits += 1;
                }
            }
        }
    }
    let accuracy = f64::from(hits) / f64::from(total);
    assert!(
        accuracy > 0.9,
        "selector transfer accuracy {accuracy:.2} ({hits}/{total})"
    );
}

#[test]
fn loocv_footprint_error_is_paper_scale() {
    // Fig. 17: average |error| around 5 %, most benchmarks under 5 %.
    let catalog = Catalog::paper();
    let config = TrainingConfig::default();
    let profiling = ProfilingConfig::default();
    let mut rng = SimRng::seed_from(2);
    let mut errors = Vec::new();
    for bench in catalog.training_set() {
        let system = train_loocv(&catalog, bench, &config, &mut rng).unwrap();
        let moe = MoePolicy::new(system);
        let (profile, _) = profile_app(bench, 280.0, 40, 64.0, &profiling, &mut rng);
        let prediction = moe.predict(&profile).unwrap();
        let slice = profile.expected_slice_gb;
        let truth = bench.true_footprint_gb(slice);
        errors.push((prediction.model.footprint_gb(slice) - truth).abs() / truth);
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.10, "mean |error| {:.1} %", mean * 100.0);
    let under_12 = errors.iter().filter(|e| **e < 0.12).count();
    assert!(under_12 >= 14, "{under_12}/16 under 12 %");
}

#[test]
fn moe_beats_quasar_on_prediction_accuracy() {
    // §6.2 attributes the end-to-end gap to prediction quality: per-app
    // calibration must beat nearest-historical-curve transfer on average.
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(3);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
    let moe = MoePolicy::new(system.clone());
    let quasar = QuasarPredictor::new(&system).unwrap();
    let profiling = ProfilingConfig::default();

    let mut moe_err = 0.0;
    let mut quasar_err = 0.0;
    let mut n = 0.0;
    for bench in catalog.all() {
        if !matches!(bench.suite(), Suite::SparkPerf | Suite::SparkBench) {
            continue;
        }
        let (profile, _) = profile_app(bench, 30.0, 40, 64.0, &profiling, &mut rng);
        let slice = profile.expected_slice_gb;
        let truth = bench.true_footprint_gb(slice);
        let m = moe.predict(&profile).unwrap().model.footprint_gb(slice);
        let q = quasar.predict(&profile).unwrap().model.footprint_gb(slice);
        moe_err += ((m - truth) / truth).abs();
        quasar_err += ((q - truth) / truth).abs();
        n += 1.0;
    }
    moe_err /= n;
    quasar_err /= n;
    assert!(
        moe_err < quasar_err,
        "moe {:.1} % vs quasar {:.1} %",
        moe_err * 100.0,
        quasar_err * 100.0
    );
    assert!(moe_err < 0.15, "moe error {:.1} %", moe_err * 100.0);
}

#[test]
fn oracle_predictions_are_exact() {
    let catalog = Catalog::paper();
    let oracle = Oracle::new(&catalog);
    let mut rng = SimRng::seed_from(4);
    for bench in catalog.all().iter().take(10) {
        let (profile, _) =
            profile_app(bench, 30.0, 40, 64.0, &ProfilingConfig::default(), &mut rng);
        let pred = oracle.predict(&profile).unwrap();
        for x in [0.5, 5.0, 20.0] {
            assert_eq!(pred.model.footprint_gb(x), bench.true_footprint_gb(x));
        }
    }
}

#[test]
fn low_confidence_flag_fires_for_alien_applications() {
    // §6.9: an application far from every training program must be
    // flagged so the runtime can fall back to a conservative policy.
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(5);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
    let alien = moe_core::features::FeatureVector::from_fn(|i| if i % 2 == 0 { 1e6 } else { -1e6 });
    let sel = system.predictor.select(&alien).unwrap();
    assert!(sel.low_confidence, "distance {}", sel.distance);
}
