//! Failure-injection tests: mispredicting baselines must page or OOM, and
//! the runtime must recover the way §2.3 describes (kill, re-queue,
//! conservative re-run) without losing work.

use colocate::harness::{isolated_times_custom, trained_system_for, RunConfig};
use colocate::scheduler::{run_schedule_custom, PolicyKind, SchedulerConfig};
use sparklite::cluster::ClusterSpec;
use workloads::Catalog;

/// A single-host configuration with several memory-hungry linear-family
/// applications: the unified exponential model calibrates on two small
/// samples, saturates, and massively under-predicts the real footprints.
fn tight_config() -> SchedulerConfig {
    SchedulerConfig {
        cluster: ClusterSpec::small(2),
        ..Default::default()
    }
}

fn hungry_linear_jobs(catalog: &Catalog) -> Vec<(usize, f64)> {
    // Linear-family benchmarks with LOW CPU demand at a slice scale that
    // stresses a 64 GB node: the CPU guard admits three per host, so only
    // the memory prediction decides whether the node pages.
    ["SP.NaiveBayes", "BDB.NaivesBayes", "HB.Bayes", "SP.Pearson"]
        .iter()
        .map(|n| (catalog.by_name(n).unwrap().index(), 100.0))
        .collect()
}

#[test]
fn under_predicting_baseline_still_completes() {
    let catalog = Catalog::paper();
    let config = tight_config();
    let jobs = hungry_linear_jobs(&catalog);
    let outcome = run_schedule_custom(
        PolicyKind::UnifiedExponential,
        &catalog,
        &jobs,
        None,
        &config,
        11,
    )
    .expect("schedule must complete despite mispredictions");
    assert_eq!(outcome.per_app.len(), jobs.len());
    assert!(outcome.per_app.iter().all(|a| a.finished_at > 0.0));
}

#[test]
fn misprediction_pages_ooms_and_loses_the_makespan() {
    let catalog = Catalog::paper();
    let config = tight_config();
    let jobs = hungry_linear_jobs(&catalog);
    // Sanity: isolated baselines exist for this job set.
    let iso = isolated_times_custom(&catalog, &jobs, &config, 11).unwrap();
    assert!(iso.iter().all(|&c| c > 0.0));

    let run = |policy: PolicyKind| {
        run_schedule_custom(policy, &catalog, &jobs, None, &config, 11).unwrap()
    };
    let exp = run(PolicyKind::UnifiedExponential);
    let oracle = run(PolicyKind::Oracle);
    // The saturating mispredictor over-packs: it pages and kills where the
    // oracle never does, and its schedule finishes no earlier.
    assert!(
        exp.oom_kills > oracle.oom_kills,
        "mispredictor {} OOMs vs oracle {}",
        exp.oom_kills,
        oracle.oom_kills
    );
    assert_eq!(oracle.oom_kills, 0);
    assert!(
        oracle.makespan_secs <= exp.makespan_secs,
        "oracle {:.0}s vs mispredictor {:.0}s",
        oracle.makespan_secs,
        exp.makespan_secs
    );
}

#[test]
fn oom_kill_requeues_and_finishes_under_conservative_margin() {
    // Drive the engine into OOM territory directly through a predictive
    // policy whose model under-reserves: the wrong-family exponential
    // model on linear apps with small calibration points.
    let catalog = Catalog::paper();
    let config = SchedulerConfig {
        cluster: ClusterSpec::small(1),
        ..Default::default()
    };
    let jobs = hungry_linear_jobs(&catalog);
    let outcome = run_schedule_custom(
        PolicyKind::UnifiedExponential,
        &catalog,
        &jobs,
        None,
        &config,
        13,
    )
    .expect("recovery path must terminate");
    // The engine either paged through it or killed and re-ran; in all
    // cases every byte of every input must be processed exactly once.
    assert!(outcome.per_app.iter().all(|a| a.finished_at > 0.0));
    assert!(
        outcome.makespan_secs
            >= outcome
                .per_app
                .iter()
                .map(|a| a.finished_at)
                .fold(0.0, f64::max)
                - 1e-6
    );
}

#[test]
fn moe_is_resilient_where_unified_models_struggle() {
    let catalog = Catalog::paper();
    let run_config = RunConfig {
        scheduler: tight_config(),
        ..Default::default()
    };
    let jobs = hungry_linear_jobs(&catalog);
    let system = trained_system_for(PolicyKind::Moe, &catalog, &run_config, 17)
        .unwrap()
        .unwrap();
    let moe = run_schedule_custom(
        PolicyKind::Moe,
        &catalog,
        &jobs,
        Some(&system),
        &run_config.scheduler,
        17,
    )
    .unwrap();
    let exp = run_schedule_custom(
        PolicyKind::UnifiedExponential,
        &catalog,
        &jobs,
        None,
        &run_config.scheduler,
        17,
    )
    .unwrap();
    assert!(
        moe.makespan_secs <= exp.makespan_secs * 1.1,
        "moe {:.0}s should not trail the mispredictor {:.0}s",
        moe.makespan_secs,
        exp.makespan_secs
    );
    assert!(moe.oom_kills <= exp.oom_kills);
}
