//! Seeded property tests for the admission circuit breaker's hysteresis
//! edges ([`colocate::service::CircuitBreaker`]): the breaker trips at
//! *exactly* `trip_threshold` distress events (one fewer never opens it),
//! recovers only after the cool window has both elapsed and drained, holds
//! open through a busy recovery deadline instead of flapping, and re-trips
//! cleanly from a recovered state. A randomized-schedule property pins the
//! trip-lock tripwire: under the service's prune-before-recover call
//! order, `quiet_reopens` stays zero and a drained breaker always closes.
//!
//! Cases are seeded via the vendored proptest stub (`PROPTEST_CASES`
//! honoured), so failures replay deterministically.

use colocate::service::{BreakerConfig, CircuitBreaker};
use proptest::prelude::*;

fn breaker(trip: usize, recover: usize, window: f64, cooldown: f64) -> CircuitBreaker {
    CircuitBreaker::new(BreakerConfig {
        window_secs: window,
        trip_threshold: trip,
        recover_threshold: recover,
        cooldown_secs: cooldown,
    })
}

proptest! {
    /// The trip edge is exact: `trip_threshold - 1` in-window distress
    /// events never open the breaker; the next one always does, and the
    /// recovery check is scheduled exactly one cooldown out.
    #[test]
    fn trips_exactly_at_the_threshold(
        trip in 1usize..12,
        window in 60.0f64..900.0,
        cooldown in 10.0f64..600.0,
    ) {
        let mut b = breaker(trip, 0, window, cooldown);
        // Spread the events over half a window so pruning removes none.
        let spacing = window / (2.0 * trip as f64);
        for i in 0..trip - 1 {
            let t = i as f64 * spacing;
            b.prune(t);
            b.note_distress(t);
            prop_assert!(!b.maybe_trip(t), "tripped at {} events, threshold {}", i + 1, trip);
            prop_assert!(!b.is_open());
        }
        let t = (trip - 1) as f64 * spacing;
        b.prune(t);
        b.note_distress(t);
        prop_assert_eq!(b.window_len(), trip);
        prop_assert!(b.maybe_trip(t), "must trip at exactly {} events", trip);
        prop_assert!(b.is_open());
        prop_assert_eq!(b.trips(), 1);
        prop_assert_eq!(b.next_check_after(t), Some(t + cooldown));
    }

    /// Hysteresis end to end: an open breaker stays open at a recovery
    /// deadline whose window is still busy (no flapping), closes once the
    /// distress has aged out, and a recovered breaker re-trips cleanly on
    /// a fresh burst.
    #[test]
    fn recovers_after_the_cool_window_and_retrips_cleanly(
        trip in 2usize..10,
        window in 200.0f64..600.0,
        cooldown in 30.0f64..100.0,
    ) {
        // cooldown < window/2, so the first deadline lands while the
        // original burst is still in the window.
        let mut b = breaker(trip, 0, window, cooldown);
        for _ in 0..trip {
            b.note_distress(0.0);
        }
        prop_assert!(b.maybe_trip(0.0));

        // Before the deadline: recover() is a no-op, breaker stays open.
        let early = cooldown * 0.5;
        b.prune(early);
        b.recover(early);
        prop_assert!(b.is_open());

        // At the deadline the window is still busy: the breaker holds
        // open (re-arms one more cooldown) rather than flapping closed —
        // and the window was fresh, so this is not a quiet reopen.
        b.prune(cooldown);
        b.recover(cooldown);
        prop_assert!(b.is_open(), "busy deadline must hold the breaker open");
        prop_assert_eq!(b.quiet_reopens(), 0);
        prop_assert_eq!(b.next_check_after(cooldown), Some(2.0 * cooldown));

        // Once the burst has aged out of the window and the re-armed
        // deadline has passed, the breaker closes.
        let calm = window + cooldown + 1.0;
        b.prune(calm);
        b.recover(calm);
        prop_assert!(!b.is_open(), "drained breaker must close after the cool window");
        prop_assert_eq!(b.window_len(), 0);
        prop_assert_eq!(b.trips(), 1);

        // A fresh burst re-trips cleanly from the recovered state.
        for _ in 0..trip {
            b.note_distress(calm);
        }
        prop_assert!(b.maybe_trip(calm), "recovered breaker must re-trip on a fresh burst");
        prop_assert!(b.is_open());
        prop_assert_eq!(b.trips(), 2);
    }

    /// Trip-lock tripwire: under the service's per-instant call order
    /// (prune, recover, note, maybe_trip) over an arbitrary distress
    /// schedule, a recovery deadline never observes a stale window
    /// (`quiet_reopens == 0`), trips only fire with a full window, and a
    /// breaker left alone past one window-plus-cooldown always closes.
    #[test]
    fn random_schedules_never_trip_lock(
        deltas in proptest::collection::vec(0.5f64..400.0, 1..80),
        trip in 2usize..8,
        recover_raw in 0usize..4,
        window in 100.0f64..600.0,
        cooldown in 20.0f64..300.0,
    ) {
        let recover = recover_raw.min(trip - 1);
        let mut b = breaker(trip, recover, window, cooldown);
        let mut t = 0.0;
        for d in deltas {
            t += d;
            b.prune(t);
            b.recover(t);
            b.note_distress(t);
            if b.maybe_trip(t) {
                prop_assert!(b.is_open());
                prop_assert!(b.window_len() >= trip, "trip with a short window");
            }
        }
        // Quiet tail: everything ages out, every deadline passes.
        let end = t + window + cooldown + 1.0;
        b.prune(end);
        b.recover(end);
        prop_assert!(!b.is_open(), "a drained, quiet breaker must close");
        prop_assert_eq!(b.window_len(), 0);
        prop_assert_eq!(
            b.quiet_reopens(), 0,
            "prune-before-recover must never reach a deadline with a stale window"
        );
    }
}
