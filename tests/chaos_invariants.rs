//! Chaos invariants: the fault-injection layer must be strictly additive
//! (zero intensity reproduces the fault-free scheduler bit for bit), must
//! conserve work and terminate at every stress level, must stay
//! worker-count deterministic, and the self-healing configuration must
//! actually help where it claims to.

use colocate::harness::{
    evaluate_chaos, evaluate_scenario_multi, trained_system_for, ChaosEntry, ChaosSpec, RunConfig,
};
use colocate::scheduler::{
    run_schedule_custom, run_schedule_with_faults, PolicyKind, ResilienceConfig, SchedulerConfig,
};
use simkit::faults::{FaultPlan, FaultPlanConfig};
use sparklite::cluster::ClusterSpec;
use workloads::{Catalog, MixScenario};

fn small_config(nodes: usize) -> SchedulerConfig {
    SchedulerConfig {
        cluster: ClusterSpec::small(nodes),
        ..Default::default()
    }
}

fn jobs_of(catalog: &Catalog, names: &[(&str, f64)]) -> Vec<(usize, f64)> {
    names
        .iter()
        .map(|&(n, gb)| (catalog.by_name(n).unwrap().index(), gb))
        .collect()
}

fn plan_for(jobs: usize, nodes: usize, intensity: f64, seed: u64) -> FaultPlan {
    FaultPlan::generate(
        seed,
        &FaultPlanConfig {
            intensity,
            horizon_secs: 4_000.0,
            nodes,
            apps: jobs,
            ..Default::default()
        },
    )
}

#[test]
fn zero_intensity_plan_is_bit_identical_to_fault_free() {
    let catalog = Catalog::paper();
    let config = small_config(4);
    let jobs = jobs_of(
        &catalog,
        &[
            ("HB.Sort", 130.0),
            ("HB.PageRank", 60.0),
            ("SP.glm-regression", 130.0),
            ("BDB.Grep", 130.0),
        ],
    );
    for policy in [PolicyKind::Oracle, PolicyKind::Pairwise] {
        let plain = run_schedule_custom(policy, &catalog, &jobs, None, &config, 21).unwrap();
        let chaos = run_schedule_with_faults(
            policy,
            &catalog,
            &jobs,
            None,
            &config,
            21,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(
            plain.makespan_secs.to_bits(),
            chaos.makespan_secs.to_bits(),
            "{policy:?}: empty plan must not change the makespan"
        );
        assert_eq!(plain.oom_kills, chaos.oom_kills);
        assert_eq!(plain.trace.len(), chaos.trace.len());
        for (a, b) in plain.per_app.iter().zip(chaos.per_app.iter()) {
            assert_eq!(a.finished_at.to_bits(), b.finished_at.to_bits());
            assert_eq!(a.ready_at.to_bits(), b.ready_at.to_bits());
        }
        assert_eq!(chaos.faults, Default::default(), "no faults delivered");
    }
}

#[test]
fn zero_intensity_campaign_matches_fault_free_campaign() {
    let catalog = Catalog::paper();
    let config = RunConfig {
        scheduler: small_config(4),
        ..Default::default()
    };
    let scenario = MixScenario { label: 1, apps: 2 };
    let baseline =
        evaluate_scenario_multi(&[PolicyKind::Oracle], scenario, &catalog, &config, 3, 33).unwrap();
    let chaos = evaluate_chaos(
        &[ChaosEntry {
            label: "Oracle",
            policy: PolicyKind::Oracle,
            resilience: ResilienceConfig::default(),
        }],
        scenario,
        &catalog,
        &config,
        3,
        33,
        &ChaosSpec::at_intensity(0.0),
    )
    .unwrap();
    assert_eq!(
        baseline.per_policy[0].stp_mean.to_bits(),
        chaos.per_entry[0].stp_mean.to_bits(),
        "zero-intensity chaos campaign must reproduce the fault-free STP bit for bit"
    );
    assert_eq!(
        baseline.per_policy[0].antt_mean.to_bits(),
        chaos.per_entry[0].antt_mean.to_bits()
    );
}

#[test]
fn faulted_schedules_conserve_work_and_terminate() {
    let catalog = Catalog::paper();
    let nodes = 4;
    let config = small_config(nodes);
    let jobs = jobs_of(
        &catalog,
        &[
            ("HB.Sort", 130.0),
            ("HB.PageRank", 60.0),
            ("SP.glm-regression", 130.0),
            ("BDB.Grep", 130.0),
            ("HB.WordCount", 130.0),
        ],
    );
    for intensity in [0.1, 0.3, 0.5] {
        let plan = plan_for(jobs.len(), nodes, intensity, 77);
        assert!(!plan.is_empty(), "intensity {intensity} draws faults");
        for resilience in [
            ResilienceConfig::default(),
            ResilienceConfig::self_healing(),
        ] {
            let config = SchedulerConfig {
                resilience,
                ..config.clone()
            };
            let out = run_schedule_with_faults(
                PolicyKind::Oracle,
                &catalog,
                &jobs,
                None,
                &config,
                77,
                &plan,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "intensity {intensity} (resilience {}) must terminate: {e}",
                    resilience.enabled
                )
            });
            // Work conservation: every application finishes, which the
            // engine only reports once every GB of its input has been
            // processed — crashed slices included.
            assert_eq!(out.per_app.len(), jobs.len());
            assert!(
                out.per_app.iter().all(|a| a.finished_at > 0.0),
                "intensity {intensity}: all apps must finish"
            );
            let last = out
                .per_app
                .iter()
                .map(|a| a.finished_at)
                .fold(0.0, f64::max);
            assert!(out.makespan_secs >= last - 1e-6);
            // The fault layer delivered what the plan scheduled (crashes
            // on executor-less nodes are silent no-ops, so delivered
            // executor crashes may undercount the plan).
            let delivered = out.faults;
            let total = delivered.node_crashes
                + delivered.executor_crashes
                + delivered.monitor_dropouts
                + delivered.prediction_noise;
            assert!(total <= plan.len());
            assert!(
                total > 0,
                "intensity {intensity}: some faults must land before the makespan"
            );
        }
    }
}

#[test]
fn chaos_campaigns_are_worker_count_deterministic() {
    let catalog = Catalog::paper();
    let entries = [
        ChaosEntry {
            label: "healed",
            policy: PolicyKind::Moe,
            resilience: ResilienceConfig::self_healing(),
        },
        ChaosEntry {
            label: "oracle",
            policy: PolicyKind::Oracle,
            resilience: ResilienceConfig::default(),
        },
    ];
    let scenario = MixScenario { label: 1, apps: 2 };
    let chaos = ChaosSpec::at_intensity(0.3);
    let run = |workers: usize| {
        let config = RunConfig {
            scheduler: small_config(4),
            workers: Some(workers),
            ..Default::default()
        };
        evaluate_chaos(&entries, scenario, &catalog, &config, 3, 55, &chaos).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    for (a, b) in serial.per_entry.iter().zip(parallel.per_entry.iter()) {
        assert_eq!(a.stp_mean.to_bits(), b.stp_mean.to_bits(), "{}", a.label);
        assert_eq!(a.antt_mean.to_bits(), b.antt_mean.to_bits(), "{}", a.label);
        assert_eq!(a.stp_min_max.0.to_bits(), b.stp_min_max.0.to_bits());
        assert_eq!(a.stp_min_max.1.to_bits(), b.stp_min_max.1.to_bits());
        assert_eq!(a.faults, b.faults, "{}", a.label);
    }
}

#[test]
fn self_healing_beats_plain_moe_under_heavy_faults() {
    // The acceptance bar: at intensity >= 0.3 the self-healing MoE must
    // strictly improve ANTT over the same policy with recovery disabled,
    // on the same mixes under the same fault plans.
    let catalog = Catalog::paper();
    let nodes = 4;
    let base = small_config(nodes);
    let jobs = jobs_of(
        &catalog,
        &[
            ("SP.NaiveBayes", 100.0),
            ("BDB.NaivesBayes", 100.0),
            ("HB.Bayes", 100.0),
            ("SP.Pearson", 100.0),
            ("HB.Sort", 130.0),
            ("HB.Scan", 130.0),
        ],
    );
    let run_config = RunConfig {
        scheduler: base.clone(),
        ..Default::default()
    };
    let system = trained_system_for(PolicyKind::Moe, &catalog, &run_config, 19)
        .unwrap()
        .unwrap();
    let mut healed_antt = 0.0;
    let mut plain_antt = 0.0;
    for seed in [19u64, 20, 21] {
        let plan = plan_for(jobs.len(), nodes, 0.3, seed ^ 0xC4A0_5EED);
        let turnarounds = |resilience: ResilienceConfig| {
            let config = SchedulerConfig {
                resilience,
                ..base.clone()
            };
            let out = run_schedule_with_faults(
                PolicyKind::Moe,
                &catalog,
                &jobs,
                Some(&system),
                &config,
                seed,
                &plan,
            )
            .unwrap();
            out.per_app.iter().map(|a| a.finished_at).sum::<f64>() / out.per_app.len() as f64
        };
        // Lower mean turnaround == better ANTT (same fault-free isolated
        // denominators on both sides).
        healed_antt += turnarounds(ResilienceConfig::self_healing());
        plain_antt += turnarounds(ResilienceConfig::default());
    }
    assert!(
        healed_antt < plain_antt,
        "self-healing mean turnaround {:.0}s must strictly beat plain {:.0}s at intensity 0.3",
        healed_antt / 3.0,
        plain_antt / 3.0
    );
}
