//! Integration tests for the paper's extension points (§1, §3.4):
//! registering new experts without retraining, multi-phase applications,
//! and the windowed resource monitor.

use mlkit::regression::{CurveFamily, FittedCurve};
use moe_core::calibration::CalibratedModel;
use moe_core::expert::{ExpertId, MemoryExpert};
use moe_core::features::FeatureVector;
use moe_core::phases::{PhaseProfile, PhasedModel};
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use moe_core::MoeError;
use std::sync::Arc;

/// A quadratic expert, `y = m·x² + b` (calibrated exactly on two points).
#[derive(Debug)]
struct QuadraticExpert;

impl MemoryExpert for QuadraticExpert {
    fn name(&self) -> &str {
        "Quadratic Regression"
    }
    fn formula(&self) -> &str {
        "y = m*x^2 + b"
    }
    fn fit(&self, xs: &[f64], ys: &[f64]) -> Result<CalibratedModel, MoeError> {
        let sq: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let lin = mlkit::regression::fit_linear(&sq, ys)
            .map_err(|e| MoeError::InvalidTraining(e.to_string()))?;
        Ok(CalibratedModel::from_curve(FittedCurve {
            family: CurveFamily::Linear,
            m: lin.m,
            b: lin.b,
        }))
    }
    fn calibrate(&self, p1: (f64, f64), p2: (f64, f64)) -> Result<CalibratedModel, MoeError> {
        self.fit(&[p1.0, p2.0], &[p1.1, p2.1])
    }
}

fn cluster_features(cluster: usize, jitter: f64) -> FeatureVector {
    FeatureVector::from_fn(|i| {
        if i / 8 == cluster.min(2) {
            0.9 + jitter
        } else {
            0.1 + jitter
        }
    })
}

fn base_predictor() -> MoePredictor {
    let registry = ExpertRegistry::builtin();
    let mut programs = Vec::new();
    for c in 0..3 {
        for j in 0..3 {
            programs.push(TrainingProgram::new(
                format!("app-{c}-{j}"),
                cluster_features(c, j as f64 * 0.01),
                ExpertId::from_usize(c),
            ));
        }
    }
    MoePredictor::train(registry, &programs, PredictorConfig::default()).unwrap()
}

#[test]
fn fourth_expert_joins_without_retraining_and_wins_only_where_it_should() {
    let mut predictor = base_predictor();
    let exemplars_before = predictor.selector().exemplars();

    // A distinctive signature for the new family.
    let quad_features = FeatureVector::from_fn(|i| if i % 2 == 0 { 0.95 } else { 0.55 });
    let quad_id = predictor
        .extend(Arc::new(QuadraticExpert), &quad_features)
        .unwrap();
    assert_eq!(predictor.registry().len(), 4);
    assert_eq!(predictor.selector().exemplars(), exemplars_before + 1);

    // Old applications still map to the old experts...
    for c in 0..3 {
        let sel = predictor.select(&cluster_features(c, 0.005)).unwrap();
        assert_eq!(sel.expert, ExpertId::from_usize(c));
    }
    // ...and the new family maps to the new expert.
    let sel = predictor.select(&quad_features).unwrap();
    assert_eq!(sel.expert, quad_id);

    // End to end: calibrate the quadratic y = 0.01·x² + 2 from two points
    // and check interpolation at the linear-carrier level.
    let truth = |x: f64| 0.01 * x * x + 2.0;
    let model = predictor
        .calibrate(quad_id, (10.0, truth(10.0)), (20.0, truth(20.0)))
        .unwrap();
    let predicted = model.curve().m * 30.0f64.powi(2) + model.curve().b;
    assert!((predicted - truth(30.0)).abs() < 1e-9);
}

#[test]
fn phased_applications_compose_through_the_predictor() {
    let predictor = base_predictor();
    let lin = FittedCurve {
        family: CurveFamily::Linear,
        m: 0.8,
        b: 0.5,
    };
    let exp = FittedCurve {
        family: CurveFamily::Exponential,
        m: 12.0,
        b: 0.9,
    };
    let profiles = vec![
        PhaseProfile {
            name: "ingest".into(),
            features: cluster_features(0, 0.0),
            calibration: [(1.0, lin.eval(1.0)), (2.0, lin.eval(2.0))],
        },
        PhaseProfile {
            name: "shuffle".into(),
            features: cluster_features(1, 0.0),
            calibration: [(1.0, exp.eval(1.0)), (2.0, exp.eval(2.0))],
        },
    ];
    let model = PhasedModel::from_profiles(&predictor, &profiles).unwrap();
    // Small inputs: the saturating shuffle dominates; large inputs: linear
    // ingest dominates.
    assert_eq!(model.dominant_phase(5.0).name, "shuffle");
    assert_eq!(model.dominant_phase(50.0).name, "ingest");
    // The composite budget answer is safe for both phases.
    let x = model.max_input_for_budget(10.0).unwrap();
    assert!(model.peak_footprint_gb(x) <= 10.0 * 1.01);
    assert!(!model.any_low_confidence());
}

#[test]
fn monitor_smooths_bursts_for_the_dispatcher() {
    use sparklite::app::AppSpec;
    use sparklite::cluster::ClusterSpec;
    use sparklite::engine::ClusterEngine;
    use sparklite::monitor::{MonitorConfig, ResourceMonitor};
    use sparklite::perf::InterferenceModel;

    let mut engine = ClusterEngine::new(ClusterSpec::small(1), InterferenceModel::default());
    let node = engine.cluster().node_ids()[0];
    let mut monitor = ResourceMonitor::new(
        1,
        MonitorConfig {
            window_secs: 300.0,
            report_period_secs: 30.0,
        },
    );

    // A burst of load, then quiet.
    let app = engine.submit(AppSpec {
        name: "burst".into(),
        input_gb: 3.0,
        rate_gb_per_s: 0.01,
        cpu_util: 0.8,
        memory_curve: FittedCurve {
            family: CurveFamily::Linear,
            m: 0.5,
            b: 1.0,
        },
        footprint_noise_sd: 0.0,
    });
    let exec = engine.spawn_executor(app, node, 3.0, 3.0).unwrap().unwrap();
    for t in [0.0, 30.0, 60.0, 90.0] {
        monitor.observe(&engine, t);
    }
    engine.advance(300.0);
    engine.complete_executor(exec).unwrap();

    // Instantaneous load is zero; the windowed view still remembers the
    // burst until it ages out.
    assert_eq!(engine.node_cpu_load(node), 0.0);
    monitor.observe(&engine, 120.0);
    assert!(monitor.windowed_cpu(node) > 0.5);
    monitor.observe(&engine, 500.0);
    assert!(
        monitor.windowed_cpu(node) < 0.1,
        "burst aged out of the window"
    );
}
