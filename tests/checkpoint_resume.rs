//! Kill-resume equivalence for checkpointed campaigns (DESIGN.md §10).
//!
//! A campaign killed at a deterministic point — after N journal appends,
//! optionally mid-append with a torn trailing record — and then resumed
//! must produce bit-for-bit the statistics of an uninterrupted run, at
//! `SPARK_MOE_THREADS = 1` and under real fan-out alike, because the
//! stats are a pure function of the index-ordered fold sequence the
//! journal replays.

use colocate::checkpoint::CheckpointConfig;
use colocate::harness::{
    evaluate_chaos, evaluate_chaos_checkpointed, evaluate_scenario, evaluate_scenario_checkpointed,
    evaluate_scenario_multi, evaluate_scenario_multi_checkpointed, ChaosEntry, ChaosSpec,
    RunConfig, ScenarioStats,
};
use colocate::scheduler::{PolicyKind, ResilienceConfig, SchedulerConfig};
use colocate::ColocateError;
use simkit::journal::{JournalError, KillPoint};
use sparklite::cluster::ClusterSpec;
use std::path::PathBuf;
use workloads::{Catalog, MixScenario};

fn config(workers: usize) -> RunConfig {
    RunConfig {
        scheduler: SchedulerConfig {
            cluster: ClusterSpec::small(4),
            ..Default::default()
        },
        workers: Some(workers),
        ..Default::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ckpt_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SCENARIO: MixScenario = MixScenario { label: 1, apps: 2 };
const SEED: u64 = 33;

fn assert_scenario_stats_bitwise_eq(a: &ScenarioStats, b: &ScenarioStats, what: &str) {
    assert_eq!(a.mixes, b.mixes, "{what}: mix count");
    assert_eq!(
        a.stp_mean.to_bits(),
        b.stp_mean.to_bits(),
        "{what}: stp mean"
    );
    assert_eq!(
        a.stp_min_max.0.to_bits(),
        b.stp_min_max.0.to_bits(),
        "{what}: stp min"
    );
    assert_eq!(
        a.stp_min_max.1.to_bits(),
        b.stp_min_max.1.to_bits(),
        "{what}: stp max"
    );
    assert_eq!(
        a.antt_mean.to_bits(),
        b.antt_mean.to_bits(),
        "{what}: antt mean"
    );
    assert_eq!(
        a.antt_min_max.0.to_bits(),
        b.antt_min_max.0.to_bits(),
        "{what}: antt min"
    );
    assert_eq!(
        a.antt_min_max.1.to_bits(),
        b.antt_min_max.1.to_bits(),
        "{what}: antt max"
    );
}

fn assert_kill_point(err: &ColocateError) {
    assert!(
        matches!(
            err,
            ColocateError::Checkpoint(JournalError::KillPoint { .. })
        ),
        "expected kill-point abort, got: {err}"
    );
}

/// Kill after two committed folds, then resume under a *different* worker
/// count: the resumed stats match an uninterrupted unjournaled run bit
/// for bit, and a second resume (pure journal replay) matches again.
#[test]
fn scenario_kill_resume_is_bitwise_identical_across_worker_counts() {
    let catalog = Catalog::paper();
    let baseline = evaluate_scenario(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
    )
    .unwrap();

    let dir = tmp_dir("scenario");
    let mut ckpt = CheckpointConfig::new(dir.join("campaign.journal"));
    ckpt.kill_point = Some(KillPoint {
        after_appends: 2,
        torn: false,
    });
    let err = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap_err();
    assert_kill_point(&err);

    // Resume with four workers where the original ran with one.
    ckpt.kill_point = None;
    let resumed = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(4),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap();
    assert_scenario_stats_bitwise_eq(&baseline, &resumed, "resume at workers=4");

    // A completed journal replays without recomputing anything.
    let replayed = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap();
    assert_scenario_stats_bitwise_eq(&baseline, &replayed, "full replay at workers=1");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-append leaves a torn trailing record; recovery drops the
/// torn bytes, recomputes that one replay, and still matches the
/// uninterrupted run bit for bit.
#[test]
fn torn_final_record_is_dropped_and_recomputed() {
    let catalog = Catalog::paper();
    let baseline = evaluate_scenario(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
    )
    .unwrap();

    let dir = tmp_dir("torn");
    let mut ckpt = CheckpointConfig::new(dir.join("campaign.journal"));
    ckpt.kill_point = Some(KillPoint {
        after_appends: 1,
        torn: true,
    });
    let err = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap_err();
    assert_kill_point(&err);

    // The torn record must be visible on disk before recovery: the file is
    // longer than one committed record's worth of journal.
    ckpt.kill_point = None;
    let resumed = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(4),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap();
    assert_scenario_stats_bitwise_eq(&baseline, &resumed, "resume past torn tail");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shared-mix multi-policy campaigns resume identically too — the Fig. 6
/// shape — at both worker counts.
#[test]
fn multi_policy_kill_resume_is_bitwise_identical() {
    let catalog = Catalog::paper();
    let policies = [PolicyKind::Oracle, PolicyKind::Pairwise];
    let baseline =
        evaluate_scenario_multi(&policies, SCENARIO, &catalog, &config(1), 4, SEED).unwrap();

    let dir = tmp_dir("multi");
    let mut ckpt = CheckpointConfig::new(dir.join("campaign.journal"));
    ckpt.kill_point = Some(KillPoint {
        after_appends: 2,
        torn: false,
    });
    let err = evaluate_scenario_multi_checkpointed(
        &policies,
        SCENARIO,
        &catalog,
        &config(1),
        4,
        SEED,
        Some(&ckpt),
    )
    .unwrap_err();
    assert_kill_point(&err);

    ckpt.kill_point = None;
    for workers in [1usize, 4] {
        let resumed = evaluate_scenario_multi_checkpointed(
            &policies,
            SCENARIO,
            &catalog,
            &config(workers),
            4,
            SEED,
            Some(&ckpt),
        )
        .unwrap();
        assert_eq!(baseline.per_policy.len(), resumed.per_policy.len());
        for (b, r) in baseline.per_policy.iter().zip(resumed.per_policy.iter()) {
            assert_scenario_stats_bitwise_eq(b, r, &format!("multi resume at workers={workers}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chaos campaign killed mid fault plan resumes to byte-identical
/// machine-readable output: the `BENCH_*.json` record of the resumed run
/// equals the uninterrupted run's, byte for byte.
#[test]
fn chaos_mid_plan_resume_yields_byte_identical_json() {
    let catalog = Catalog::paper();
    let entries = [
        ChaosEntry {
            label: "Oracle",
            policy: PolicyKind::Oracle,
            resilience: ResilienceConfig::self_healing(),
        },
        ChaosEntry {
            label: "Pairwise",
            policy: PolicyKind::Pairwise,
            resilience: ResilienceConfig::default(),
        },
    ];
    let chaos = ChaosSpec::at_intensity(0.3);
    let baseline =
        evaluate_chaos(&entries, SCENARIO, &catalog, &config(1), 4, SEED, &chaos).unwrap();
    let baseline_json = bench_suite::report::chaos_stats_json(&[baseline]);

    let dir = tmp_dir("chaos");
    let mut ckpt = CheckpointConfig::new(dir.join("campaign.journal"));
    // One journal record commits per mix; aborting after two leaves the
    // campaign mid-plan (faults delivered for mixes 0–1, none beyond).
    ckpt.kill_point = Some(KillPoint {
        after_appends: 2,
        torn: true,
    });
    let err = evaluate_chaos_checkpointed(
        &entries,
        SCENARIO,
        &catalog,
        &config(1),
        4,
        SEED,
        &chaos,
        Some(&ckpt),
    )
    .unwrap_err();
    assert_kill_point(&err);

    ckpt.kill_point = None;
    for workers in [1usize, 4] {
        let resumed = evaluate_chaos_checkpointed(
            &entries,
            SCENARIO,
            &catalog,
            &config(workers),
            4,
            SEED,
            &chaos,
            Some(&ckpt),
        )
        .unwrap();
        let resumed_json = bench_suite::report::chaos_stats_json(&[resumed]);
        assert_eq!(
            baseline_json, resumed_json,
            "chaos JSON record must be byte-identical after resume (workers={workers})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal belongs to exactly one campaign definition: reusing the file
/// with a different base seed is refused with a typed binding mismatch
/// instead of silently mixing folds from different campaigns.
#[test]
fn journal_refuses_a_different_campaign_definition() {
    let catalog = Catalog::paper();
    let dir = tmp_dir("binding");
    let ckpt = CheckpointConfig::new(dir.join("campaign.journal"));
    evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED,
        Some(&ckpt),
    )
    .unwrap();

    let err = evaluate_scenario_checkpointed(
        PolicyKind::Oracle,
        SCENARIO,
        &catalog,
        &config(1),
        3,
        5,
        SEED + 1,
        Some(&ckpt),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ColocateError::Checkpoint(JournalError::BindingMismatch { .. })
        ),
        "expected binding mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
