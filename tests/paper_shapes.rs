//! Regression tests pinning the paper's qualitative shapes (the claims
//! EXPERIMENTS.md reports). Small campaigns keep them CI-friendly; the
//! assertions use generous margins so only genuine regressions trip them.

use colocate::harness::{evaluate_scenario_multi, RunConfig};
use colocate::scheduler::PolicyKind;
use workloads::{Catalog, MixScenario};

fn campaign(
    policies: &[PolicyKind],
    scenario_idx: usize,
    mixes: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    let catalog = Catalog::paper();
    let config = RunConfig::default();
    let stats = evaluate_scenario_multi(
        policies,
        MixScenario::TABLE3[scenario_idx],
        &catalog,
        &config,
        mixes,
        seed,
    )
    .expect("campaign");
    stats
        .per_policy
        .iter()
        .map(|s| (s.stp_mean, s.antt_mean))
        .collect()
}

#[test]
fn pairwise_plateaus_while_ours_scales() {
    // Fig. 6's central contrast: by L6 (13 applications) our approach is
    // far ahead of pairwise on throughput.
    let rows = campaign(&[PolicyKind::Pairwise, PolicyKind::Moe], 5, 3, 42);
    let (pairwise, ours) = (rows[0].0, rows[1].0);
    assert!(
        ours > pairwise * 1.4,
        "ours {ours:.2} must clearly beat pairwise {pairwise:.2} at L6"
    );
    // And pairwise has plateaued near its small-scenario level.
    assert!(pairwise < 8.0, "pairwise {pairwise:.2} should plateau");
}

#[test]
fn ours_tracks_oracle_within_paper_band() {
    // §6.1: our approach reaches ≥ ~84 % of the Oracle's STP. Allow noise
    // headroom on a small campaign.
    let rows = campaign(&[PolicyKind::Moe, PolicyKind::Oracle], 6, 3, 42);
    let (ours, oracle) = (rows[0].0, rows[1].0);
    let ratio = ours / oracle;
    assert!(
        (0.6..=1.1).contains(&ratio),
        "ours/oracle {ratio:.2} out of band (ours {ours:.2}, oracle {oracle:.2})"
    );
}

#[test]
fn online_search_trails_badly() {
    // Fig. 10: the runtime-search scheme loses by a factor ~2.
    let rows = campaign(&[PolicyKind::OnlineSearch, PolicyKind::Moe], 5, 3, 10);
    let (online, ours) = (rows[0].0, rows[1].0);
    assert!(
        ours > online * 1.4,
        "ours {ours:.2} must dominate online search {online:.2}"
    );
}

#[test]
fn co_location_beats_the_isolated_baseline_at_scale() {
    // The elementary claim: at L6 the normalized STP (formula 1) of every
    // co-locating scheme clearly exceeds 1.
    let rows = campaign(
        &[PolicyKind::Pairwise, PolicyKind::Quasar, PolicyKind::Moe],
        5,
        3,
        7,
    );
    for (stp, _) in rows {
        assert!(stp > 2.0, "co-location STP {stp:.2} too low");
    }
}

#[test]
fn antt_reductions_are_positive_at_scale() {
    // Fig. 6b: from L2 onward every predictive scheme cuts turnaround
    // substantially versus one-by-one execution.
    let rows = campaign(
        &[PolicyKind::Quasar, PolicyKind::Moe, PolicyKind::Oracle],
        7,
        3,
        42,
    );
    for (_, antt) in rows {
        assert!(antt > 30.0, "L8 ANTT reduction {antt:.1}% too small");
    }
}
