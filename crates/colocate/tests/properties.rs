//! Property-based tests for the co-location runtime's metrics and
//! scheduling invariants.

use colocate::metrics::{isolated_baseline_turnarounds, normalize, schedule_metrics};
use colocate::scheduler::{run_schedule_custom, PolicyKind, SchedulerConfig};
use proptest::prelude::*;
use sparklite::cluster::ClusterSpec;
use workloads::Catalog;

proptest! {
    /// STP is positive and bounded by the task count when no task finishes
    /// faster than its isolated run; ANTT is at least 1 in that case.
    #[test]
    fn stp_antt_bounds(
        iso in proptest::collection::vec(1.0f64..1e4, 1..40),
        slowdowns in proptest::collection::vec(1.0f64..20.0, 40),
    ) {
        let turnarounds: Vec<f64> = iso
            .iter()
            .zip(slowdowns.iter())
            .map(|(c, s)| c * s)
            .collect();
        let m = schedule_metrics(&iso, &turnarounds);
        prop_assert!(m.stp > 0.0);
        prop_assert!(m.stp <= iso.len() as f64 + 1e-9);
        prop_assert!(m.antt >= 1.0 - 1e-12);
    }

    /// The isolated baseline normalises to zero ANTT reduction, and its
    /// formula-(1) STP lies in [1, n].
    #[test]
    fn baseline_normalisation_fixed_point(
        iso in proptest::collection::vec(1.0f64..1e4, 1..40),
    ) {
        let base = isolated_baseline_turnarounds(&iso);
        let n = normalize(&iso, &base);
        prop_assert!(n.antt_reduction_pct.abs() < 1e-9);
        prop_assert!(n.normalized_stp >= 1.0 - 1e-9);
        prop_assert!(n.normalized_stp <= iso.len() as f64 + 1e-9);
    }

    /// Scaling every turnaround by a constant factor scales STP inversely
    /// and moves the ANTT reduction monotonically.
    #[test]
    fn stp_scales_inversely(
        iso in proptest::collection::vec(10.0f64..1e3, 2..20),
        factor in 1.1f64..5.0,
    ) {
        let base: Vec<f64> = iso.iter().map(|c| c * 2.0).collect();
        let slower: Vec<f64> = base.iter().map(|c| c * factor).collect();
        let fast = schedule_metrics(&iso, &base);
        let slow = schedule_metrics(&iso, &slower);
        prop_assert!((fast.stp / slow.stp - factor).abs() < 1e-9);
        prop_assert!(slow.antt > fast.antt);
    }

    /// Any subset of catalog jobs scheduled under the Oracle terminates
    /// with every turnaround positive and no OOM kills (its predictions
    /// are exact), regardless of the seed.
    #[test]
    fn oracle_schedules_cleanly(
        picks in proptest::collection::vec(0usize..44, 1..5),
        seed in 0u64..1000,
    ) {
        let catalog = Catalog::paper();
        let config = SchedulerConfig {
            cluster: ClusterSpec::small(4),
            ..Default::default()
        };
        let jobs: Vec<(usize, f64)> = picks.iter().map(|&b| (b, 5.0)).collect();
        let outcome = run_schedule_custom(
            PolicyKind::Oracle,
            &catalog,
            &jobs,
            None,
            &config,
            seed,
        )
        .unwrap();
        prop_assert_eq!(outcome.per_app.len(), jobs.len());
        prop_assert!(outcome.per_app.iter().all(|a| a.finished_at > 0.0));
        prop_assert_eq!(outcome.oom_kills, 0);
        prop_assert!(outcome.makespan_secs > 0.0);
    }
}
