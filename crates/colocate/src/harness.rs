//! Campaign runners: everything the figure/table binaries need.
//!
//! * [`isolated_times`] — per-task `C_iso`: each application alone on the
//!   cluster with all memory (the denominator of every metric, §5.3);
//! * [`run_policy`] — one mix under one policy, with normalised metrics;
//! * [`evaluate_scenario`] — many random mixes of a Table 3 scenario,
//!   replayed until the 95 % confidence half-width drops below 5 % of the
//!   mean (§5.2), reporting mean and min–max bars (Fig. 6);
//! * [`evaluate_chaos`] — shared-mix, shared-fault-plan chaos campaigns:
//!   several `(policy, resilience)` entries replayed against identical
//!   injected faults (Fig. 19);
//! * [`bin_trace`] — converts event-sampled utilisation traces into the
//!   time-binned per-node matrix of Fig. 7;
//! * [`overhead_fractions`] — feature-extraction and calibration shares of
//!   total execution time (Figs. 11/12).

use crate::checkpoint::{self, CheckpointConfig};
use crate::metrics::{normalize, NormalizedMetrics};
use crate::scheduler::{
    run_schedule, run_schedule_custom, run_schedule_with_faults, FaultStats, PolicyKind,
    ResilienceConfig, ScheduleOutcome, SchedulerConfig,
};
use crate::training::{train_system, TrainedSystem, TrainingConfig};
use crate::ColocateError;
use simkit::faults::{FaultPlan, FaultPlanConfig};
use simkit::journal::Journal;
use simkit::par;
use simkit::stats::Welford;
use simkit::SimRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use workloads::catalog::Catalog;
use workloads::mixes::{MixEntry, MixScenario};

/// Configuration for harness runs: scheduler + offline training settings.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// Offline training configuration.
    pub training: TrainingConfig,
    /// Worker threads for campaign fan-out; `None` defers to
    /// [`par::available_workers`] (the `SPARK_MOE_THREADS` override, then
    /// the host's parallelism). Campaign results are identical for every
    /// value — see [`evaluate_scenario`].
    pub workers: Option<usize>,
}

impl RunConfig {
    /// The worker count campaigns run with.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(par::available_workers).max(1)
    }
}

/// Outcome of one policy on one mix, with normalised metrics attached.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The raw schedule.
    pub makespan_secs: f64,
    /// Per-app turnarounds (s), submission order.
    pub turnarounds: Vec<f64>,
    /// Per-app isolated times (s), submission order.
    pub iso_secs: Vec<f64>,
    /// Normalised STP / ANTT-reduction against the isolated baseline.
    pub normalized: NormalizedMetrics,
    /// The full schedule outcome (trace, overheads, OOM count).
    pub schedule: ScheduleOutcome,
}

/// Isolated execution time of every job in `jobs`, each run alone on the
/// cluster with all memory.
///
/// # Errors
///
/// Propagates scheduler failures.
pub fn isolated_times_custom(
    catalog: &Catalog,
    jobs: &[(usize, f64)],
    config: &SchedulerConfig,
    seed: u64,
) -> Result<Vec<f64>, ColocateError> {
    jobs.iter()
        .map(|&job| {
            let solo =
                run_schedule_custom(PolicyKind::Isolated, catalog, &[job], None, config, seed)?;
            Ok(solo.makespan_secs)
        })
        .collect()
}

/// [`isolated_times_custom`] over a Table 3-style mix.
///
/// # Errors
///
/// Propagates scheduler failures.
pub fn isolated_times(
    catalog: &Catalog,
    mix: &[MixEntry],
    config: &SchedulerConfig,
    seed: u64,
) -> Result<Vec<f64>, ColocateError> {
    let jobs: Vec<(usize, f64)> = mix.iter().map(|e| (e.benchmark, e.size.gb())).collect();
    isolated_times_custom(catalog, &jobs, config, seed)
}

/// Memoizes isolated solo runs (`C_iso`) across a campaign.
///
/// A solo run is a pure function of `(benchmark, input size, seed)`, yet
/// the isolated baseline is recomputed for every app of every mix — and
/// Table 3 mixes repeat `(benchmark, size)` pairs freely, so a campaign
/// pays for the same solo simulations over and over. This cache keys each
/// solo makespan by exactly its inputs, making cached and uncached
/// campaigns bit-for-bit identical while skipping every repeat.
///
/// The cache is shared across the campaign's worker threads. Lookups and
/// inserts take a short lock; the simulation itself runs lock-free, so two
/// workers can momentarily duplicate the same key — both compute the same
/// deterministic value, and the extra insert is a no-op.
#[derive(Debug, Default)]
pub struct BaselineCache {
    /// `(benchmark index, input-size bits, seed) -> solo makespan (s)`.
    map: Mutex<HashMap<(usize, u64, u64), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BaselineCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The isolated makespan of one job, computed at most once per key.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn isolated_secs(
        &self,
        catalog: &Catalog,
        job: (usize, f64),
        config: &SchedulerConfig,
        seed: u64,
    ) -> Result<f64, ColocateError> {
        // A poisoned lock only means another worker panicked after a
        // completed insert; the map is a plain memo table whose entries
        // are always whole, so recover the guard rather than propagate.
        let key = (job.0, job.1.to_bits(), seed);
        if let Some(&secs) = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(secs);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let solo = run_schedule_custom(PolicyKind::Isolated, catalog, &[job], None, config, seed)?;
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, solo.makespan_secs);
        Ok(solo.makespan_secs)
    }

    /// [`isolated_times`] through the cache: per-app `C_iso` for a mix.
    ///
    /// # Errors
    ///
    /// Propagates scheduler failures.
    pub fn isolated_times(
        &self,
        catalog: &Catalog,
        mix: &[MixEntry],
        config: &SchedulerConfig,
        seed: u64,
    ) -> Result<Vec<f64>, ColocateError> {
        mix.iter()
            .map(|e| self.isolated_secs(catalog, (e.benchmark, e.size.gb()), config, seed))
            .collect()
    }

    /// `(hits, misses)` so far; a hit is a solo simulation skipped.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Runs one mix under one policy and normalises against the isolated
/// baseline. Training (when the policy needs it) is derived from `seed`.
///
/// # Errors
///
/// Propagates training and scheduler failures.
pub fn run_policy(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[MixEntry],
    config: &RunConfig,
    seed: u64,
) -> Result<PolicyOutcome, ColocateError> {
    let system = trained_system_for(policy, catalog, config, seed)?;
    let schedule = run_schedule(
        policy,
        catalog,
        mix,
        system.as_ref(),
        &config.scheduler,
        seed,
    )?;
    let iso_secs = isolated_times(catalog, mix, &config.scheduler, seed)?;
    let turnarounds: Vec<f64> = schedule.per_app.iter().map(|a| a.finished_at).collect();
    let normalized = normalize(&iso_secs, &turnarounds);
    Ok(PolicyOutcome {
        makespan_secs: schedule.makespan_secs,
        turnarounds,
        iso_secs,
        normalized,
        schedule,
    })
}

/// Whether a policy needs the offline-trained system.
fn needs_offline_training(policy: PolicyKind) -> bool {
    matches!(
        policy,
        PolicyKind::Moe | PolicyKind::Quasar | PolicyKind::UnifiedAnn
    )
}

/// Trains the offline system if `policy` needs one.
///
/// # Errors
///
/// Propagates training failures.
pub fn trained_system_for(
    policy: PolicyKind,
    catalog: &Catalog,
    config: &RunConfig,
    seed: u64,
) -> Result<Option<TrainedSystem>, ColocateError> {
    if needs_offline_training(policy) {
        let mut rng = SimRng::seed_from(seed ^ 0x7EA1);
        Ok(Some(train_system(catalog, &config.training, &mut rng)?))
    } else {
        Ok(None)
    }
}

/// Trains the offline systems for a whole policy roster, running the
/// training pipeline at most **once**: every predictive policy trains from
/// the same `seed ^ 0x7EA1` stream, so their systems are bit-identical and
/// one pass can be cloned across the roster. The clones share one Arc'd
/// [`PredictionTable`](crate::predictors::PredictionTable), so policies
/// and mix replays of the campaign reuse each other's expert selections.
///
/// # Errors
///
/// Propagates training failures.
pub fn trained_systems_for(
    policies: &[PolicyKind],
    catalog: &Catalog,
    config: &RunConfig,
    seed: u64,
) -> Result<Vec<Option<TrainedSystem>>, ColocateError> {
    let mut shared: Option<TrainedSystem> = None;
    let mut systems = Vec::with_capacity(policies.len());
    for &p in policies {
        if needs_offline_training(p) {
            if shared.is_none() {
                shared = trained_system_for(p, catalog, config, seed)?;
            }
            systems.push(shared.clone());
        } else {
            systems.push(None);
        }
    }
    Ok(systems)
}

/// Aggregated results of a scenario campaign.
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    /// Scenario evaluated.
    pub scenario: MixScenario,
    /// Mean normalised STP across mixes.
    pub stp_mean: f64,
    /// Min/max normalised STP across mixes (the Fig. 6 whiskers).
    pub stp_min_max: (f64, f64),
    /// Mean ANTT reduction (%).
    pub antt_mean: f64,
    /// Min/max ANTT reduction across mixes.
    pub antt_min_max: (f64, f64),
    /// Number of mixes evaluated.
    pub mixes: usize,
}

/// Evaluates one policy on one Table 3 scenario: draws random mixes and
/// replays until the 95 % CI half-width of the normalised STP falls below
/// 5 % of its mean (§5.2), bounded by `min_mixes`/`max_mixes`.
///
/// Replays fan out across [`RunConfig::effective_workers`] threads. Each
/// replay is seeded by `base_seed + index` and results are folded through
/// the [`Welford`] accumulators strictly in index order, with the §5.2
/// stopping rule checked after every fold — exactly the serial semantics.
/// Parallelism is purely speculative: the harness dispatches `min_mixes`
/// replays up front, then one batch of `workers` at a time, and discards
/// any speculative results past the convergence point. The returned
/// [`ScenarioStats`] are therefore bit-for-bit identical for every worker
/// count, including 1.
///
/// # Errors
///
/// Propagates per-mix failures.
pub fn evaluate_scenario(
    policy: PolicyKind,
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    min_mixes: usize,
    max_mixes: usize,
    base_seed: u64,
) -> Result<ScenarioStats, ColocateError> {
    evaluate_scenario_checkpointed(
        policy, scenario, catalog, config, min_mixes, max_mixes, base_seed, None,
    )
}

/// [`evaluate_scenario`] with opt-in crash-safe checkpointing.
///
/// With `ckpt` set, every committed fold is appended to the journal at
/// `ckpt.path` as it happens. On startup the journal is validated against
/// this campaign's definition (seed, policy, scenario, mix bounds,
/// catalog and config signatures — but *not* the worker count), torn or
/// corrupt tail records are truncated, and the surviving folds are
/// replayed through the same Welford accumulators and §5.2 stopping rule
/// before any new replay is dispatched. Because the statistics are a pure
/// function of the index-ordered fold sequence, a resumed campaign is
/// bit-for-bit identical to an uninterrupted one — under any
/// `SPARK_MOE_THREADS`, including a different one than the original run.
///
/// # Errors
///
/// Propagates per-mix failures and journal I/O/validation failures
/// ([`ColocateError::Checkpoint`]).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_scenario_checkpointed(
    policy: PolicyKind,
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    min_mixes: usize,
    max_mixes: usize,
    base_seed: u64,
    ckpt: Option<&CheckpointConfig>,
) -> Result<ScenarioStats, ColocateError> {
    let workers = config.effective_workers();
    let mut stp = Welford::new();
    let mut antt = Welford::new();
    let mut mix_rng = SimRng::seed_from(base_seed);
    let mut count = 0; // replays folded into the accumulators
    let mut done = false; // §5.2 stopping rule (or max_mixes) satisfied

    let mut journal: Option<Journal> = None;
    if let Some(c) = ckpt {
        let binding = checkpoint::scenario_binding(
            policy, scenario, catalog, config, min_mixes, max_mixes, base_seed,
        );
        let recovered = Journal::open(&c.path, &binding, c.flush_every)?;
        // Replay committed folds exactly as the original run folded them,
        // stopping where the original loop would have stopped.
        for payload in &recovered.records {
            if done {
                break;
            }
            let pair = checkpoint::decode_folds(payload, 1)?;
            stp.push(pair[0].0);
            antt.push(pair[0].1);
            count += 1;
            done = count >= max_mixes || (count >= min_mixes && stp.ci_converged(0.05));
        }
        // Keep the scenario RNG aligned: the journaled folds consumed the
        // first `count` draws of the one serial mix stream.
        for _ in 0..count {
            let _ = scenario.random_mix(catalog, &mut mix_rng);
        }
        let mut j = recovered.journal;
        j.set_kill_point(c.kill_point);
        journal = Some(j);
    }

    let mut dispatched = count; // replays handed to the pool (>= count)
    'campaign: while !done && dispatched < max_mixes {
        // Cover the mandatory replays first (the stopping rule cannot
        // fire before min_mixes/two samples); later batches fill the pool.
        let mandatory = min_mixes.max(2).saturating_sub(dispatched);
        let batch = if mandatory > 0 {
            mandatory.min(max_mixes - dispatched)
        } else {
            workers.min(max_mixes - dispatched)
        };
        // Mix drawing stays serial: the scenario RNG is one stream.
        let mixes: Vec<Vec<MixEntry>> = (0..batch)
            .map(|_| scenario.random_mix(catalog, &mut mix_rng))
            .collect();
        let first = dispatched;
        let results = par::par_map_indexed(&mixes, workers, |i, mix| {
            run_policy(policy, catalog, mix, config, base_seed + (first + i) as u64)
        });
        dispatched += batch;
        for result in results {
            let outcome = result?;
            let pair = (
                outcome.normalized.normalized_stp,
                outcome.normalized.antt_reduction_pct,
            );
            // Journal the fold before consuming it, so a kill between
            // append and fold costs one recomputed replay, never a
            // double-counted one.
            if let Some(j) = journal.as_mut() {
                j.append(&checkpoint::encode_folds(&[pair]))?;
            }
            stp.push(pair.0);
            antt.push(pair.1);
            count += 1;
            if count >= min_mixes && stp.ci_converged(0.05) {
                break 'campaign;
            }
            if count >= max_mixes {
                break 'campaign;
            }
        }
    }
    if let Some(j) = journal.as_mut() {
        j.sync()?;
    }
    Ok(ScenarioStats {
        scenario,
        stp_mean: stp.mean(),
        stp_min_max: (stp.min(), stp.max()),
        antt_mean: antt.mean(),
        antt_min_max: (antt.min(), antt.max()),
        mixes: count,
    })
}

/// Per-policy aggregates from a shared-mix campaign
/// (see [`evaluate_scenario_multi`]).
#[derive(Debug, Clone)]
pub struct MultiPolicyStats {
    /// Scenario evaluated.
    pub scenario: MixScenario,
    /// Per-policy stats, parallel to the `policies` argument.
    pub per_policy: Vec<ScenarioStats>,
}

/// Evaluates several policies on the *same* random mixes of one scenario,
/// sharing the per-mix isolated baselines (each app's solo run) across
/// policies — the apples-to-apples comparison of Figs. 6, 9 and 10.
///
/// Mixes fan out across [`RunConfig::effective_workers`] threads (each mix
/// seeded by `base_seed + index`, results folded in index order, so stats
/// are identical for every worker count), the trained system is built once
/// and shared read-only by all workers, and solo baselines are memoized in
/// a campaign-wide [`BaselineCache`] keyed by `(benchmark, size, seed)` —
/// Table 3 mixes repeat apps, so the cache skips a large share of the solo
/// simulations without changing a single bit of output.
///
/// # Errors
///
/// Propagates per-mix failures.
pub fn evaluate_scenario_multi(
    policies: &[PolicyKind],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
) -> Result<MultiPolicyStats, ColocateError> {
    evaluate_scenario_multi_checkpointed(
        policies, scenario, catalog, config, mixes, base_seed, None,
    )
}

/// [`evaluate_scenario_multi`] with opt-in crash-safe checkpointing.
///
/// With `ckpt` set, each mix's per-policy fold is journaled as it
/// commits (in mix-index order) and the computation proceeds one batch
/// of `workers` mixes at a time, so an interrupted campaign loses at most
/// the in-flight batch. On resume the journal is validated against this
/// campaign definition, its folds are replayed, and only the remaining
/// mixes are computed — bit-for-bit identical stats to an uninterrupted
/// run, at any worker count. Without `ckpt` this is exactly
/// [`evaluate_scenario_multi`].
///
/// # Errors
///
/// Propagates per-mix failures and journal I/O/validation failures.
pub fn evaluate_scenario_multi_checkpointed(
    policies: &[PolicyKind],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
    ckpt: Option<&CheckpointConfig>,
) -> Result<MultiPolicyStats, ColocateError> {
    let workers = config.effective_workers();
    let mut stp = vec![Welford::new(); policies.len()];
    let mut antt = vec![Welford::new(); policies.len()];

    // Train once per campaign; predictive policies share one bit-identical
    // system (and thereby one campaign-wide prediction table).
    let systems = trained_systems_for(policies, catalog, config, base_seed)?;

    // Mix drawing stays serial: the scenario RNG is one stream.
    let mut mix_rng = SimRng::seed_from(base_seed);
    let all_mixes: Vec<Vec<MixEntry>> = (0..mixes)
        .map(|_| scenario.random_mix(catalog, &mut mix_rng))
        .collect();

    let mut journal: Option<Journal> = None;
    let mut start = 0; // first mix index not covered by the journal
    if let Some(c) = ckpt {
        let binding =
            checkpoint::multi_binding(policies, scenario, catalog, config, mixes, base_seed);
        let recovered = Journal::open(&c.path, &binding, c.flush_every)?;
        for payload in recovered.records.iter().take(mixes) {
            for (pi, (s, a)) in checkpoint::decode_folds(payload, policies.len())?
                .into_iter()
                .enumerate()
            {
                stp[pi].push(s);
                antt[pi].push(a);
            }
            start += 1;
        }
        let mut j = recovered.journal;
        j.set_kill_point(c.kill_point);
        journal = Some(j);
    }

    let baselines = BaselineCache::new();
    let mut next = start;
    while next < mixes {
        // Checkpointed runs commit one worker-batch at a time so a kill
        // loses at most the in-flight batch; unjournaled runs keep the
        // single full fan-out. Either way folds commit in index order,
        // so the statistics are identical.
        let batch = if journal.is_some() {
            workers.min(mixes - next)
        } else {
            mixes - next
        };
        let first = next;
        let per_mix = par::par_map_indexed(&all_mixes[first..first + batch], workers, |i, mix| {
            let seed = base_seed + (first + i) as u64;
            let iso = baselines.isolated_times(catalog, mix, &config.scheduler, seed)?;
            policies
                .iter()
                .enumerate()
                .map(|(pi, &policy)| {
                    let schedule = run_schedule(
                        policy,
                        catalog,
                        mix,
                        systems[pi].as_ref(),
                        &config.scheduler,
                        seed,
                    )?;
                    let turnarounds: Vec<f64> =
                        schedule.per_app.iter().map(|a| a.finished_at).collect();
                    Ok(normalize(&iso, &turnarounds))
                })
                .collect::<Result<Vec<NormalizedMetrics>, ColocateError>>()
        });
        next += batch;

        for result in per_mix {
            let metrics = result?;
            if let Some(j) = journal.as_mut() {
                let pairs: Vec<(f64, f64)> = metrics
                    .iter()
                    .map(|n| (n.normalized_stp, n.antt_reduction_pct))
                    .collect();
                j.append(&checkpoint::encode_folds(&pairs))?;
            }
            for (pi, n) in metrics.iter().enumerate() {
                stp[pi].push(n.normalized_stp);
                antt[pi].push(n.antt_reduction_pct);
            }
        }
    }
    if let Some(j) = journal.as_mut() {
        j.sync()?;
    }

    Ok(MultiPolicyStats {
        scenario,
        per_policy: policies
            .iter()
            .enumerate()
            .map(|(pi, _)| ScenarioStats {
                scenario,
                stp_mean: stp[pi].mean(),
                stp_min_max: (stp[pi].min(), stp[pi].max()),
                antt_mean: antt[pi].mean(),
                antt_min_max: (antt[pi].min(), antt[pi].max()),
                mixes,
            })
            .collect(),
    })
}

/// Shape of a chaos campaign: one fault intensity plus the plan
/// parameters shared by every mix. The fault horizon scales with each
/// mix's summed isolated time so a given intensity means the same fault
/// *rate* regardless of how long the mix runs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Fault intensity in `[0, 1]`; 0 injects nothing.
    pub intensity: f64,
    /// Mean node outage, seconds.
    pub mean_outage_secs: f64,
    /// Mean monitor-dropout duration, seconds.
    pub mean_dropout_secs: f64,
    /// Log-scale standard deviation of prediction-noise factors.
    pub noise_sd: f64,
    /// Fault horizon as a fraction of the mix's summed isolated time.
    pub horizon_frac: f64,
    /// Spot-preemption rate per node at full intensity (0 = no spot
    /// faults, the historical default — plans stay bit-identical).
    pub spot_rate: f64,
    /// Warning lead time before each spot revocation, seconds.
    pub spot_warning_secs: f64,
    /// Fraction of the fault horizon over which prediction-noise strikes
    /// are drawn (see [`FaultPlanConfig::noise_window_frac`]). The closed
    /// system keeps the historical `0.1`; open-loop campaigns widen it.
    pub noise_window_frac: f64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            intensity: 0.0,
            mean_outage_secs: 300.0,
            mean_dropout_secs: 600.0,
            noise_sd: 0.35,
            horizon_frac: 0.5,
            spot_rate: 0.0,
            spot_warning_secs: 120.0,
            noise_window_frac: 0.1,
        }
    }
}

impl ChaosSpec {
    /// A spec with everything default except the intensity.
    #[must_use]
    pub fn at_intensity(intensity: f64) -> Self {
        ChaosSpec {
            intensity,
            ..ChaosSpec::default()
        }
    }
}

/// One contender in a chaos campaign: a policy plus its resilience
/// configuration (so the same policy can race itself with and without
/// the self-healing layer).
#[derive(Debug, Clone, Copy)]
pub struct ChaosEntry {
    /// Label used in figures and result files.
    pub label: &'static str,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Self-healing configuration for this entry.
    pub resilience: ResilienceConfig,
}

/// Aggregates for one chaos-campaign entry.
#[derive(Debug, Clone)]
pub struct ChaosPolicyStats {
    /// The entry's label.
    pub label: &'static str,
    /// Mean normalised STP across mixes.
    pub stp_mean: f64,
    /// Min/max normalised STP across mixes.
    pub stp_min_max: (f64, f64),
    /// Mean ANTT reduction (%).
    pub antt_mean: f64,
    /// Min/max ANTT reduction across mixes.
    pub antt_min_max: (f64, f64),
    /// Mean OOM kills per mix.
    pub oom_kills_mean: f64,
    /// Fault/recovery counters summed over all mixes.
    pub faults: FaultStats,
}

/// Results of one chaos campaign (one scenario × one intensity).
#[derive(Debug, Clone)]
pub struct ChaosStats {
    /// Scenario evaluated.
    pub scenario: MixScenario,
    /// Fault intensity of the campaign.
    pub intensity: f64,
    /// Number of mixes evaluated.
    pub mixes: usize,
    /// Per-entry aggregates, parallel to the `entries` argument.
    pub per_entry: Vec<ChaosPolicyStats>,
}

/// Evaluates several `(policy, resilience)` entries on the *same* random
/// mixes of one scenario while replaying the *same* per-mix [`FaultPlan`]
/// against each entry — the apples-to-apples chaos comparison behind
/// Fig. 19.
///
/// Per mix `m`, the schedule seed is `base_seed + m` and the fault plan is
/// drawn from `(base_seed + m) ^ 0xC4A0_5EED` so the fault stream is
/// independent of the schedule stream: changing the resilience config
/// never changes which faults strike. Isolated baselines stay fault-free
/// (`C_iso` keeps its §5.3 meaning) and are memoized in a
/// [`BaselineCache`]. Mixes fan out across
/// [`RunConfig::effective_workers`] threads with results folded in index
/// order, so the returned stats are bit-for-bit identical for every
/// worker count.
///
/// # Errors
///
/// Propagates training and per-mix scheduler failures.
pub fn evaluate_chaos(
    entries: &[ChaosEntry],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
    chaos: &ChaosSpec,
) -> Result<ChaosStats, ColocateError> {
    evaluate_chaos_checkpointed(
        entries, scenario, catalog, config, mixes, base_seed, chaos, None,
    )
}

/// [`evaluate_chaos`] with opt-in crash-safe checkpointing.
///
/// Works like [`evaluate_scenario_multi_checkpointed`]: with `ckpt` set,
/// each mix's per-entry fold (STP, ANTT, OOM kills, fault counters) is
/// journaled as it commits, mixes are computed one worker-batch at a
/// time, and a resumed campaign — even one killed mid fault plan, since
/// plans are regenerated deterministically from `(seed, spec)` — yields
/// bit-for-bit identical [`ChaosStats`] at any worker count.
///
/// # Errors
///
/// Propagates training, per-mix scheduler and journal failures.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_chaos_checkpointed(
    entries: &[ChaosEntry],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
    chaos: &ChaosSpec,
    ckpt: Option<&CheckpointConfig>,
) -> Result<ChaosStats, ColocateError> {
    let workers = config.effective_workers();

    // Train once per distinct policy; entries share systems read-only.
    let mut by_policy: HashMap<PolicyKind, Option<TrainedSystem>> = HashMap::new();
    for e in entries {
        if let std::collections::hash_map::Entry::Vacant(slot) = by_policy.entry(e.policy) {
            slot.insert(trained_system_for(e.policy, catalog, config, base_seed)?);
        }
    }
    // Per-entry scheduler configs differ only in their resilience block.
    let cfgs: Vec<SchedulerConfig> = entries
        .iter()
        .map(|e| SchedulerConfig {
            resilience: e.resilience,
            ..config.scheduler.clone()
        })
        .collect();

    // Mix drawing stays serial: the scenario RNG is one stream.
    let mut mix_rng = SimRng::seed_from(base_seed);
    let all_mixes: Vec<Vec<MixEntry>> = (0..mixes)
        .map(|_| scenario.random_mix(catalog, &mut mix_rng))
        .collect();

    let mut stp = vec![Welford::new(); entries.len()];
    let mut antt = vec![Welford::new(); entries.len()];
    let mut ooms = vec![Welford::new(); entries.len()];
    let mut faults = vec![FaultStats::default(); entries.len()];
    struct ChaosAccum<'a> {
        stp: &'a mut [Welford],
        antt: &'a mut [Welford],
        ooms: &'a mut [Welford],
        faults: &'a mut [FaultStats],
    }
    fn fold(acc: &mut ChaosAccum<'_>, per_entry: &[checkpoint::ChaosFold]) {
        for (ei, (s, a, kills, f)) in per_entry.iter().enumerate() {
            acc.stp[ei].push(*s);
            acc.antt[ei].push(*a);
            acc.ooms[ei].push(*kills as f64);
            let agg = &mut acc.faults[ei];
            agg.node_crashes += f.node_crashes;
            agg.executor_crashes += f.executor_crashes;
            agg.monitor_dropouts += f.monitor_dropouts;
            agg.prediction_noise += f.prediction_noise;
            agg.slices_requeued_gb += f.slices_requeued_gb;
            agg.retries += f.retries;
            agg.quarantines += f.quarantines;
            agg.isolated_fallbacks += f.isolated_fallbacks;
            agg.spot_preemptions += f.spot_preemptions;
            agg.drains += f.drains;
        }
    }
    let mut acc = ChaosAccum {
        stp: &mut stp,
        antt: &mut antt,
        ooms: &mut ooms,
        faults: &mut faults,
    };

    let mut journal: Option<Journal> = None;
    let mut start = 0; // first mix index not covered by the journal
    if let Some(c) = ckpt {
        let binding =
            checkpoint::chaos_binding(entries, scenario, catalog, config, mixes, base_seed, chaos);
        let recovered = Journal::open(&c.path, &binding, c.flush_every)?;
        for payload in recovered.records.iter().take(mixes) {
            fold(
                &mut acc,
                &checkpoint::decode_chaos_folds(payload, entries.len())?,
            );
            start += 1;
        }
        let mut j = recovered.journal;
        j.set_kill_point(c.kill_point);
        journal = Some(j);
    }

    let baselines = BaselineCache::new();
    let mut next = start;
    while next < mixes {
        let batch = if journal.is_some() {
            workers.min(mixes - next)
        } else {
            mixes - next
        };
        let first = next;
        let per_mix = par::par_map_indexed(&all_mixes[first..first + batch], workers, |i, mix| {
            let seed = base_seed + (first + i) as u64;
            let iso = baselines.isolated_times(catalog, mix, &config.scheduler, seed)?;
            let jobs: Vec<(usize, f64)> = mix.iter().map(|e| (e.benchmark, e.size.gb())).collect();
            let horizon = (iso.iter().sum::<f64>() * chaos.horizon_frac).max(60.0);
            let plan = FaultPlan::generate(
                seed ^ 0xC4A0_5EED,
                &FaultPlanConfig {
                    intensity: chaos.intensity,
                    horizon_secs: horizon,
                    nodes: config.scheduler.cluster.nodes,
                    apps: jobs.len(),
                    mean_outage_secs: chaos.mean_outage_secs,
                    mean_dropout_secs: chaos.mean_dropout_secs,
                    noise_sd: chaos.noise_sd,
                    spot_rate: chaos.spot_rate,
                    spot_warning_secs: chaos.spot_warning_secs,
                    noise_window_frac: chaos.noise_window_frac,
                },
            );
            entries
                .iter()
                .enumerate()
                .map(|(ei, entry)| {
                    let schedule = run_schedule_with_faults(
                        entry.policy,
                        catalog,
                        &jobs,
                        by_policy[&entry.policy].as_ref(),
                        &cfgs[ei],
                        seed,
                        &plan,
                    )?;
                    let turnarounds: Vec<f64> =
                        schedule.per_app.iter().map(|a| a.finished_at).collect();
                    let n = normalize(&iso, &turnarounds);
                    Ok((
                        n.normalized_stp,
                        n.antt_reduction_pct,
                        schedule.oom_kills,
                        schedule.faults,
                    ))
                })
                .collect::<Result<Vec<checkpoint::ChaosFold>, ColocateError>>()
        });
        next += batch;

        for result in per_mix {
            let per_entry = result?;
            if let Some(j) = journal.as_mut() {
                j.append(&checkpoint::encode_chaos_folds(&per_entry))?;
            }
            fold(&mut acc, &per_entry);
        }
    }
    if let Some(j) = journal.as_mut() {
        j.sync()?;
    }

    Ok(ChaosStats {
        scenario,
        intensity: chaos.intensity,
        mixes,
        per_entry: entries
            .iter()
            .enumerate()
            .map(|(ei, e)| ChaosPolicyStats {
                label: e.label,
                stp_mean: stp[ei].mean(),
                stp_min_max: (stp[ei].min(), stp[ei].max()),
                antt_mean: antt[ei].mean(),
                antt_min_max: (antt[ei].min(), antt[ei].max()),
                oom_kills_mean: ooms[ei].mean(),
                faults: faults[ei],
            })
            .collect(),
    })
}

/// Converts an event-sampled trace (`(time, per-node load)`) into a
/// time-binned matrix: `bins × nodes`, each cell the time-weighted average
/// CPU load of that node within the bin (the Fig. 7 heat map).
///
/// # Panics
///
/// Panics if `bins == 0` or the trace is empty.
#[must_use]
pub fn bin_trace(trace: &[(f64, Vec<f64>)], makespan_secs: f64, bins: usize) -> Vec<Vec<f64>> {
    assert!(bins > 0, "need at least one bin");
    assert!(!trace.is_empty(), "empty trace");
    let nodes = trace[0].1.len();
    let bin_width = makespan_secs / bins as f64;
    let mut sums = vec![vec![0.0f64; nodes]; bins];
    let mut weights = vec![0.0f64; bins];

    for (i, (t0, loads)) in trace.iter().enumerate() {
        let t1 = trace
            .get(i + 1)
            .map_or(makespan_secs, |(t, _)| *t)
            .min(makespan_secs);
        if t1 <= *t0 {
            continue;
        }
        // Spread this piecewise-constant segment across bins. Guard the
        // advance against floating-point boundary collisions: when t sits
        // exactly on a bin edge, `(bin + 1) * width` can round to t and
        // stall the loop.
        let mut t = *t0;
        while t < t1 {
            let bin = ((t / bin_width) as usize).min(bins - 1);
            let mut bin_end = ((bin + 1) as f64 * bin_width).min(t1);
            if bin_end <= t {
                bin_end = (t + bin_width).min(t1);
                if bin_end <= t {
                    break;
                }
            }
            let dt = bin_end - t;
            for (n, &load) in loads.iter().enumerate() {
                sums[bin][n] += load * dt;
            }
            weights[bin] += dt;
            t = bin_end;
        }
    }
    for (bin, w) in weights.iter().enumerate() {
        if *w > 0.0 {
            for v in &mut sums[bin] {
                *v /= w;
            }
        }
    }
    sums
}

/// Mean feature-extraction and calibration fractions of total execution
/// time across a schedule's applications (the Fig. 11 stack).
#[must_use]
pub fn overhead_fractions(outcome: &ScheduleOutcome) -> (f64, f64) {
    let mut feature = 0.0;
    let mut calib = 0.0;
    let mut total = 0.0;
    for app in &outcome.per_app {
        feature += app.profiling.feature_secs;
        calib += app.profiling.calibration_secs;
        total += app.finished_at;
    }
    let total = total.max(1e-9);
    (feature / total, calib / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::cluster::ClusterSpec;
    use workloads::mixes::InputSize;

    fn small_run_config() -> RunConfig {
        RunConfig {
            scheduler: SchedulerConfig {
                cluster: ClusterSpec::small(4),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn mix(catalog: &Catalog, names: &[(&str, InputSize)]) -> Vec<MixEntry> {
        names
            .iter()
            .map(|(n, s)| MixEntry {
                benchmark: catalog.by_name(n).unwrap().index(),
                size: *s,
            })
            .collect()
    }

    #[test]
    fn isolated_times_are_positive_and_size_monotone() {
        let catalog = Catalog::paper();
        let cfg = small_run_config();
        let m = mix(
            &catalog,
            &[
                ("HB.Sort", InputSize::Small),
                ("HB.Sort", InputSize::Medium),
            ],
        );
        let iso = isolated_times(&catalog, &m, &cfg.scheduler, 1).unwrap();
        assert!(iso[0] > 0.0);
        assert!(iso[1] > iso[0], "bigger input takes longer: {iso:?}");
    }

    #[test]
    fn oracle_normalized_stp_beats_baseline() {
        let catalog = Catalog::paper();
        let cfg = small_run_config();
        let m = mix(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("SP.glm-regression", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
                ("HB.PageRank", InputSize::Medium),
            ],
        );
        let out = run_policy(PolicyKind::Oracle, &catalog, &m, &cfg, 3).unwrap();
        assert!(
            out.normalized.normalized_stp > 1.5,
            "normalized STP {:.2}",
            out.normalized.normalized_stp
        );
        assert!(out.normalized.antt_reduction_pct > 0.0);
    }

    #[test]
    fn moe_close_to_oracle_on_small_mix() {
        let catalog = Catalog::paper();
        let cfg = small_run_config();
        let m = mix(
            &catalog,
            &[
                ("SB.Hive", InputSize::Medium),
                ("SP.Kmeans", InputSize::Medium),
                ("HB.WordCount", InputSize::Medium),
            ],
        );
        let oracle = run_policy(PolicyKind::Oracle, &catalog, &m, &cfg, 7).unwrap();
        let moe = run_policy(PolicyKind::Moe, &catalog, &m, &cfg, 7).unwrap();
        let ratio = moe.normalized.normalized_stp / oracle.normalized.normalized_stp;
        assert!(ratio > 0.6, "MoE only reaches {ratio:.2} of Oracle");
        assert!(ratio <= 1.05, "MoE cannot beat Oracle by much: {ratio:.2}");
    }

    #[test]
    fn scenario_evaluation_aggregates_mixes() {
        let catalog = Catalog::paper();
        let cfg = small_run_config();
        let stats = evaluate_scenario(
            PolicyKind::Oracle,
            MixScenario { label: 1, apps: 2 },
            &catalog,
            &cfg,
            2,
            4,
            11,
        )
        .unwrap();
        assert!(stats.mixes >= 2);
        assert!(stats.stp_min_max.0 <= stats.stp_mean);
        assert!(stats.stp_mean <= stats.stp_min_max.1);
    }

    #[test]
    fn trace_binning_is_time_weighted() {
        // One node: load 1.0 for 10 s then 0.0 for 10 s.
        let trace = vec![(0.0, vec![1.0]), (10.0, vec![0.0])];
        let bins = bin_trace(&trace, 20.0, 2);
        assert!((bins[0][0] - 1.0).abs() < 1e-9);
        assert!(bins[1][0].abs() < 1e-9);
        let single = bin_trace(&trace, 20.0, 1);
        assert!((single[0][0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn trace_binning_survives_boundary_aligned_events() {
        // Events exactly on bin boundaries must not stall the binning
        // loop (a floating-point edge found by Fig. 7's Pairwise trace).
        let trace = vec![(0.0, vec![1.0]), (10.0, vec![0.5]), (20.0, vec![0.25])];
        let bins = bin_trace(&trace, 30.0, 3);
        assert!((bins[0][0] - 1.0).abs() < 1e-9);
        assert!((bins[1][0] - 0.5).abs() < 1e-9);
        assert!((bins[2][0] - 0.25).abs() < 1e-9);
        // Irrational-ish makespan: boundaries don't divide evenly.
        let bins = bin_trace(&trace, 29.973, 7);
        let avg: f64 = bins.iter().map(|b| b[0]).sum::<f64>() / 7.0;
        assert!(avg > 0.2 && avg < 1.0);
    }

    #[test]
    fn overheads_are_small_fractions() {
        let catalog = Catalog::paper();
        let cfg = small_run_config();
        let m = mix(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.Kmeans", InputSize::Medium),
            ],
        );
        let out = run_policy(PolicyKind::Moe, &catalog, &m, &cfg, 5).unwrap();
        let (feature, calib) = overhead_fractions(&out.schedule);
        assert!(feature > 0.0 && feature < 0.5, "feature {feature}");
        assert!(calib > 0.0 && calib < 0.5, "calib {calib}");
    }
}
