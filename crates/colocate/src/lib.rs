//! # colocate — the memory-aware co-location runtime and evaluation harness
//!
//! This crate assembles the paper's runtime system (§4) on top of the
//! `sparklite` substrate and the `moe-core` predictor, together with every
//! comparative scheme of the evaluation (§5.4, §6):
//!
//! * [`profiling`] — the runtime profiling pipeline: a ~100 MB feature
//!   extraction run on the coordinating node plus two calibration runs on
//!   5 % / 10 % of the expected executor slice; both contribute processed
//!   data to the job so "no computing cycle is wasted" (§2.3);
//! * [`predictors`] — the memory predictors under test: the paper's
//!   mixture-of-experts ([`predictors::MoePolicy`]), the [`predictors::Oracle`],
//!   unified single-family models, a unified ANN regressor (Fig. 9), and a
//!   Quasar-style nearest-historical-workload estimator (§5.4);
//! * [`training`] — the offline phase (Fig. 2): profile the 16 training
//!   benchmarks, fit each one's memory function, learn the expert selector;
//!   includes the leave-one-out plumbing of §5.2;
//! * [`scheduler`] — the job dispatcher (§4.3) and the comparative
//!   policies: Isolated, Pairwise, Online-Search and the predictive
//!   co-locator, all sharing one event loop;
//! * [`metrics`] — STP and ANTT (Eyerman–Eeckhout definitions, §5.3),
//!   their normalisation against the isolated baseline, and NaN-safe
//!   percentile helpers for tail metrics;
//! * [`service`] — the open-system streaming mode: jobs land over
//!   simulated time from a pre-drawn [`simkit::arrivals::ArrivalPlan`],
//!   pass a memory-footprint-gated admission queue with per-tenant
//!   weighted fair queueing, and overload is met with load shedding,
//!   backpressure and a circuit breaker that degrades to isolated
//!   scheduling;
//! * [`harness`] — campaign runners: replay a mix until the 95 % CI
//!   half-width is below 5 % (§5.2), produce utilisation traces (Fig. 7),
//!   overhead breakdowns (Figs. 11/12) and interference studies
//!   (Figs. 14/15);
//! * [`invariants`] — the chaos-search battery: runs a
//!   [`simkit::chaoskit`] episode through the scheduler or the service
//!   and checks the contracts every run must honour (job conservation,
//!   committed-GB accounting, WFQ ordering, breaker liveness, quarantine
//!   finiteness), shrinking any violation to a minimal reproducer.
//!
//! ```no_run
//! use colocate::harness::{run_policy, RunConfig};
//! use colocate::scheduler::PolicyKind;
//! use workloads::{Catalog, MixScenario};
//! use simkit::SimRng;
//!
//! let catalog = Catalog::paper();
//! let mut rng = SimRng::seed_from(1);
//! let mix = MixScenario::TABLE3[1].random_mix(&catalog, &mut rng);
//! let outcome = run_policy(PolicyKind::Moe, &catalog, &mix, &RunConfig::default(), 1).unwrap();
//! println!("makespan: {:.1} min", outcome.makespan_secs / 60.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod harness;
pub mod interference;
pub mod invariants;
pub mod metrics;
pub mod predictors;
pub mod profiling;
pub mod scheduler;
pub mod service;
pub mod serving;
pub mod training;

use std::fmt;

/// Errors raised by the co-location runtime.
#[derive(Debug)]
pub enum ColocateError {
    /// The underlying substrate failed.
    Substrate(sparklite::SparkliteError),
    /// The predictor failed.
    Predictor(moe_core::MoeError),
    /// An mlkit model failed.
    Ml(mlkit::MlError),
    /// Invalid experiment configuration.
    Config(String),
    /// Checkpoint journal persistence failed (or a kill point fired).
    Checkpoint(simkit::journal::JournalError),
}

impl fmt::Display for ColocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColocateError::Substrate(e) => write!(f, "substrate error: {e}"),
            ColocateError::Predictor(e) => write!(f, "predictor error: {e}"),
            ColocateError::Ml(e) => write!(f, "ml error: {e}"),
            ColocateError::Config(msg) => write!(f, "configuration error: {msg}"),
            ColocateError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ColocateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColocateError::Substrate(e) => Some(e),
            ColocateError::Predictor(e) => Some(e),
            ColocateError::Ml(e) => Some(e),
            ColocateError::Config(_) => None,
            ColocateError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<sparklite::SparkliteError> for ColocateError {
    fn from(e: sparklite::SparkliteError) -> Self {
        ColocateError::Substrate(e)
    }
}

impl From<moe_core::MoeError> for ColocateError {
    fn from(e: moe_core::MoeError) -> Self {
        ColocateError::Predictor(e)
    }
}

impl From<mlkit::MlError> for ColocateError {
    fn from(e: mlkit::MlError) -> Self {
        ColocateError::Ml(e)
    }
}

impl From<simkit::journal::JournalError> for ColocateError {
    fn from(e: simkit::journal::JournalError) -> Self {
        ColocateError::Checkpoint(e)
    }
}
