//! The batched prediction serving path: model artifacts and request
//! micro-batching.
//!
//! Training a [`MoePredictor`] takes a full offline profiling campaign;
//! serving it should not. This module gives the trained model a life of
//! its own:
//!
//! * [`ModelArtifact`] — a compact, checksummed, raw-bits serialization of
//!   everything the runtime selector needs (scaler bounds, PCA projection,
//!   KNN exemplar matrix with precomputed squared norms, expert family
//!   tags, fitted curve parameters). Written once after training; any
//!   process can [`ModelArtifact::load`] it and reassemble a predictor
//!   that is bitwise identical to the freshly trained one.
//! * [`BatchPredictor`] — a serving front end that micro-batches selection
//!   requests (flush on size or deadline) and answers them through the
//!   whole-matrix batched selector path plus the shared
//!   [`PredictionTable`](crate::predictors::PredictionTable) cache.
//!
//! # Determinism
//!
//! Every `f64` crosses the artifact boundary as its raw IEEE-754 bits via
//! [`simkit::journal::wire`], so save → load round-trips are bit-exact.
//! The batched inference path reuses the exact kernels of the scalar path
//! (see `ExpertSelector::select_batch`), so a predictor reassembled from
//! an artifact and queried through a [`BatchPredictor`] produces the same
//! selection bits as the original scalar `predict` loop. The
//! [`BatchPredictor`] itself is driven by an explicit caller-supplied
//! clock — no wall time enters the logic — so replays are reproducible.

use mlkit::knn::KnnClassifier;
use mlkit::linalg::Matrix;
use mlkit::pca::Pca;
use mlkit::regression::{CurveFamily, FittedCurve};
use mlkit::scaling::MinMaxScaler;
use moe_core::expert::CurveExpert;
use moe_core::features::FeatureVector;
use moe_core::predictor::PredictorConfig;
use moe_core::selector::SelectorConfig;
use moe_core::{ExpertRegistry, ExpertSelector, MoeError, MoePredictor, Selection};
use simkit::journal::{atomic_write, fnv64, wire, JournalError};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::predictors::PredictionTable;

/// Artifact header: magic tag + format version 1.
const MAGIC: [u8; 8] = *b"SMMA\x01\x00\x00\x00";

/// Errors raised by the serving layer.
#[derive(Debug)]
pub enum ServingError {
    /// Filesystem failure while reading or writing an artifact.
    Io(std::io::Error),
    /// The artifact bytes are not a valid model artifact (bad magic,
    /// truncation, checksum mismatch, or inconsistent shapes).
    Corrupt(String),
    /// Reassembling or querying the model failed.
    Model(MoeError),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ServingError::Corrupt(msg) => write!(f, "corrupt model artifact: {msg}"),
            ServingError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Io(e) => Some(e),
            ServingError::Model(e) => Some(e),
            ServingError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for ServingError {
    fn from(e: std::io::Error) -> Self {
        ServingError::Io(e)
    }
}

impl From<MoeError> for ServingError {
    fn from(e: MoeError) -> Self {
        ServingError::Model(e)
    }
}

impl From<mlkit::MlError> for ServingError {
    fn from(e: mlkit::MlError) -> Self {
        ServingError::Model(MoeError::from(e))
    }
}

impl From<JournalError> for ServingError {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(io) => ServingError::Io(io),
            other => ServingError::Corrupt(other.to_string()),
        }
    }
}

/// A serialized trained model: everything needed to reassemble the
/// deployed [`MoePredictor`] without re-running training.
///
/// The on-disk layout is `MAGIC ‖ payload_len:u64 ‖ payload ‖
/// fnv64(payload):u64`, all little-endian, with every `f64` stored as its
/// raw bits — see the module documentation for the determinism argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Selector + calibration configuration of the trained predictor.
    pub config: PredictorConfig,
    /// Curve family of each registered expert, in registry (label) order.
    pub expert_families: Vec<CurveFamily>,
    /// Per-feature minima of the min-max scaler.
    pub scaler_mins: Vec<f64>,
    /// Per-feature maxima of the min-max scaler.
    pub scaler_maxs: Vec<f64>,
    /// PCA feature means (length = input dims).
    pub pca_means: Vec<f64>,
    /// PCA projection, components × input dims, row-major.
    pub pca_axes: Vec<f64>,
    /// Dimensionality of the raw (scaled) feature space.
    pub pca_input_dims: usize,
    /// Eigenvalues of the kept components, descending.
    pub pca_eigenvalues: Vec<f64>,
    /// Total variance of the training set before truncation.
    pub pca_total_variance: f64,
    /// `k` of the KNN vote.
    pub knn_k: usize,
    /// KNN training matrix, exemplars × components, row-major (PC space).
    pub knn_exemplars: Vec<f64>,
    /// Precomputed squared norms of the exemplar rows.
    pub knn_norms_sq: Vec<f64>,
    /// Expert label of each exemplar.
    pub knn_labels: Vec<usize>,
    /// Fitted per-program curve parameters from offline training (the
    /// "expert curve parameters" of the deployment bundle).
    pub fitted_curves: Vec<FittedCurve>,
}

fn family_index(family: CurveFamily) -> u64 {
    CurveFamily::ALL
        .iter()
        .position(|&f| f == family)
        .map_or(u64::MAX, |i| i as u64)
}

fn family_from_index(idx: u64) -> Result<CurveFamily, ServingError> {
    usize::try_from(idx)
        .ok()
        .and_then(|i| CurveFamily::ALL.get(i).copied())
        .ok_or_else(|| ServingError::Corrupt(format!("unknown curve family index {idx}")))
}

fn read_len(
    reader: &mut wire::Reader<'_>,
    payload_len: usize,
    what: &str,
) -> Result<usize, ServingError> {
    let n = usize::try_from(reader.u64()?)
        .map_err(|_| ServingError::Corrupt(format!("{what} count does not fit usize")))?;
    // Every element needs at least 8 payload bytes, so any count beyond
    // payload_len / 8 is corrupt regardless of what follows; checking here
    // keeps a damaged length field from driving a huge allocation.
    if n > payload_len / 8 {
        return Err(ServingError::Corrupt(format!(
            "{what} count {n} exceeds payload capacity"
        )));
    }
    Ok(n)
}

fn read_f64s(reader: &mut wire::Reader<'_>, n: usize) -> Result<Vec<f64>, JournalError> {
    (0..n).map(|_| reader.f64()).collect()
}

impl ModelArtifact {
    /// Captures the deployed state of a trained predictor, together with
    /// the fitted per-program curves from offline training.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Corrupt`] when the registry contains an
    /// expert whose name does not match a built-in curve family (custom
    /// experts are not serializable).
    pub fn from_predictor(
        predictor: &MoePredictor,
        fitted_curves: &[FittedCurve],
    ) -> Result<Self, ServingError> {
        let mut expert_families = Vec::new();
        for (_, expert) in predictor.registry().iter() {
            let family = CurveFamily::ALL
                .iter()
                .copied()
                .find(|f| f.name() == expert.name())
                .ok_or_else(|| {
                    ServingError::Corrupt(format!(
                        "expert '{}' has no serializable curve family",
                        expert.name()
                    ))
                })?;
            expert_families.push(family);
        }
        let selector = predictor.selector();
        let (scaler, pca, knn) = (selector.scaler(), selector.pca(), selector.knn());
        Ok(ModelArtifact {
            config: predictor.config(),
            expert_families,
            scaler_mins: scaler.mins().to_vec(),
            scaler_maxs: scaler.maxs().to_vec(),
            pca_means: pca.means().to_vec(),
            pca_axes: pca.axes_data().to_vec(),
            pca_input_dims: pca.input_dims(),
            pca_eigenvalues: pca.eigenvalues().to_vec(),
            pca_total_variance: pca.total_variance(),
            knn_k: knn.k(),
            knn_exemplars: knn.exemplars_flat().to_vec(),
            knn_norms_sq: knn.norms_sq().to_vec(),
            knn_labels: knn.labels().to_vec(),
            fitted_curves: fitted_curves.to_vec(),
        })
    }

    /// Reassembles the deployed predictor. The result is bitwise identical
    /// to the predictor the artifact was captured from: every stored field
    /// round-trips as raw bits and the `from_parts` constructors re-verify
    /// internal consistency (including the precomputed norms) instead of
    /// recomputing anything.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Model`] when the stored fields do not form
    /// a consistent model.
    pub fn into_predictor(&self) -> Result<MoePredictor, ServingError> {
        let mut registry = ExpertRegistry::new();
        for &family in &self.expert_families {
            registry.register(Arc::new(CurveExpert::new(family)));
        }
        let scaler = MinMaxScaler::from_parts(self.scaler_mins.clone(), self.scaler_maxs.clone())?;
        if self.pca_input_dims == 0
            || self.pca_axes.len() != self.pca_eigenvalues.len() * self.pca_input_dims
        {
            return Err(ServingError::Corrupt(
                "PCA axes shape disagrees with eigenvalue count".into(),
            ));
        }
        let axes = Matrix::from_rows(
            self.pca_axes
                .chunks(self.pca_input_dims)
                .map(<[f64]>::to_vec)
                .collect(),
        );
        let pca = Pca::from_parts(
            self.pca_means.clone(),
            axes,
            self.pca_eigenvalues.clone(),
            self.pca_total_variance,
        )?;
        let components = pca.components();
        let knn = KnnClassifier::from_parts(
            self.knn_exemplars.clone(),
            self.knn_norms_sq.clone(),
            self.knn_labels.clone(),
            self.knn_k,
            components,
        )?;
        let selector = ExpertSelector::from_parts(scaler, pca, knn, self.config.selector)?;
        Ok(MoePredictor::from_parts(registry, selector, self.config)?)
    }

    /// Serializes the artifact to its on-disk byte layout.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        // Configuration.
        wire::put_u64(&mut payload, self.config.selector.k as u64);
        wire::put_f64(&mut payload, self.config.selector.variance_target);
        match self.config.selector.components {
            Some(c) => {
                wire::put_u64(&mut payload, 1);
                wire::put_u64(&mut payload, c as u64);
            }
            None => {
                wire::put_u64(&mut payload, 0);
                wire::put_u64(&mut payload, 0);
            }
        }
        wire::put_f64(&mut payload, self.config.selector.confidence_threshold);
        wire::put_f64(&mut payload, self.config.calibration.first_fraction);
        wire::put_f64(&mut payload, self.config.calibration.second_fraction);
        // Expert registry.
        wire::put_u64(&mut payload, self.expert_families.len() as u64);
        for &family in &self.expert_families {
            wire::put_u64(&mut payload, family_index(family));
        }
        // Scaler.
        wire::put_u64(&mut payload, self.scaler_mins.len() as u64);
        for &v in self.scaler_mins.iter().chain(self.scaler_maxs.iter()) {
            wire::put_f64(&mut payload, v);
        }
        // PCA.
        wire::put_u64(&mut payload, self.pca_input_dims as u64);
        wire::put_u64(&mut payload, self.pca_eigenvalues.len() as u64);
        for &v in &self.pca_means {
            wire::put_f64(&mut payload, v);
        }
        for &v in &self.pca_axes {
            wire::put_f64(&mut payload, v);
        }
        for &v in &self.pca_eigenvalues {
            wire::put_f64(&mut payload, v);
        }
        wire::put_f64(&mut payload, self.pca_total_variance);
        // KNN.
        wire::put_u64(&mut payload, self.knn_k as u64);
        wire::put_u64(&mut payload, self.knn_labels.len() as u64);
        for &v in self.knn_exemplars.iter().chain(self.knn_norms_sq.iter()) {
            wire::put_f64(&mut payload, v);
        }
        for &label in &self.knn_labels {
            wire::put_u64(&mut payload, label as u64);
        }
        // Fitted curve parameters.
        wire::put_u64(&mut payload, self.fitted_curves.len() as u64);
        for curve in &self.fitted_curves {
            wire::put_u64(&mut payload, family_index(curve.family));
            wire::put_f64(&mut payload, curve.m);
            wire::put_f64(&mut payload, curve.b);
        }

        let mut bytes = Vec::with_capacity(MAGIC.len() + 16 + payload.len());
        bytes.extend_from_slice(&MAGIC);
        wire::put_u64(&mut bytes, payload.len() as u64);
        let checksum = fnv64(&payload);
        bytes.extend_from_slice(&payload);
        wire::put_u64(&mut bytes, checksum);
        bytes
    }

    /// Parses an artifact from its byte layout, verifying the header,
    /// exact length, and payload checksum — any single flipped byte is
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Corrupt`] for anything that is not a valid
    /// artifact.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServingError> {
        if bytes.len() < MAGIC.len() + 16 {
            return Err(ServingError::Corrupt(
                "shorter than the fixed header".into(),
            ));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(ServingError::Corrupt("bad magic".into()));
        }
        let mut head = wire::Reader::new(&bytes[MAGIC.len()..MAGIC.len() + 8]);
        let payload_len = usize::try_from(head.u64()?)
            .map_err(|_| ServingError::Corrupt("payload length does not fit usize".into()))?;
        if bytes.len() != MAGIC.len() + 8 + payload_len + 8 {
            return Err(ServingError::Corrupt(format!(
                "length {} disagrees with declared payload {payload_len}",
                bytes.len()
            )));
        }
        let payload = &bytes[MAGIC.len() + 8..MAGIC.len() + 8 + payload_len];
        let mut tail = wire::Reader::new(&bytes[MAGIC.len() + 8 + payload_len..]);
        let stored = tail.u64()?;
        let computed = fnv64(payload);
        if stored != computed {
            return Err(ServingError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }

        let mut r = wire::Reader::new(payload);
        let k = read_len(&mut r, payload_len, "selector k")?;
        let variance_target = r.f64()?;
        let has_components = r.u64()?;
        let components_value = read_len(&mut r, payload_len, "component")?;
        let components = match has_components {
            0 => None,
            1 => Some(components_value),
            other => {
                return Err(ServingError::Corrupt(format!(
                    "component flag must be 0 or 1, got {other}"
                )))
            }
        };
        let confidence_threshold = r.f64()?;
        let first_fraction = r.f64()?;
        let second_fraction = r.f64()?;
        let config = PredictorConfig {
            selector: SelectorConfig {
                k,
                variance_target,
                components,
                confidence_threshold,
            },
            calibration: moe_core::calibration::CalibrationPlan {
                first_fraction,
                second_fraction,
            },
        };

        let n_experts = read_len(&mut r, payload_len, "expert")?;
        let expert_families = (0..n_experts)
            .map(|_| family_from_index(r.u64()?))
            .collect::<Result<Vec<_>, _>>()?;

        let scaler_dims = read_len(&mut r, payload_len, "scaler dim")?;
        let scaler_mins = read_f64s(&mut r, scaler_dims)?;
        let scaler_maxs = read_f64s(&mut r, scaler_dims)?;

        let pca_input_dims = read_len(&mut r, payload_len, "PCA input dim")?;
        let pca_components = read_len(&mut r, payload_len, "PCA component")?;
        if pca_components != 0 && pca_input_dims > payload_len / 8 / pca_components {
            return Err(ServingError::Corrupt(
                "PCA matrix larger than payload".into(),
            ));
        }
        let pca_means = read_f64s(&mut r, pca_input_dims)?;
        let pca_axes = read_f64s(&mut r, pca_components * pca_input_dims)?;
        let pca_eigenvalues = read_f64s(&mut r, pca_components)?;
        let pca_total_variance = r.f64()?;

        let knn_k = read_len(&mut r, payload_len, "KNN k")?;
        let knn_len = read_len(&mut r, payload_len, "exemplar")?;
        if pca_components != 0 && knn_len > payload_len / 8 / pca_components {
            return Err(ServingError::Corrupt(
                "KNN matrix larger than payload".into(),
            ));
        }
        let knn_exemplars = read_f64s(&mut r, knn_len * pca_components)?;
        let knn_norms_sq = read_f64s(&mut r, knn_len)?;
        let knn_labels = (0..knn_len)
            .map(|_| {
                usize::try_from(r.u64()?)
                    .map_err(|_| ServingError::Corrupt("label does not fit usize".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let n_curves = read_len(&mut r, payload_len, "fitted curve")?;
        let mut fitted_curves = Vec::with_capacity(n_curves);
        for _ in 0..n_curves {
            let family = family_from_index(r.u64()?)?;
            let m = r.f64()?;
            let b = r.f64()?;
            fitted_curves.push(FittedCurve { family, m, b });
        }

        if !r.exhausted() {
            return Err(ServingError::Corrupt(
                "trailing bytes after the last field".into(),
            ));
        }

        Ok(ModelArtifact {
            config,
            expert_families,
            scaler_mins,
            scaler_maxs,
            pca_means,
            pca_axes,
            pca_input_dims,
            pca_eigenvalues,
            pca_total_variance,
            knn_k,
            knn_exemplars,
            knn_norms_sq,
            knn_labels,
            fitted_curves,
        })
    }

    /// Writes the artifact atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ServingError> {
        Ok(atomic_write(path, &self.encode())?)
    }

    /// Reads and verifies an artifact from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Io`] on filesystem failure and
    /// [`ServingError::Corrupt`] on any integrity violation.
    pub fn load(path: &Path) -> Result<Self, ServingError> {
        Self::decode(&std::fs::read(path)?)
    }
}

/// Micro-batching policy of a [`BatchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush any queued request once it has waited this long (in the
    /// caller's clock units).
    pub max_delay: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 256,
            max_delay: 0.010,
        }
    }
}

/// A ticket identifying one submitted selection request.
pub type Ticket = u64;

/// The serving front end: accumulates selection requests and answers them
/// in micro-batches through the whole-matrix selector path and the shared
/// selection cache.
///
/// The clock is explicit: `submit` and `poll` take the caller's notion of
/// *now* (simulated seconds, wall seconds — any monotone `f64`). A batch
/// is dispatched when it reaches [`BatchConfig::max_batch`] requests or
/// when the oldest queued request has waited [`BatchConfig::max_delay`].
/// Results are bitwise identical to calling the scalar selection path
/// once per request in submission order, whatever the batching cut
/// points (see `PredictionTable::select_cached_batch`).
#[derive(Debug)]
pub struct BatchPredictor {
    predictor: MoePredictor,
    table: Arc<PredictionTable>,
    config: BatchConfig,
    queue: Vec<(Ticket, FeatureVector)>,
    completed: Vec<(Ticket, Selection)>,
    deadline: Option<f64>,
    next_ticket: Ticket,
}

impl BatchPredictor {
    /// Wraps a trained predictor and a (possibly shared) selection cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Corrupt`] when `max_batch` is zero or
    /// `max_delay` is negative or non-finite.
    pub fn new(
        predictor: MoePredictor,
        table: Arc<PredictionTable>,
        config: BatchConfig,
    ) -> Result<Self, ServingError> {
        if config.max_batch == 0 {
            return Err(ServingError::Corrupt("max_batch must be positive".into()));
        }
        if !config.max_delay.is_finite() || config.max_delay < 0.0 {
            return Err(ServingError::Corrupt(
                "max_delay must be finite and non-negative".into(),
            ));
        }
        Ok(BatchPredictor {
            predictor,
            table,
            config,
            queue: Vec::new(),
            completed: Vec::new(),
            deadline: None,
            next_ticket: 0,
        })
    }

    /// Queues one selection request at time `now`, returning its ticket.
    /// If the queue reaches `max_batch` the batch is dispatched
    /// immediately and its results become available to [`Self::poll`].
    ///
    /// # Errors
    ///
    /// Propagates selection failures from an immediate dispatch.
    pub fn submit(&mut self, now: f64, features: FeatureVector) -> Result<Ticket, MoeError> {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        if self.queue.is_empty() {
            self.deadline = Some(now + self.config.max_delay);
        }
        self.queue.push((ticket, features));
        if self.queue.len() >= self.config.max_batch {
            self.dispatch()?;
        }
        Ok(ticket)
    }

    /// Dispatches the pending batch if its deadline has passed, then
    /// drains every completed `(ticket, selection)` pair, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates selection failures from a deadline dispatch.
    pub fn poll(&mut self, now: f64) -> Result<Vec<(Ticket, Selection)>, MoeError> {
        if self.deadline.is_some_and(|d| now >= d) {
            self.dispatch()?;
        }
        Ok(std::mem::take(&mut self.completed))
    }

    /// Dispatches the pending batch unconditionally and drains all
    /// completed results (end-of-stream flush).
    ///
    /// # Errors
    ///
    /// Propagates selection failures.
    pub fn flush(&mut self) -> Result<Vec<(Ticket, Selection)>, MoeError> {
        self.dispatch()?;
        Ok(std::mem::take(&mut self.completed))
    }

    fn dispatch(&mut self) -> Result<(), MoeError> {
        self.deadline = None;
        if self.queue.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.queue);
        let refs: Vec<&FeatureVector> = batch.iter().map(|(_, f)| f).collect();
        let selections = self.table.select_cached_batch(&self.predictor, &refs)?;
        self.completed
            .extend(batch.iter().map(|&(ticket, _)| ticket).zip(selections));
        Ok(())
    }

    /// Requests queued but not yet dispatched.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The shared selection cache (hit/miss counters live here).
    #[must_use]
    pub fn table(&self) -> &Arc<PredictionTable> {
        &self.table
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn predictor(&self) -> &MoePredictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_system, TrainingConfig};
    use simkit::SimRng;
    use workloads::catalog::Catalog;

    fn trained() -> crate::training::TrainedSystem {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(42);
        train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap()
    }

    #[test]
    fn artifact_round_trips_bitwise() {
        let system = trained();
        let artifact =
            ModelArtifact::from_predictor(&system.predictor, &system.fitted_curves).unwrap();
        let decoded = ModelArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(decoded, artifact);
        // Bit-level equality of every float field (PartialEq would accept
        // -0.0 == 0.0; the artifact must be stricter).
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded.pca_axes), bits(&artifact.pca_axes));
        assert_eq!(bits(&decoded.knn_exemplars), bits(&artifact.knn_exemplars));
        assert_eq!(bits(&decoded.knn_norms_sq), bits(&artifact.knn_norms_sq));
    }

    #[test]
    fn reassembled_predictor_selects_identically() {
        let system = trained();
        let artifact =
            ModelArtifact::from_predictor(&system.predictor, &system.fitted_curves).unwrap();
        let rebuilt = artifact.into_predictor().unwrap();
        let mut rng = SimRng::seed_from(7);
        for _ in 0..20 {
            let f = FeatureVector::from_fn(|_| rng.unit() * 3.0 - 0.5);
            let a = system.predictor.select(&f).unwrap();
            let b = rebuilt.select(&f).unwrap();
            assert_eq!(a.expert, b.expert);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            assert_eq!(a.low_confidence, b.low_confidence);
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let system = trained();
        let artifact =
            ModelArtifact::from_predictor(&system.predictor, &system.fitted_curves).unwrap();
        let bytes = artifact.encode();
        // Flipping any single byte must be rejected (header, length,
        // payload, or checksum). Stride keeps the test fast while still
        // covering every section; the first 64 bytes are covered densely.
        for i in (0..bytes.len()).filter(|&i| i < 64 || i % 97 == 0 || i >= bytes.len() - 16) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            let decoded = ModelArtifact::decode(&corrupted);
            match decoded {
                Err(_) => {}
                Ok(d) => panic!("flip at byte {i} went undetected (of {})", {
                    let _ = d;
                    bytes.len()
                }),
            }
        }
        // Truncation and extension are rejected too.
        assert!(ModelArtifact::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(ModelArtifact::decode(&extended).is_err());
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let system = trained();
        let artifact =
            ModelArtifact::from_predictor(&system.predictor, &system.fitted_curves).unwrap();
        let dir = std::env::temp_dir().join(format!("serving_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.smma");
        artifact.save(&path).unwrap();
        let loaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(loaded, artifact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_predictor_flushes_on_size_and_deadline() {
        let system = trained();
        let table = Arc::new(PredictionTable::new());
        let mut bp = BatchPredictor::new(
            system.predictor.clone(),
            table.clone(),
            BatchConfig {
                max_batch: 3,
                max_delay: 1.0,
            },
        )
        .unwrap();
        let mut rng = SimRng::seed_from(11);
        let probes: Vec<FeatureVector> = (0..5)
            .map(|_| FeatureVector::from_fn(|_| rng.unit()))
            .collect();

        // Two requests: below max_batch, before the deadline — nothing out.
        bp.submit(0.0, probes[0].clone()).unwrap();
        bp.submit(0.1, probes[1].clone()).unwrap();
        assert_eq!(bp.pending(), 2);
        assert!(bp.poll(0.5).unwrap().is_empty());

        // Third request reaches max_batch: dispatched immediately.
        bp.submit(0.2, probes[2].clone()).unwrap();
        assert_eq!(bp.pending(), 0);
        let out = bp.poll(0.2).unwrap();
        assert_eq!(out.iter().map(|&(t, _)| t).collect::<Vec<_>>(), [0, 1, 2]);

        // Deadline flush: one request, polled past its deadline.
        bp.submit(5.0, probes[3].clone()).unwrap();
        assert!(bp.poll(5.5).unwrap().is_empty());
        let late = bp.poll(6.0).unwrap();
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].0, 3);

        // Explicit flush drains the remainder.
        bp.submit(7.0, probes[4].clone()).unwrap();
        let flushed = bp.flush().unwrap();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, 4);

        // Results match the scalar path bit for bit.
        for (i, probe) in probes.iter().enumerate() {
            let scalar = system.predictor.select(probe).unwrap();
            let cached = table.select_cached(&system.predictor, probe).unwrap();
            assert_eq!(
                scalar.distance.to_bits(),
                cached.distance.to_bits(),
                "probe {i}"
            );
        }
    }

    #[test]
    fn batch_predictor_matches_scalar_across_cut_points() {
        let system = trained();
        let mut rng = SimRng::seed_from(23);
        let probes: Vec<FeatureVector> = (0..17)
            .map(|_| FeatureVector::from_fn(|_| rng.unit() * 2.0))
            .collect();
        let scalar: Vec<Selection> = probes
            .iter()
            .map(|p| system.predictor.select(p).unwrap())
            .collect();
        for max_batch in [1usize, 4, 16, 64] {
            let table = Arc::new(PredictionTable::new());
            let mut bp = BatchPredictor::new(
                system.predictor.clone(),
                table,
                BatchConfig {
                    max_batch,
                    max_delay: 10.0,
                },
            )
            .unwrap();
            let mut got: Vec<(Ticket, Selection)> = Vec::new();
            for (i, p) in probes.iter().enumerate() {
                bp.submit(i as f64 * 0.01, p.clone()).unwrap();
                got.extend(bp.poll(i as f64 * 0.01).unwrap());
            }
            got.extend(bp.flush().unwrap());
            got.sort_by_key(|&(t, _)| t);
            assert_eq!(got.len(), scalar.len());
            for (t, sel) in got {
                let s = &scalar[usize::try_from(t).unwrap()];
                assert_eq!(sel.expert, s.expert, "batch {max_batch} ticket {t}");
                assert_eq!(sel.distance.to_bits(), s.distance.to_bits());
                assert_eq!(sel.low_confidence, s.low_confidence);
            }
        }
    }
}
