//! The offline training phase (Fig. 2).
//!
//! For each training benchmark (the 16 HiBench + BigDataBench programs,
//! §3.3) the pipeline:
//!
//! 1. extracts its feature vector from a profiling run,
//! 2. profiles its memory footprint over a range of input sizes
//!    (~300 MB to ~1 TB in the paper; slice-scale sizes here),
//! 3. fits every expert family by least squares and labels the benchmark
//!    with the family that fits best,
//! 4. trains the KNN expert selector over `(features, label)` exemplars.
//!
//! [`train_system`] runs the full pipeline; [`train_loocv`] excludes a
//! target benchmark *and its cross-suite equivalents* from the training
//! set, implementing the evaluation protocol of §5.2.

use crate::profiling::ProfilingConfig;
use crate::ColocateError;
use mlkit::regression::{self, CurveFamily};
use moe_core::expert::ExpertId;
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use simkit::SimRng;
use workloads::catalog::{Benchmark, Catalog};
use workloads::signatures;

/// Configuration of offline training.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Input slice sizes (GB) profiled per benchmark for curve fitting.
    pub profile_sizes_gb: Vec<f64>,
    /// Measurement noise on profiled footprints.
    pub footprint_noise_sd: f64,
    /// Profiling (feature observation) noise settings.
    pub profiling: ProfilingConfig,
    /// Selector/calibration settings.
    pub predictor: PredictorConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            // Log-spaced from 50 MB to 64 GB: the slice scales executors
            // actually see, covering the curvature of all three families.
            profile_sizes_gb: vec![
                0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 51.2, 64.0,
            ],
            footprint_noise_sd: 0.005,
            profiling: ProfilingConfig::default(),
            predictor: PredictorConfig::default(),
        }
    }
}

/// A trained runtime: registry, selector and the labeled training programs.
#[derive(Debug, Clone)]
pub struct TrainedSystem {
    /// The end-to-end predictor (registry + selector).
    pub predictor: MoePredictor,
    /// The labeled training programs (for analyses like Fig. 16).
    pub programs: Vec<TrainingProgram>,
    /// Per-program fitted curves from the offline profiling, parallel to
    /// `programs` (used by the Quasar-style baseline).
    pub fitted_curves: Vec<mlkit::regression::FittedCurve>,
    /// Catalog indices of the programs, parallel to `programs`.
    pub program_benchmarks: Vec<usize>,
    /// Measured average CPU utilisation of each program during offline
    /// profiling, parallel to `programs`.
    pub program_cpus: Vec<f64>,
}

/// Offline-fits one benchmark's memory curve and returns the winning
/// family and curve.
///
/// # Errors
///
/// Returns [`ColocateError::Ml`] if no family fits the profile data.
pub fn fit_benchmark(
    bench: &Benchmark,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<(CurveFamily, mlkit::regression::FittedCurve), ColocateError> {
    let xs: Vec<f64> = config.profile_sizes_gb.clone();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| bench.true_footprint_gb(x) * rng.relative_noise(config.footprint_noise_sd))
        .collect();
    let (curve, _rmse) = regression::best_fit(&xs, &ys)?;
    Ok((curve.family, curve))
}

/// Maps a family to its [`ExpertId`] in the builtin registry
/// (Table 1 order).
#[must_use]
pub fn family_expert_id(family: CurveFamily) -> ExpertId {
    let idx = CurveFamily::ALL
        .iter()
        .position(|&f| f == family)
        .expect("family in ALL");
    ExpertId::from_usize(idx)
}

/// Trains the full system on the given benchmarks.
///
/// # Errors
///
/// Propagates fitting and selector-training failures.
pub fn train_on(
    benchmarks: &[&Benchmark],
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    let mut programs = Vec::with_capacity(benchmarks.len());
    let mut fitted_curves = Vec::with_capacity(benchmarks.len());
    let mut program_benchmarks = Vec::with_capacity(benchmarks.len());
    let mut program_cpus = Vec::with_capacity(benchmarks.len());
    for bench in benchmarks {
        let (family, curve) = fit_benchmark(bench, config, rng)?;
        let features = signatures::observe(
            bench,
            rng,
            config.profiling.signature_jitter_sd,
            config.profiling.feature_noise_sd,
        );
        programs.push(TrainingProgram::new(
            bench.name(),
            features,
            family_expert_id(family),
        ));
        fitted_curves.push(curve);
        program_benchmarks.push(bench.index());
        program_cpus.push((bench.cpu_util() * rng.relative_noise(0.03)).clamp(0.01, 1.0));
    }
    let predictor = MoePredictor::train(ExpertRegistry::builtin(), &programs, config.predictor)?;
    Ok(TrainedSystem {
        predictor,
        programs,
        fitted_curves,
        program_benchmarks,
        program_cpus,
    })
}

/// Trains on the paper's 16 HiBench + BigDataBench benchmarks.
///
/// # Errors
///
/// Propagates [`train_on`] failures.
pub fn train_system(
    catalog: &Catalog,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    train_on(&catalog.training_set(), config, rng)
}

/// Leave-one-out training for evaluating `target`: the target and its
/// cross-suite equivalents are excluded from the training set (§5.2).
///
/// # Errors
///
/// Propagates [`train_on`] failures.
pub fn train_loocv(
    catalog: &Catalog,
    target: &Benchmark,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    let excluded: std::collections::HashSet<usize> = catalog
        .equivalents_of(target)
        .iter()
        .map(|b| b.index())
        .chain([target.index()])
        .collect();
    let training: Vec<&Benchmark> = catalog
        .training_set()
        .into_iter()
        .filter(|b| !excluded.contains(&b.index()))
        .collect();
    if training.is_empty() {
        return Err(ColocateError::Config(
            "leave-one-out excluded every training benchmark".into(),
        ));
    }
    train_on(&training, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_fit_recovers_the_generating_family() {
        let catalog = Catalog::paper();
        let config = TrainingConfig::default();
        let mut rng = SimRng::seed_from(1);
        let mut correct = 0;
        let all = catalog.all();
        for bench in all {
            let (family, _) = fit_benchmark(bench, &config, &mut rng).unwrap();
            if family == bench.family() {
                correct += 1;
            }
        }
        // Noise can flip a borderline case, but nearly all must be right.
        assert!(
            correct >= all.len() - 2,
            "only {correct}/{} correct",
            all.len()
        );
    }

    #[test]
    fn trained_system_has_sixteen_programs() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(2);
        let sys = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        assert_eq!(sys.programs.len(), 16);
        assert_eq!(sys.fitted_curves.len(), 16);
        assert_eq!(sys.predictor.registry().len(), 3);
    }

    #[test]
    fn selector_classifies_unseen_suites_well() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(3);
        let sys = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        // Apply to the 28 Spark-Perf/Spark-Bench benchmarks (never trained
        // on), checking the selected expert matches the true family.
        let mut hits = 0;
        let mut total = 0;
        for bench in catalog.all() {
            if matches!(
                bench.suite(),
                workloads::Suite::SparkPerf | workloads::Suite::SparkBench
            ) {
                let features = signatures::observe_default(bench, &mut rng);
                let sel = sys.predictor.select(&features).unwrap();
                total += 1;
                if sel.expert == family_expert_id(bench.family()) {
                    hits += 1;
                }
            }
        }
        assert_eq!(total, 28);
        assert!(hits as f64 / total as f64 > 0.85, "{hits}/{total}");
    }

    #[test]
    fn loocv_excludes_target_and_equivalents() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(4);
        let target = catalog.by_name("HB.Sort").unwrap();
        let sys = train_loocv(&catalog, target, &TrainingConfig::default(), &mut rng).unwrap();
        // HB.Sort and BDB.Sort excluded (SP.Sort is not a training-suite
        // member anyway): 16 − 2 = 14 programs.
        assert_eq!(sys.programs.len(), 14);
        assert!(sys.programs.iter().all(|p| p.name != "HB.Sort"));
        assert!(sys.programs.iter().all(|p| p.name != "BDB.Sort"));
    }

    #[test]
    fn family_expert_ids_follow_table1_order() {
        assert_eq!(family_expert_id(CurveFamily::Linear).as_usize(), 0);
        assert_eq!(family_expert_id(CurveFamily::Exponential).as_usize(), 1);
        assert_eq!(family_expert_id(CurveFamily::NapierianLog).as_usize(), 2);
    }
}
