//! The offline training phase (Fig. 2).
//!
//! For each training benchmark (the 16 HiBench + BigDataBench programs,
//! §3.3) the pipeline:
//!
//! 1. extracts its feature vector from a profiling run,
//! 2. profiles its memory footprint over a range of input sizes
//!    (~300 MB to ~1 TB in the paper; slice-scale sizes here),
//! 3. fits every expert family by least squares and labels the benchmark
//!    with the family that fits best,
//! 4. trains the KNN expert selector over `(features, label)` exemplars.
//!
//! [`train_system`] runs the full pipeline; [`train_loocv`] excludes a
//! target benchmark *and its cross-suite equivalents* from the training
//! set, implementing the evaluation protocol of §5.2.
//!
//! Profiling (steps 1–3) is the expensive part and depends only on the
//! benchmark set and the RNG stream — not on which fold of a
//! cross-validation is being trained — so it is factored into
//! [`profile_benchmarks`], whose output ([`ProgramProfiles`]) can be
//! sliced per fold by [`train_from_profiles`]. [`train_loocv_all`] uses
//! that split to profile a campaign's benchmarks once and fan the cheap
//! per-fold selector training out across workers deterministically.

use crate::predictors::PredictionTable;
use crate::profiling::ProfilingConfig;
use crate::ColocateError;
use mlkit::regression::{self, CurveFamily, FittedCurve};
use moe_core::expert::ExpertId;
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use simkit::SimRng;
use std::collections::HashSet;
use std::sync::Arc;
use workloads::catalog::{Benchmark, Catalog};
use workloads::signatures;

/// Configuration of offline training.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Input slice sizes (GB) profiled per benchmark for curve fitting.
    pub profile_sizes_gb: Vec<f64>,
    /// Measurement noise on profiled footprints.
    pub footprint_noise_sd: f64,
    /// Profiling (feature observation) noise settings.
    pub profiling: ProfilingConfig,
    /// Selector/calibration settings.
    pub predictor: PredictorConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            // Log-spaced from 50 MB to 64 GB: the slice scales executors
            // actually see, covering the curvature of all three families.
            profile_sizes_gb: vec![
                0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 51.2, 64.0,
            ],
            footprint_noise_sd: 0.005,
            profiling: ProfilingConfig::default(),
            predictor: PredictorConfig::default(),
        }
    }
}

/// A trained runtime: registry, selector and the labeled training programs.
#[derive(Debug, Clone)]
pub struct TrainedSystem {
    /// The end-to-end predictor (registry + selector).
    pub predictor: MoePredictor,
    /// The labeled training programs (for analyses like Fig. 16).
    pub programs: Vec<TrainingProgram>,
    /// Per-program fitted curves from the offline profiling, parallel to
    /// `programs` (used by the Quasar-style baseline).
    pub fitted_curves: Vec<mlkit::regression::FittedCurve>,
    /// Catalog indices of the programs, parallel to `programs`.
    pub program_benchmarks: Vec<usize>,
    /// Measured average CPU utilisation of each program during offline
    /// profiling, parallel to `programs`.
    pub program_cpus: Vec<f64>,
    /// Campaign-wide cache of expert selections. Shared (via `Arc`) by
    /// every clone of this system, so policies and mix replays built from
    /// the same binding reuse each other's KNN lookups.
    pub selections: Arc<PredictionTable>,
}

/// Offline-fits one benchmark's memory curve and returns the winning
/// family and curve.
///
/// # Errors
///
/// Returns [`ColocateError::Ml`] if no family fits the profile data.
pub fn fit_benchmark(
    bench: &Benchmark,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<(CurveFamily, mlkit::regression::FittedCurve), ColocateError> {
    let xs: Vec<f64> = config.profile_sizes_gb.clone();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| bench.true_footprint_gb(x) * rng.relative_noise(config.footprint_noise_sd))
        .collect();
    let (curve, _rmse) = regression::best_fit(&xs, &ys)?;
    Ok((curve.family, curve))
}

/// Maps a family to its [`ExpertId`] in the builtin registry
/// (Table 1 order).
#[must_use]
pub fn family_expert_id(family: CurveFamily) -> ExpertId {
    let idx = CurveFamily::ALL
        .iter()
        .position(|&f| f == family)
        .expect("family in ALL");
    ExpertId::from_usize(idx)
}

/// Offline profiling artifacts for a set of benchmarks, computed once and
/// reusable across cross-validation folds.
///
/// All four vectors are parallel. Produced by [`profile_benchmarks`];
/// consumed (with per-fold exclusions) by [`train_from_profiles`].
#[derive(Debug, Clone)]
pub struct ProgramProfiles {
    /// Catalog indices of the profiled benchmarks.
    pub benchmarks: Vec<usize>,
    /// Labeled training programs (observed features + family label).
    pub programs: Vec<TrainingProgram>,
    /// Offline-fitted memory curves.
    pub fitted_curves: Vec<FittedCurve>,
    /// Measured average CPU utilisation during profiling.
    pub cpus: Vec<f64>,
}

/// Runs the offline profiling pipeline (curve fitting, feature
/// observation, CPU measurement) over `benchmarks`.
///
/// Consumes `rng` exactly as [`train_on`] historically did, so a profile
/// pass followed by [`train_from_profiles`] with no exclusions reproduces
/// `train_on` bit for bit.
///
/// # Errors
///
/// Returns [`ColocateError::Ml`] if a benchmark's profile fits no family.
pub fn profile_benchmarks(
    benchmarks: &[&Benchmark],
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<ProgramProfiles, ColocateError> {
    let mut programs = Vec::with_capacity(benchmarks.len());
    let mut fitted_curves = Vec::with_capacity(benchmarks.len());
    let mut program_benchmarks = Vec::with_capacity(benchmarks.len());
    let mut program_cpus = Vec::with_capacity(benchmarks.len());
    for bench in benchmarks {
        let (family, curve) = fit_benchmark(bench, config, rng)?;
        let features = signatures::observe(
            bench,
            rng,
            config.profiling.signature_jitter_sd,
            config.profiling.feature_noise_sd,
        );
        programs.push(TrainingProgram::new(
            bench.name(),
            features,
            family_expert_id(family),
        ));
        fitted_curves.push(curve);
        program_benchmarks.push(bench.index());
        program_cpus.push((bench.cpu_util() * rng.relative_noise(0.03)).clamp(0.01, 1.0));
    }
    Ok(ProgramProfiles {
        benchmarks: program_benchmarks,
        programs,
        fitted_curves,
        cpus: program_cpus,
    })
}

/// Trains a system from already-computed profiles, skipping every program
/// whose catalog index is in `excluded`.
///
/// Selector training consumes no randomness, so this step is cheap and
/// thread-safe: leave-one-out campaigns profile once and call this per
/// fold (see [`train_loocv_all`]).
///
/// # Errors
///
/// Returns [`ColocateError::Config`] if the exclusions leave no training
/// program, and propagates selector-training failures.
pub fn train_from_profiles(
    profiles: &ProgramProfiles,
    excluded: &HashSet<usize>,
    config: &TrainingConfig,
) -> Result<TrainedSystem, ColocateError> {
    let keep: Vec<usize> = (0..profiles.programs.len())
        .filter(|&i| !excluded.contains(&profiles.benchmarks[i]))
        .collect();
    if keep.is_empty() {
        return Err(ColocateError::Config(
            "no training programs remain after exclusions".into(),
        ));
    }
    let programs: Vec<TrainingProgram> =
        keep.iter().map(|&i| profiles.programs[i].clone()).collect();
    let predictor = MoePredictor::train(ExpertRegistry::builtin(), &programs, config.predictor)?;
    Ok(TrainedSystem {
        predictor,
        programs,
        fitted_curves: keep.iter().map(|&i| profiles.fitted_curves[i]).collect(),
        program_benchmarks: keep.iter().map(|&i| profiles.benchmarks[i]).collect(),
        program_cpus: keep.iter().map(|&i| profiles.cpus[i]).collect(),
        selections: Arc::new(PredictionTable::new()),
    })
}

/// Trains the full system on the given benchmarks.
///
/// # Errors
///
/// Propagates fitting and selector-training failures.
pub fn train_on(
    benchmarks: &[&Benchmark],
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    let profiles = profile_benchmarks(benchmarks, config, rng)?;
    train_from_profiles(&profiles, &HashSet::new(), config)
}

/// Trains on the paper's 16 HiBench + BigDataBench benchmarks.
///
/// # Errors
///
/// Propagates [`train_on`] failures.
pub fn train_system(
    catalog: &Catalog,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    train_on(&catalog.training_set(), config, rng)
}

/// Catalog indices excluded when evaluating `target` leave-one-out: the
/// target itself plus its cross-suite equivalents (§5.2).
#[must_use]
pub fn loocv_exclusions(catalog: &Catalog, target: &Benchmark) -> HashSet<usize> {
    catalog
        .equivalents_of(target)
        .iter()
        .map(|b| b.index())
        .chain([target.index()])
        .collect()
}

/// Leave-one-out training for evaluating `target`: the target and its
/// cross-suite equivalents are excluded from the training set (§5.2).
///
/// This profiles the reduced training set from scratch, consuming `rng`
/// per fold — the historical behaviour, kept as the oracle that
/// [`train_loocv_all`]'s shared-profile campaigns are validated against.
///
/// # Errors
///
/// Propagates [`train_on`] failures.
pub fn train_loocv(
    catalog: &Catalog,
    target: &Benchmark,
    config: &TrainingConfig,
    rng: &mut SimRng,
) -> Result<TrainedSystem, ColocateError> {
    let excluded = loocv_exclusions(catalog, target);
    let training: Vec<&Benchmark> = catalog
        .training_set()
        .into_iter()
        .filter(|b| !excluded.contains(&b.index()))
        .collect();
    if training.is_empty() {
        return Err(ColocateError::Config(
            "leave-one-out excluded every training benchmark".into(),
        ));
    }
    train_on(&training, config, rng)
}

/// Trains one leave-one-out system per target benchmark — a whole
/// evaluation campaign — profiling the training set **once** and fanning
/// the cheap per-fold selector training out across `workers` threads.
///
/// The profiling pass runs serially from `SimRng::seed_from(base_seed)`,
/// so every fold sees identical profiles regardless of worker count; fold
/// training itself consumes no randomness, and
/// [`simkit::par::par_map_indexed`] commits results in target order. The
/// returned vector is therefore a pure function of
/// `(catalog, targets, config, base_seed)`.
///
/// # Errors
///
/// Propagates profiling failures, and per-fold
/// [`ColocateError::Config`] / selector-training failures (first in
/// target order wins).
pub fn train_loocv_all(
    catalog: &Catalog,
    targets: &[&Benchmark],
    config: &TrainingConfig,
    base_seed: u64,
    workers: usize,
) -> Result<Vec<TrainedSystem>, ColocateError> {
    let mut rng = SimRng::seed_from(base_seed);
    let profiles = profile_benchmarks(&catalog.training_set(), config, &mut rng)?;
    simkit::par::par_map_indexed(targets, workers, |_, target| {
        let excluded = loocv_exclusions(catalog, target);
        train_from_profiles(&profiles, &excluded, config)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_fit_recovers_the_generating_family() {
        let catalog = Catalog::paper();
        let config = TrainingConfig::default();
        let mut rng = SimRng::seed_from(1);
        let mut correct = 0;
        let all = catalog.all();
        for bench in all {
            let (family, _) = fit_benchmark(bench, &config, &mut rng).unwrap();
            if family == bench.family() {
                correct += 1;
            }
        }
        // Noise can flip a borderline case, but nearly all must be right.
        assert!(
            correct >= all.len() - 2,
            "only {correct}/{} correct",
            all.len()
        );
    }

    #[test]
    fn trained_system_has_sixteen_programs() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(2);
        let sys = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        assert_eq!(sys.programs.len(), 16);
        assert_eq!(sys.fitted_curves.len(), 16);
        assert_eq!(sys.predictor.registry().len(), 3);
    }

    #[test]
    fn selector_classifies_unseen_suites_well() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(3);
        let sys = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        // Apply to the 28 Spark-Perf/Spark-Bench benchmarks (never trained
        // on), checking the selected expert matches the true family.
        let mut hits = 0;
        let mut total = 0;
        for bench in catalog.all() {
            if matches!(
                bench.suite(),
                workloads::Suite::SparkPerf | workloads::Suite::SparkBench
            ) {
                let features = signatures::observe_default(bench, &mut rng);
                let sel = sys.predictor.select(&features).unwrap();
                total += 1;
                if sel.expert == family_expert_id(bench.family()) {
                    hits += 1;
                }
            }
        }
        assert_eq!(total, 28);
        assert!(hits as f64 / total as f64 > 0.85, "{hits}/{total}");
    }

    #[test]
    fn loocv_excludes_target_and_equivalents() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(4);
        let target = catalog.by_name("HB.Sort").unwrap();
        let sys = train_loocv(&catalog, target, &TrainingConfig::default(), &mut rng).unwrap();
        // HB.Sort and BDB.Sort excluded (SP.Sort is not a training-suite
        // member anyway): 16 − 2 = 14 programs.
        assert_eq!(sys.programs.len(), 14);
        assert!(sys.programs.iter().all(|p| p.name != "HB.Sort"));
        assert!(sys.programs.iter().all(|p| p.name != "BDB.Sort"));
    }

    #[test]
    fn profile_then_train_reproduces_train_on_bitwise() {
        // `train_on` must stay a pure refactoring of the historical
        // single-pass pipeline: profiling consumes the RNG identically and
        // the selector sees the same programs in the same order.
        let catalog = Catalog::paper();
        let config = TrainingConfig::default();
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        let via_train_on = train_on(&catalog.training_set(), &config, &mut rng_a).unwrap();
        let profiles = profile_benchmarks(&catalog.training_set(), &config, &mut rng_b).unwrap();
        let via_profiles = train_from_profiles(&profiles, &HashSet::new(), &config).unwrap();
        assert_eq!(
            rng_a.unit().to_bits(),
            rng_b.unit().to_bits(),
            "same RNG stream position"
        );
        assert_eq!(
            via_train_on.program_benchmarks,
            via_profiles.program_benchmarks
        );
        for (a, b) in via_train_on.programs.iter().zip(&via_profiles.programs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.expert, b.expert);
            for (x, y) in a.features.as_slice().iter().zip(b.features.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (a, b) in via_train_on
            .fitted_curves
            .iter()
            .zip(&via_profiles.fitted_curves)
        {
            assert_eq!(a, b);
        }
        for (a, b) in via_train_on
            .program_cpus
            .iter()
            .zip(&via_profiles.program_cpus)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn loocv_campaign_is_worker_count_invariant() {
        let catalog = Catalog::paper();
        let config = TrainingConfig::default();
        let targets = catalog.training_set();
        let one = train_loocv_all(&catalog, &targets, &config, 0xCA4, 1).unwrap();
        let four = train_loocv_all(&catalog, &targets, &config, 0xCA4, 4).unwrap();
        assert_eq!(one.len(), 16);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.program_benchmarks, b.program_benchmarks);
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.name, pb.name);
                assert_eq!(pa.expert, pb.expert);
                for (x, y) in pa.features.as_slice().iter().zip(pb.features.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for (ca, cb) in a.fitted_curves.iter().zip(&b.fitted_curves) {
                assert_eq!(ca, cb);
            }
        }
        // The campaign profiles once: two folds that both retain a program
        // see the *same* observation bits (per-fold reprofiling could not).
        let shared_a = one[0]
            .programs
            .iter()
            .find(|p| one[1].programs.iter().any(|q| q.name == p.name))
            .unwrap();
        let shared_b = one[1]
            .programs
            .iter()
            .find(|p| p.name == shared_a.name)
            .unwrap();
        for (x, y) in shared_a
            .features
            .as_slice()
            .iter()
            .zip(shared_b.features.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn loocv_all_excludes_like_the_serial_oracle() {
        // Fold membership (names) must match what per-fold `train_loocv`
        // computes; only the observation noise differs between the two.
        let catalog = Catalog::paper();
        let config = TrainingConfig::default();
        let targets = catalog.training_set();
        let folds = train_loocv_all(&catalog, &targets, &config, 0xCA4, 2).unwrap();
        for (target, fold) in targets.iter().zip(&folds) {
            let mut rng = SimRng::seed_from(9);
            let oracle = train_loocv(&catalog, target, &config, &mut rng).unwrap();
            let mut got: Vec<&str> = fold.programs.iter().map(|p| p.name.as_str()).collect();
            let mut want: Vec<&str> = oracle.programs.iter().map(|p| p.name.as_str()).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "fold membership for {}", target.name());
        }
    }

    #[test]
    fn family_expert_ids_follow_table1_order() {
        assert_eq!(family_expert_id(CurveFamily::Linear).as_usize(), 0);
        assert_eq!(family_expert_id(CurveFamily::Exponential).as_usize(), 1);
        assert_eq!(family_expert_id(CurveFamily::NapierianLog).as_usize(), 2);
    }
}
