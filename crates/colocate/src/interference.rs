//! Co-location interference studies (Figs. 14 and 15).
//!
//! Fig. 14: each of the 16 training benchmarks (~280 GB input) is launched
//! on a single host, then a competing Spark workload is co-located into
//! the spare memory under our scheme; the target's slowdown against its
//! isolated single-host run is reported (< 25 %, median < 10 %).
//!
//! Fig. 15: the same experiment with a computation-intensive PARSEC
//! benchmark as the co-location victim (< 30 % slowdown).

use crate::scheduler::{run_schedule_custom, PolicyKind, SchedulerConfig};
use crate::training::TrainedSystem;
use crate::ColocateError;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::ClusterEngine;
use workloads::catalog::Catalog;
use workloads::parsec::ParsecBenchmark;

/// Input size used for the interference studies (the paper uses ~280 GB,
/// scaled by the executor-slice logic onto one host).
pub const INTERFERENCE_INPUT_GB: f64 = 280.0;

/// Slowdown (%) of `target` when co-located with `other` on a single host
/// under the given policy, versus running alone on that host.
///
/// # Errors
///
/// Propagates scheduler failures.
pub fn spark_pair_slowdown(
    catalog: &Catalog,
    target: usize,
    other: usize,
    system: &TrainedSystem,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<f64, ColocateError> {
    // Target alone on the host (the baseline of Fig. 14).
    let single_host = SchedulerConfig {
        cluster: ClusterSpec::small(1),
        ..config.clone()
    };
    let solo = run_schedule_custom(
        PolicyKind::Isolated,
        catalog,
        &[(target, INTERFERENCE_INPUT_GB)],
        None,
        &single_host,
        seed,
    )?;

    // Paired run with the paper's explicit ordering: the target is
    // launched first and holds its memory; the competitor is then
    // co-located into the *spare* memory using the trained predictor.
    let mut engine = ClusterEngine::with_seed(ClusterSpec::small(1), config.interference, seed);
    engine.set_executor_startup_secs(config.executor_startup_secs);
    let node = engine.cluster().node_ids()[0];

    let target_bench = &catalog.all()[target];
    let target_app = engine
        .submit(target_bench.app_spec(INTERFERENCE_INPUT_GB, config.profiling.footprint_noise_sd));
    // The target processes its input in waves sized to roughly 60 % of the
    // host's RAM — it was launched first and owns most of the memory.
    let ram = engine.cluster().node(node).spec().ram_gb;
    let target_wave = moe_core::calibration::CalibratedModel::from_curve(target_bench.curve())
        .max_input_for_budget(ram * 0.6)
        .unwrap_or(INTERFERENCE_INPUT_GB)
        .min(INTERFERENCE_INPUT_GB);
    let target_fp = target_bench.true_footprint_gb(target_wave);
    engine
        .spawn_executor(target_app, node, target_wave, target_fp.min(ram * 0.65))
        .map_err(ColocateError::from)?;

    // Profile the competitor and size its slice for the spare memory with
    // our scheme's prediction.
    let other_bench = &catalog.all()[other];
    let mut rng = simkit::SimRng::seed_from(seed ^ 0xFE14);
    let (profile, _) = crate::profiling::profile_app(
        other_bench,
        INTERFERENCE_INPUT_GB,
        1,
        config.cluster.node.ram_gb,
        &config.profiling,
        &mut rng,
    );
    use crate::predictors::MemoryPredictor as _;
    let prediction = crate::predictors::MoePolicy::new(system.clone())
        .predict(&profile)
        .map_err(|e| ColocateError::Config(format!("prediction failed: {e}")))?;
    let margin = config.reserve_margin.max(1.0);
    let other_app = engine
        .submit(other_bench.app_spec(INTERFERENCE_INPUT_GB, config.profiling.footprint_noise_sd));

    let mut elapsed = 0.0;
    loop {
        // Keep the target's wave executor running until its input drains.
        if engine
            .node_executors(node)
            .iter()
            .filter(|&&e| engine.executor(e).map(|x| x.app()) == Ok(target_app))
            .count()
            == 0
            && !engine.app(target_app).is_finished()
            && engine.app(target_app).unassigned_gb() > 0.0
        {
            engine
                .spawn_executor(target_app, node, target_wave, target_fp.min(ram * 0.65))
                .map_err(ColocateError::from)?;
        }
        // Keep the competitor occupying the spare memory while the target
        // runs, respawning as its slices finish.
        if engine
            .node_executors(node)
            .iter()
            .filter(|&&e| engine.executor(e).map(|x| x.app()) == Ok(other_app))
            .count()
            == 0
            && !engine.app(other_app).is_finished()
            && engine.app(other_app).unassigned_gb() > 0.0
        {
            let free = engine.node_free_memory(node);
            if let Some(x) = prediction.model.max_input_for_budget(free / margin) {
                let slice = x
                    .min(engine.app(other_app).unassigned_gb())
                    .min(INTERFERENCE_INPUT_GB / 4.0);
                if slice > config.min_slice_gb {
                    let reserve = (prediction.model.footprint_gb(slice) * margin).min(free);
                    engine
                        .spawn_executor(other_app, node, slice, reserve)
                        .map_err(ColocateError::from)?;
                }
            }
        }
        let Some((dt, who)) = engine.next_completion() else {
            return Err(ColocateError::Config("no executors running".into()));
        };
        engine.advance(dt);
        elapsed += dt;
        let done_app = engine.executor(who).map(|e| e.app()).ok();
        engine.complete_executor(who).map_err(ColocateError::from)?;
        if done_app == Some(target_app) && engine.app(target_app).is_finished() {
            break;
        }
    }
    Ok(((elapsed / solo.makespan_secs) - 1.0).max(0.0) * 100.0)
}

/// Slowdown (%) of a PARSEC benchmark co-located with one Spark benchmark
/// on a single host under our scheme, versus running alone.
///
/// The PARSEC program is CPU-bound with a fixed working set; the Spark
/// executor is placed into the host's spare memory with the CPU guard
/// active, so the PARSEC slowdown comes from sub-saturation interference
/// and any CPU oversubscription.
///
/// # Errors
///
/// Propagates substrate failures.
pub fn parsec_slowdown(
    catalog: &Catalog,
    parsec: &ParsecBenchmark,
    spark_bench: usize,
    system: &TrainedSystem,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<f64, ColocateError> {
    let _ = system; // placement below uses the oracle-style footprint.
    let mut engine = ClusterEngine::with_seed(ClusterSpec::small(1), config.interference, seed);
    let node = engine.cluster().node_ids()[0];

    // PARSEC running natively on the host.
    let parsec_app = engine.submit(parsec.app_spec());
    engine
        .spawn_executor(parsec_app, node, 1.0, parsec.memory_gb())
        .map_err(ColocateError::from)?
        .ok_or_else(|| ColocateError::Config("parsec app had no work".into()))?;

    // One Spark executor co-located into the spare memory. Slice sized for
    // the spare budget via the ground-truth curve (our scheme's prediction
    // is within a few percent of this; the Fig. 15 measurement is about
    // interference, not prediction error).
    let bench = &catalog.all()[spark_bench];
    // §4.3: the runtime re-balances executor threads to evenly distribute
    // cores, so the co-located Spark executor's CPU demand is capped to
    // the host's remaining headroom (plus a small scheduling overlap).
    let mut spec = bench.app_spec(INTERFERENCE_INPUT_GB, 0.0);
    spec.cpu_util = spec.cpu_util.min((1.05 - parsec.cpu_util()).max(0.05));
    let spark = engine.submit(spec);
    let free = engine.node_free_memory(node);
    let slice = moe_core::calibration::CalibratedModel::from_curve(bench.curve())
        .max_input_for_budget(free * 0.9)
        .unwrap_or(1.0)
        .min(INTERFERENCE_INPUT_GB);
    let reserve = bench.true_footprint_gb(slice).min(free);
    engine
        .spawn_executor(spark, node, slice, reserve)
        .map_err(ColocateError::from)?;

    // Run until the PARSEC executor finishes.
    let mut elapsed = 0.0;
    loop {
        let Some((dt, who)) = engine.next_completion() else {
            return Err(ColocateError::Config("no executors running".into()));
        };
        engine.advance(dt);
        elapsed += dt;
        let done_app = engine.executor(who).map(|e| e.app()).ok();
        engine.complete_executor(who).map_err(ColocateError::from)?;
        if done_app == Some(parsec_app) {
            break;
        }
    }
    Ok(((elapsed / parsec.solo_seconds()) - 1.0).max(0.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_system, TrainingConfig};
    use simkit::SimRng;
    use workloads::parsec::parsec_suite;

    #[test]
    fn spark_pair_slowdown_is_bounded() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(1);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        let config = SchedulerConfig::default();
        let target = catalog.by_name("HB.Sort").unwrap().index();
        let other = catalog.by_name("HB.Kmeans").unwrap().index();
        let s = spark_pair_slowdown(&catalog, target, other, &system, &config, 1).unwrap();
        assert!((0.0..=30.0).contains(&s), "slowdown {s}%");
    }

    #[test]
    fn parsec_slowdown_is_under_thirty_percent() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(2);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        let config = SchedulerConfig::default();
        let parsec = &parsec_suite()[0];
        let spark = catalog.by_name("HB.Aggregation").unwrap().index();
        let s = parsec_slowdown(&catalog, parsec, spark, &system, &config, 3).unwrap();
        assert!((0.0..=30.0).contains(&s), "slowdown {s}%");
    }

    #[test]
    fn heavier_co_runners_interfere_more() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(3);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        let config = SchedulerConfig::default();
        let parsec = &parsec_suite()[9]; // swaptions: 92 % CPU
        let light = catalog.by_name("HB.Scan").unwrap().index(); // 8 % CPU
        let heavy = catalog.by_name("SB.DecisionTree").unwrap().index(); // 58 %
        let s_light = parsec_slowdown(&catalog, parsec, light, &system, &config, 4).unwrap();
        let s_heavy = parsec_slowdown(&catalog, parsec, heavy, &system, &config, 4).unwrap();
        assert!(
            s_heavy >= s_light,
            "heavy {s_heavy}% should exceed light {s_light}%"
        );
    }
}
