//! System throughput (STP) and average normalized turnaround time (ANTT),
//! per the Eyerman–Eeckhout definitions the paper adopts (§5.3):
//!
//! ```text
//! STP  = Σ_i  C_iso_i / C_cl_i          (higher is better)
//! ANTT = (1/n) Σ_i  C_cl_i / C_iso_i    (lower is better)
//! ```
//!
//! where `C_iso_i` is task *i*'s execution time alone with all memory and
//! `C_cl_i` its turnaround under the evaluated schedule. Reported numbers
//! are normalised against the isolated baseline schedule (the applications
//! run one by one), exactly as §6 does: *normalized STP* is the ratio of
//! STPs, *ANTT reduction* is the percentage drop in ANTT.

use serde::{Deserialize, Serialize};

/// Linear-interpolated percentile over unsorted data, `p` clamped to
/// `[0, 100]`.
///
/// The ordering is `total_cmp`, so the function never panics: NaN samples
/// sort to the top end instead of aborting the comparison (a schedule that
/// produced one corrupt slowdown should not take the whole campaign down),
/// and an empty slice yields NaN rather than indexing out of bounds. Bench
/// binaries reporting tail metrics (p50/p95/p99 job slowdown) share this
/// instead of each re-sorting slowdown vectors ad hoc.
///
/// Callers that need to *distinguish* "no samples" from a genuinely-NaN
/// tail should use [`try_percentile`], which types the empty case as
/// `None` instead of folding it into NaN.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    try_percentile(xs, p).unwrap_or(f64::NAN)
}

/// Several percentiles of one sample, paying the sort once.
///
/// Same semantics as [`percentile`]; returns one value per requested
/// percentile, in order. All-NaN when `xs` is empty — use
/// [`try_percentiles`] when the empty case must stay typed.
#[must_use]
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    try_percentiles(xs, ps).unwrap_or_else(|| vec![f64::NAN; ps.len()])
}

/// [`percentile`] with the empty-input case made explicit: `None` when
/// `xs` has no samples, `Some(value)` otherwise. A single sample is its
/// own percentile at every `p` (no interpolation partner exists).
#[must_use]
pub fn try_percentile(xs: &[f64], p: f64) -> Option<f64> {
    try_percentiles(xs, std::slice::from_ref(&p)).map(|v| v[0])
}

/// [`percentiles`] with the empty-input case made explicit: `None` when
/// `xs` has no samples, otherwise one value per requested percentile, in
/// order.
///
/// This is the hardened core the NaN-folding wrappers delegate to; the
/// chaos-search invariant battery uses it directly so an empty fold reads
/// as "nothing to measure" rather than as a corrupt tail.
#[must_use]
pub fn try_percentiles(xs: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(
        ps.iter()
            .map(|&p| {
                let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                if lo == hi {
                    sorted[lo]
                } else {
                    let frac = rank - lo as f64;
                    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
                }
            })
            .collect(),
    )
}

/// STP/ANTT of one schedule against per-task isolated times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// System throughput (formula 1).
    pub stp: f64,
    /// Average normalized turnaround time (formula 2).
    pub antt: f64,
}

/// Computes STP and ANTT from isolated execution times and turnaround
/// times under the evaluated schedule.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain
/// non-positive times.
#[must_use]
pub fn schedule_metrics(iso_secs: &[f64], turnaround_secs: &[f64]) -> ScheduleMetrics {
    assert_eq!(iso_secs.len(), turnaround_secs.len(), "length mismatch");
    assert!(!iso_secs.is_empty(), "no tasks");
    let mut stp = 0.0;
    let mut antt = 0.0;
    for (&iso, &cl) in iso_secs.iter().zip(turnaround_secs.iter()) {
        assert!(iso > 0.0 && cl > 0.0, "times must be positive");
        stp += iso / cl;
        antt += cl / iso;
    }
    ScheduleMetrics {
        stp,
        antt: antt / iso_secs.len() as f64,
    }
}

/// Turnaround times of the isolated baseline schedule: the applications
/// run one by one in submission order, so task *i* completes at the prefix
/// sum of isolated times.
///
/// # Panics
///
/// Panics if `iso_secs` is empty.
#[must_use]
pub fn isolated_baseline_turnarounds(iso_secs: &[f64]) -> Vec<f64> {
    assert!(!iso_secs.is_empty(), "no tasks");
    let mut acc = 0.0;
    iso_secs
        .iter()
        .map(|&c| {
            acc += c;
            acc
        })
        .collect()
}

/// A schedule's headline numbers as the paper reports them (§6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedMetrics {
    /// "Normalized STP": formula (1) evaluated with isolated execution as
    /// `C_is` — the baseline enters through the numerator, so a scheme
    /// that runs `n` tasks perfectly in parallel at isolated speed scores
    /// `n`. (Fig. 6a's y-axis.)
    pub normalized_stp: f64,
    /// Percentage reduction of average normalized turnaround time against
    /// the isolated one-by-one baseline schedule: each task's turnaround
    /// is normalised to its turnaround under the baseline, and the
    /// reduction is `(1 − mean ratio) × 100` (Fig. 6b's y-axis).
    pub antt_reduction_pct: f64,
}

/// Computes the paper's reported numbers: formula-(1) STP, and the ANTT
/// reduction against the one-by-one baseline built from the same per-task
/// isolated times.
///
/// # Panics
///
/// Panics under the same conditions as [`schedule_metrics`].
#[must_use]
pub fn normalize(iso_secs: &[f64], turnaround_secs: &[f64]) -> NormalizedMetrics {
    let sched = schedule_metrics(iso_secs, turnaround_secs);
    let baseline_turnarounds = isolated_baseline_turnarounds(iso_secs);
    // Per-task turnaround normalised to the same task's turnaround in the
    // baseline schedule; averaging these keeps mixed-size mixes from
    // saturating the reduction (a 300 MB job queued behind 1 TB jobs
    // inflates both schedules alike).
    let mean_ratio = turnaround_secs
        .iter()
        .zip(baseline_turnarounds.iter())
        .map(|(cl, base)| cl / base)
        .sum::<f64>()
        / iso_secs.len() as f64;
    NormalizedMetrics {
        normalized_stp: sched.stp,
        antt_reduction_pct: (1.0 - mean_ratio) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_and_antt_closed_form() {
        // Two equal tasks, each twice as slow co-located.
        let m = schedule_metrics(&[100.0, 100.0], &[200.0, 200.0]);
        assert!((m.stp - 1.0).abs() < 1e-12);
        assert!((m.antt - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_parallelism_gives_stp_n() {
        // n tasks all finishing in their isolated time concurrently.
        let iso = [50.0, 50.0, 50.0, 50.0];
        let m = schedule_metrics(&iso, &iso);
        assert!((m.stp - 4.0).abs() < 1e-12);
        assert!((m.antt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_turnarounds_are_prefix_sums() {
        let t = isolated_baseline_turnarounds(&[10.0, 20.0, 30.0]);
        assert_eq!(t, vec![10.0, 30.0, 60.0]);
    }

    #[test]
    fn normalization_of_the_baseline_has_zero_antt_reduction() {
        let iso = [10.0, 20.0, 15.0];
        let base = isolated_baseline_turnarounds(&iso);
        let n = normalize(&iso, &base);
        // The one-by-one baseline's own STP is the harmonic-style sum of
        // formula (1) (> 1 because the first task is unslowed).
        assert!(n.normalized_stp > 1.0);
        assert!(n.antt_reduction_pct.abs() < 1e-12);
    }

    #[test]
    fn co_location_normalized_numbers_behave() {
        // Three equal 100 s tasks, run perfectly in parallel with a 20 %
        // co-location slowdown: each turnaround 120 s.
        let iso = [100.0, 100.0, 100.0];
        let n = normalize(&iso, &[120.0, 120.0, 120.0]);
        // Formula-(1) STP = 3 / 1.2 = 2.5.
        assert!((n.normalized_stp - 2.5).abs() < 1e-9);
        // Baseline turnarounds 100/200/300 → ratios 1.2, 0.6, 0.4 →
        // mean 0.7333 → 26.7 % reduction.
        assert!((n.antt_reduction_pct - (1.0 - 2.2 / 3.0) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates_and_matches_sorted_ranks() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 9.2);
        // Median of 6 samples interpolates between ranks 2 and 3.
        assert!((percentile(&xs, 50.0) - (2.6 + 3.0) / 2.0).abs() < 1e-12);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&xs, 150.0), 9.2);
        assert_eq!(percentile(&xs, -5.0), 1.0);
    }

    #[test]
    fn percentile_tolerates_nan_and_empty() {
        // NaN sorts last under total_cmp; no panic.
        let xs = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert!(percentile(&xs, 100.0).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert!(percentiles(&[], &[1.0, 99.0]).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn try_percentile_types_the_empty_case() {
        assert_eq!(try_percentile(&[], 50.0), None);
        assert_eq!(try_percentiles(&[], &[50.0, 99.0]), None);
        // Non-empty inputs agree with the NaN-folding wrappers bit for bit.
        let xs = [3.0, 1.0, 4.0];
        assert_eq!(
            try_percentile(&xs, 95.0).unwrap().to_bits(),
            percentile(&xs, 95.0).to_bits()
        );
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let xs = [7.25];
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(try_percentile(&xs, p), Some(7.25));
            assert_eq!(percentile(&xs, p), 7.25);
        }
        assert_eq!(try_percentiles(&xs, &[1.0, 99.0]), Some(vec![7.25, 7.25]));
    }

    #[test]
    fn percentiles_match_single_calls() {
        let xs = [5.0, 2.0, 8.0, 0.5, 3.3];
        let many = percentiles(&xs, &[50.0, 95.0, 99.0]);
        for (i, &p) in [50.0, 95.0, 99.0].iter().enumerate() {
            assert_eq!(many[i].to_bits(), percentile(&xs, p).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = schedule_metrics(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_times_panic() {
        let _ = schedule_metrics(&[1.0, 0.0], &[1.0, 1.0]);
    }
}
