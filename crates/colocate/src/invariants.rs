//! The chaos-search invariant battery: runs a [`simkit::chaoskit`]
//! episode through the closed-loop scheduler or the open-system service
//! and checks the contracts that must hold on *every* run, violating
//! fault schedule or not:
//!
//! * **job conservation** — every planned job finishes or is shed,
//!   exactly once; shed jobs never start, kept jobs never vanish;
//! * **timestamp sanity** — admissions happen at or after arrival,
//!   finishes at or after admission, everything finite; the reported
//!   makespan is exactly the last finish;
//! * **committed-GB accounting** — the admission layer's booked footprint
//!   sum never goes negative and never exceeds the headroom budget with
//!   more than one booking in flight (the single-booking empty-cluster
//!   escape is the one sanctioned excursion);
//! * **WFQ no-starvation ordering** — each admission takes a
//!   minimum-virtual-finish-tag eligible job, so no tenant's backlog can
//!   be bypassed indefinitely;
//! * **breaker liveness** — the circuit breaker never reopens without
//!   recent distress in its window: under a fault-free tail the window
//!   drains and the breaker must close rather than trip-lock;
//! * **quarantine finiteness** — a quarantined node always carries a
//!   finite release deadline, never limbo;
//! * **wedge detection** — a run that exhausts its event-loop guard or
//!   errors out of the substrate is itself a violation (`run-error`).
//!
//! [`chaos_search`] sweeps a seeded episode budget through
//! [`check_episode`], delta-debugs every violation down to a minimal
//! reproducer with [`simkit::chaoskit::shrink`], and folds the results in
//! episode order so the whole campaign — violations, shrink traces and
//! all — is bit-for-bit identical at every worker count.

use crate::scheduler::{run_schedule_with_faults, PolicyKind, ResilienceConfig, SchedulerConfig};
use crate::service::{run_service, AdmissionConfig, ServiceConfig, ServiceOutcome};
use simkit::chaoskit::{shrink, Episode, EpisodeSpace, ShrinkResult, Violation};
use simkit::par;
use sparklite::cluster::ClusterSpec;
use workloads::catalog::Catalog;

/// Number of configuration presets an episode's `preset` index selects
/// among (see [`preset_label`]).
pub const PRESETS: usize = 4;

/// The fixed job-class table every episode maps its `job_class` indices
/// into: benchmark name and input GB. Small inputs keep a single episode
/// cheap; the 100 GB linear-family class keeps memory pressure real on
/// the small clusters episodes draw.
pub const JOB_CLASSES: [(&str, f64); 3] = [
    ("HB.Sort", 30.0),
    ("BDB.Grep", 30.0),
    ("SP.NaiveBayes", 100.0),
];

/// Human-readable name of a preset index.
#[must_use]
pub fn preset_label(preset: usize) -> &'static str {
    match preset {
        0 => "closed-loop",
        1 => "service/uncontrolled",
        2 => "service/controlled",
        3 => "service/tight",
        _ => "unknown",
    }
}

/// The episode space the default chaos search draws from: 2–4 node
/// clusters, the [`JOB_CLASSES`] table, all [`PRESETS`] presets, and
/// fault/arrival intensities up to the fig21 storm levels.
#[must_use]
pub fn search_space() -> EpisodeSpace {
    EpisodeSpace {
        min_nodes: 2,
        max_nodes: 4,
        tenants: 3,
        job_classes: JOB_CLASSES.len(),
        presets: PRESETS,
        horizon_secs: 4_000.0,
        max_intensity: 1.0,
        max_spot_rate: 0.5,
        max_noise_sd: 1.5,
        min_rate_per_sec: 0.000_5,
        max_rate_per_sec: 0.004,
        max_jobs: 10,
    }
}

/// Maps an episode's arrival job-class indices through [`JOB_CLASSES`]
/// into the catalog's `(benchmark index, input GB)` pairs.
fn class_table(catalog: &Catalog) -> Result<Vec<(usize, f64)>, String> {
    JOB_CLASSES
        .iter()
        .map(|&(name, gb)| {
            catalog
                .by_name(name)
                .map(|b| (b.index(), gb))
                .ok_or_else(|| format!("benchmark {name} missing from catalog"))
        })
        .collect()
}

/// Scheduler configuration an episode runs under: a small cluster of the
/// episode's size with self-healing enabled (the production shape).
fn scheduler_config(episode: &Episode) -> SchedulerConfig {
    SchedulerConfig {
        cluster: ClusterSpec::small(episode.nodes),
        resilience: ResilienceConfig::self_healing(),
        ..SchedulerConfig::default()
    }
}

/// Admission configuration of a service preset (presets 1–3). The tight
/// preset pairs starvation-level headroom with a hair-trigger breaker
/// (trip at 2 distress events, hysteresis via recover-at-0) so chaos
/// episodes actually walk the trip/recover/re-trip edges instead of only
/// ever seeing a closed breaker.
fn admission_for(preset: usize) -> AdmissionConfig {
    match preset {
        2 => AdmissionConfig::controlled(),
        3 => AdmissionConfig {
            enabled: true,
            queue_capacity: 3,
            shed_watermark: 2,
            headroom_frac: 0.05,
            breaker: crate::service::BreakerConfig {
                window_secs: 300.0,
                trip_threshold: 2,
                recover_threshold: 0,
                cooldown_secs: 60.0,
            },
        },
        _ => AdmissionConfig::default(),
    }
}

/// Runs one episode through its preset and checks the invariant battery.
/// `None` means every invariant held; `Some` names the first violation.
///
/// The check is a pure function of the episode (the schedule seed is
/// [`Episode::seed`]), which is what makes delta-debugging shrinking and
/// worker-count-independent searches possible.
#[must_use]
pub fn check_episode(catalog: &Catalog, episode: &Episode) -> Option<Violation> {
    match check_episode_inner(catalog, episode) {
        Ok(v) => v,
        Err(msg) => Some(Violation::new("run-error", msg)),
    }
}

fn check_episode_inner(catalog: &Catalog, episode: &Episode) -> Result<Option<Violation>, String> {
    if episode.arrivals.is_empty() {
        // A shrunk-empty episode is vacuous: nothing can be violated.
        return Ok(None);
    }
    let classes = class_table(catalog)?;
    for event in &episode.arrivals {
        if event.job_class >= classes.len() {
            return Err(format!(
                "episode references job class {} outside the table",
                event.job_class
            ));
        }
    }
    let sched = scheduler_config(episode);
    if episode.preset == 0 {
        let mix: Vec<(usize, f64)> = episode
            .arrivals
            .iter()
            .map(|e| classes[e.job_class])
            .collect();
        let outcome = run_schedule_with_faults(
            PolicyKind::Oracle,
            catalog,
            &mix,
            None,
            &sched,
            episode.seed,
            &episode.fault_plan(),
        )
        .map_err(|e| format!("closed-loop run failed: {e}"))?;
        return Ok(check_closed(&outcome));
    }

    let config = ServiceConfig {
        scheduler: sched,
        admission: admission_for(episode.preset),
        tenant_weights: Vec::new(),
        job_classes: classes,
    };
    let outcome = run_service(
        PolicyKind::Oracle,
        catalog,
        &episode.arrival_plan(),
        None,
        &config,
        episode.seed,
        Some(&episode.fault_plan()),
    )
    .map_err(|e| format!("service run failed: {e}"))?;
    Ok(check_service(&outcome))
}

/// The closed-loop battery: every app finishes at a finite time no
/// earlier than it became ready, and the makespan is exactly the last
/// finish.
fn check_closed(outcome: &crate::scheduler::ScheduleOutcome) -> Option<Violation> {
    let mut last = 0.0f64;
    for (i, app) in outcome.per_app.iter().enumerate() {
        if !app.finished_at.is_finite() || app.finished_at < 0.0 {
            return Some(Violation::new(
                "job-conservation",
                format!("app {i} ended with non-finite finish {}", app.finished_at),
            ));
        }
        if app.finished_at < app.ready_at {
            return Some(Violation::new(
                "timestamp-order",
                format!(
                    "app {i} finished at {} before it was ready at {}",
                    app.finished_at, app.ready_at
                ),
            ));
        }
        last = last.max(app.finished_at);
    }
    if outcome.makespan_secs.to_bits() != last.to_bits() {
        return Some(Violation::new(
            "makespan-accounting",
            format!("makespan {} != last finish {last}", outcome.makespan_secs),
        ));
    }
    None
}

/// The open-system battery: job conservation, timestamp ordering,
/// makespan accounting, and the admission layer's audit counters.
fn check_service(outcome: &ServiceOutcome) -> Option<Violation> {
    let mut finished = 0usize;
    let mut shed = 0usize;
    let mut last = 0.0f64;
    for (i, job) in outcome.jobs.iter().enumerate() {
        match (job.shed, job.finished_at) {
            (true, Some(f)) => {
                return Some(Violation::new(
                    "job-conservation",
                    format!("job {i} was shed yet finished at {f}"),
                ));
            }
            (true, None) => {
                if job.admitted_at.is_some() {
                    return Some(Violation::new(
                        "job-conservation",
                        format!("job {i} was shed after being admitted"),
                    ));
                }
                shed += 1;
            }
            (false, None) => {
                return Some(Violation::new(
                    "job-conservation",
                    format!("job {i} neither finished nor was shed"),
                ));
            }
            (false, Some(f)) => {
                if !f.is_finite() {
                    return Some(Violation::new(
                        "job-conservation",
                        format!("job {i} finished at non-finite {f}"),
                    ));
                }
                if let Some(adm) = job.admitted_at {
                    if adm < job.arrived_at {
                        return Some(Violation::new(
                            "timestamp-order",
                            format!(
                                "job {i} admitted at {adm} before arrival {}",
                                job.arrived_at
                            ),
                        ));
                    }
                    if f < adm {
                        return Some(Violation::new(
                            "timestamp-order",
                            format!("job {i} finished at {f} before admission at {adm}"),
                        ));
                    }
                }
                finished += 1;
                last = last.max(f);
            }
        }
    }
    if finished + shed != outcome.jobs.len() || shed != outcome.shed_jobs {
        return Some(Violation::new(
            "job-conservation",
            format!(
                "{} jobs -> {finished} finished + {shed} shed (reported shed {})",
                outcome.jobs.len(),
                outcome.shed_jobs
            ),
        ));
    }
    if outcome.makespan_secs.to_bits() != last.to_bits() {
        return Some(Violation::new(
            "makespan-accounting",
            format!("makespan {} != last finish {last}", outcome.makespan_secs),
        ));
    }
    let audit = &outcome.audit;
    if audit.negative_commit_events > 0 {
        return Some(Violation::new(
            "committed-accounting",
            format!(
                "committed footprint went negative {} time(s)",
                audit.negative_commit_events
            ),
        ));
    }
    if audit.overbook_events > 0 {
        return Some(Violation::new(
            "committed-accounting",
            format!(
                "admission overbooked past headroom {} time(s) (peak {:.1} GB)",
                audit.overbook_events, audit.peak_committed_gb
            ),
        ));
    }
    if audit.wfq_order_violations > 0 {
        return Some(Violation::new(
            "wfq-ordering",
            format!(
                "admission bypassed the minimum-vft job {} time(s)",
                audit.wfq_order_violations
            ),
        ));
    }
    if audit.quiet_breaker_reopens > 0 {
        return Some(Violation::new(
            "breaker-liveness",
            format!(
                "breaker reopened {} time(s) without in-window distress",
                audit.quiet_breaker_reopens
            ),
        ));
    }
    if audit.nonfinite_quarantines > 0 {
        return Some(Violation::new(
            "quarantine-finiteness",
            format!(
                "{} quarantine deadline(s) left non-finite",
                audit.nonfinite_quarantines
            ),
        ));
    }
    None
}

/// Shape of one chaos-search campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Episodes to draw and check.
    pub episodes: usize,
    /// Base seed: episode `i` is drawn from `base_seed + i`.
    pub base_seed: u64,
    /// Checker-invocation budget per shrink.
    pub shrink_budget: usize,
    /// Worker threads episodes fan out across (results fold in episode
    /// order, so the report is identical for every value).
    pub workers: usize,
    /// The episode space to draw from.
    pub space: EpisodeSpace,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            episodes: 64,
            base_seed: 42,
            shrink_budget: 200,
            workers: 1,
            space: search_space(),
        }
    }
}

/// One violation the search surfaced, with its shrink trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundViolation {
    /// Index of the episode in the sweep (its seed is `base_seed + index`).
    pub index: usize,
    /// The episode as originally drawn.
    pub original: Episode,
    /// The violation observed on the original episode.
    pub violation: Violation,
    /// The delta-debugged minimal reproducer.
    pub shrink: ShrinkResult,
}

/// Results of one chaos-search campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Episodes checked.
    pub episodes: usize,
    /// Base seed of the sweep.
    pub base_seed: u64,
    /// Violations found, in episode order, each with its minimal
    /// reproducer.
    pub violations: Vec<FoundViolation>,
}

/// Sweeps `config.episodes` seeded episodes through the invariant
/// battery, shrinking every violation to a minimal reproducer.
///
/// Episodes fan out across `config.workers` threads and fold in episode
/// order; each episode's check (and shrink) is a pure function of its
/// seed, so the report is bit-for-bit identical at every worker count —
/// invariant (f) of the battery, pinned by the integration tests.
#[must_use]
pub fn chaos_search(catalog: &Catalog, config: &SearchConfig) -> SearchReport {
    let indices: Vec<usize> = (0..config.episodes).collect();
    let per_episode = par::par_map_indexed(&indices, config.workers.max(1), |i, _| {
        let episode = Episode::draw(config.base_seed + i as u64, &config.space);
        let violation = check_episode(catalog, &episode)?;
        let shrunk = shrink(&episode, violation.clone(), config.shrink_budget, |e| {
            check_episode(catalog, e)
        });
        Some(FoundViolation {
            index: i,
            original: episode,
            violation,
            shrink: shrunk,
        })
    });
    SearchReport {
        episodes: config.episodes,
        base_seed: config.base_seed,
        violations: per_episode.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels_cover_the_preset_space() {
        for p in 0..PRESETS {
            assert_ne!(preset_label(p), "unknown");
        }
        assert_eq!(preset_label(PRESETS), "unknown");
    }

    #[test]
    fn the_search_space_matches_the_class_table() {
        let space = search_space();
        assert_eq!(space.job_classes, JOB_CLASSES.len());
        assert_eq!(space.presets, PRESETS);
        let catalog = Catalog::paper();
        assert_eq!(class_table(&catalog).unwrap().len(), JOB_CLASSES.len());
    }

    #[test]
    fn empty_episodes_are_vacuously_clean() {
        let catalog = Catalog::paper();
        let mut episode = Episode::draw(1, &search_space());
        episode.arrivals.clear();
        assert_eq!(check_episode(&catalog, &episode), None);
    }

    #[test]
    fn out_of_table_job_classes_are_a_run_error() {
        let catalog = Catalog::paper();
        let mut episode = Episode::draw(1, &search_space());
        episode.arrivals[0].job_class = JOB_CLASSES.len();
        let v = check_episode(&catalog, &episode).expect("must be flagged");
        assert_eq!(v.invariant, "run-error");
    }

    #[test]
    fn single_episode_checks_are_deterministic() {
        let catalog = Catalog::paper();
        let episode = Episode::draw(7, &search_space());
        assert_eq!(
            check_episode(&catalog, &episode),
            check_episode(&catalog, &episode)
        );
    }
}
