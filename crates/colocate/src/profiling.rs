//! Runtime profiling: feature extraction and model calibration (§4.1).
//!
//! For every incoming application the runtime performs, on the lightly
//! loaded coordinating node:
//!
//! 1. a **feature-extraction run** over ~100 MB of the input, during which
//!    the 22 Table 2 features and the average CPU usage are measured;
//! 2. two **calibration runs** over 5 % and 10 % of the *expected executor
//!    slice* (the input divided by the dynamic-allocation executor count),
//!    measuring the executor's memory footprint at two sizes.
//!
//! All three runs process real input items that count toward the job's
//! output (§2.3), so their cost shows up as latency before the job can be
//! dispatched, not as wasted work. The paper applies its 5 %/10 % fractions
//! to "the input items"; we apply them to the per-executor slice — the
//! quantity the memory function is actually evaluated on at dispatch time —
//! which keeps the overhead within the ~13 % the paper reports (Fig. 11)
//! for every input scale. This substitution is recorded in DESIGN.md.

use moe_core::features::FeatureVector;
use serde::{Deserialize, Serialize};
use simkit::SimRng;
use sparklite::dynalloc::{self, DynAllocConfig};
use workloads::catalog::Benchmark;
use workloads::signatures;

/// Knobs of the profiling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingConfig {
    /// Size of the feature-extraction sample (GB); the paper uses ~100 MB.
    pub feature_sample_gb: f64,
    /// Fixed time to set up counters and collect `vmstat`/`perf`/PAPI
    /// windows during feature extraction (s).
    pub feature_fixed_secs: f64,
    /// First calibration fraction of the expected executor slice.
    pub calib_fraction_1: f64,
    /// Second calibration fraction of the expected executor slice.
    pub calib_fraction_2: f64,
    /// Relative noise of footprint measurements during calibration.
    pub footprint_noise_sd: f64,
    /// Relative noise of feature observations.
    pub feature_noise_sd: f64,
    /// Latent per-benchmark signature jitter (see `workloads::signatures`).
    pub signature_jitter_sd: f64,
    /// Dynamic-allocation sizing used to estimate the executor slice.
    pub dynalloc: DynAllocConfig,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            feature_sample_gb: 0.1,
            feature_fixed_secs: 45.0,
            calib_fraction_1: 0.028,
            calib_fraction_2: 0.055,
            footprint_noise_sd: 0.005,
            feature_noise_sd: signatures::DEFAULT_NOISE_SD,
            signature_jitter_sd: signatures::DEFAULT_JITTER_SD,
            dynalloc: DynAllocConfig::default(),
        }
    }
}

/// Everything the runtime learns about an application before dispatch.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Catalog index of the profiled benchmark (used only by the Oracle).
    pub benchmark: usize,
    /// Observed (noisy) feature vector.
    pub features: FeatureVector,
    /// Measured average CPU utilisation during profiling.
    pub measured_cpu: f64,
    /// Two calibration points `(slice_gb, footprint_gb)`.
    pub calibration: [(f64, f64); 2],
    /// Total input size of the job (GB).
    pub input_gb: f64,
    /// Expected per-executor slice under dynamic allocation (GB).
    pub expected_slice_gb: f64,
}

/// Time and data cost of one profiling pass.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfilingCost {
    /// Seconds spent on feature extraction.
    pub feature_secs: f64,
    /// Seconds spent on the two calibration runs.
    pub calibration_secs: f64,
    /// GB of input processed during profiling (credited to the job).
    pub profiled_gb: f64,
}

impl ProfilingCost {
    /// Total profiling latency (s).
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.feature_secs + self.calibration_secs
    }
}

/// Profiles one application: runs feature extraction and the two
/// calibration runs, simulated against the benchmark's latent signature
/// and ground-truth memory curve.
///
/// `nodes` and `ram_gb` describe the cluster so the expected executor
/// slice can be estimated the same way dynamic allocation will size it.
#[must_use]
pub fn profile_app(
    bench: &Benchmark,
    input_gb: f64,
    nodes: usize,
    ram_gb: f64,
    config: &ProfilingConfig,
    rng: &mut SimRng,
) -> (AppProfile, ProfilingCost) {
    let spec = bench.app_spec(input_gb, config.footprint_noise_sd);
    let execs = dynalloc::executors_for(&spec, nodes, ram_gb, config.dynalloc);
    let slice = input_gb / execs as f64;

    // Feature extraction: ~100 MB run + a counter-collection window. The
    // window is capped at a fraction of the job's expected execution time:
    // a 30-second job is profiled in seconds, an hour-long job affords the
    // full PAPI/vmstat collection period.
    let feature_gb = config.feature_sample_gb.min(input_gb);
    let est_exec_secs = input_gb / (execs as f64 * bench.rate_gb_per_s());
    let window = config.feature_fixed_secs.min(0.15 * est_exec_secs).max(2.0);
    let feature_secs = window + feature_gb / bench.rate_gb_per_s();
    let features = signatures::observe(
        bench,
        rng,
        config.signature_jitter_sd,
        config.feature_noise_sd,
    );
    // CPU usage is measured with small relative error during the run.
    let measured_cpu = (bench.cpu_util() * rng.relative_noise(0.03)).clamp(0.01, 1.0);

    // Calibration runs on 5 % and 10 % of the expected slice.
    let x1 = (config.calib_fraction_1 * slice).min(input_gb);
    let x2 = (config.calib_fraction_2 * slice).min(input_gb);
    let y1 = bench.true_footprint_gb(x1) * rng.relative_noise(config.footprint_noise_sd);
    let y2 = bench.true_footprint_gb(x2) * rng.relative_noise(config.footprint_noise_sd);
    let calibration_secs = (x1 + x2) / bench.rate_gb_per_s();

    let profile = AppProfile {
        benchmark: bench.index(),
        features,
        measured_cpu,
        calibration: [(x1, y1), (x2, y2)],
        input_gb,
        expected_slice_gb: slice,
    };
    let cost = ProfilingCost {
        feature_secs,
        calibration_secs,
        profiled_gb: (feature_gb + x1 + x2).min(input_gb),
    };
    (profile, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Catalog;

    /// `(nodes, ram_gb)` of the paper testbed — profiling in these tests
    /// always runs against the paper cluster, via its spec rather than
    /// bare literals.
    fn testbed() -> (usize, f64) {
        let spec = sparklite::ClusterSpec::paper_cluster();
        (spec.nodes, spec.node.ram_gb)
    }

    #[test]
    fn profiling_measures_plausible_values() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("HB.PageRank").unwrap();
        let mut rng = SimRng::seed_from(1);
        let (nodes, ram) = testbed();
        let (profile, cost) = profile_app(
            bench,
            30.0,
            nodes,
            ram,
            &ProfilingConfig::default(),
            &mut rng,
        );
        assert_eq!(profile.input_gb, 30.0);
        assert!(profile.expected_slice_gb > 0.0);
        // Calibration points in increasing order, footprints near truth.
        let [(x1, y1), (x2, y2)] = profile.calibration;
        assert!(x1 < x2);
        let t1 = bench.true_footprint_gb(x1);
        assert!((y1 - t1).abs() / t1 < 0.05, "y1 {y1} vs {t1}");
        assert!(y2 > 0.0);
        // Measured CPU is close to the benchmark's true demand.
        assert!((profile.measured_cpu - bench.cpu_util()).abs() < 0.1);
        assert!(cost.total_secs() > 0.0);
        assert!(cost.profiled_gb <= 30.0);
    }

    #[test]
    fn profiling_cost_scales_with_slice_not_input() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("HB.Sort").unwrap();
        let mut rng = SimRng::seed_from(2);
        let cfg = ProfilingConfig::default();
        let (nodes, ram) = testbed();
        let (_, small) = profile_app(bench, 30.0, nodes, ram, &cfg, &mut rng);
        let (_, large) = profile_app(bench, 1000.0, nodes, ram, &cfg, &mut rng);
        // A 33x larger input does not cost 33x more profiling: the slice
        // is bounded by the cluster spreading work across nodes.
        assert!(large.calibration_secs < small.calibration_secs * 33.0);
    }

    #[test]
    fn tiny_inputs_are_not_over_sampled() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("BDB.Grep").unwrap();
        let mut rng = SimRng::seed_from(3);
        let (nodes, ram) = testbed();
        let (profile, cost) = profile_app(
            bench,
            0.3,
            nodes,
            ram,
            &ProfilingConfig::default(),
            &mut rng,
        );
        assert!(cost.profiled_gb <= 0.3);
        assert!(profile.calibration[1].0 <= 0.3);
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("SB.Hive").unwrap();
        let cfg = ProfilingConfig::default();
        let (nodes, ram) = testbed();
        let (p1, _) = profile_app(bench, 30.0, nodes, ram, &cfg, &mut SimRng::seed_from(9));
        let (p2, _) = profile_app(bench, 30.0, nodes, ram, &cfg, &mut SimRng::seed_from(9));
        assert_eq!(p1.features, p2.features);
        assert_eq!(p1.calibration, p2.calibration);
    }
}
