//! The job dispatcher and the comparative scheduling policies (§4.3, §5.4).
//!
//! All policies share one event loop over the sparklite engine:
//!
//! 1. **placement** — the policy spawns executors given the resource
//!    monitor's view (free memory per node, CPU load per node) and, for
//!    predictive policies, each application's calibrated memory model;
//! 2. **OOM resolution** — if actual footprints exhaust RAM + swap, the
//!    youngest executor is killed, its slice re-queued, and the owning
//!    application's reservation margin is raised (the paper re-runs OOM'd
//!    executors in isolation, §2.3);
//! 3. **progress** — the engine advances to the next executor completion
//!    or profiling-ready instant, and finished slices are credited.
//!
//! The policies:
//!
//! * [`PolicyKind::Isolated`] — the baseline: one application at a time,
//!   exclusively owning every allocated node's memory;
//! * [`PolicyKind::Pairwise`] — co-locates at most two executors per host,
//!   giving the second all observed-free memory (§5.4);
//! * [`PolicyKind::OnlineSearch`] — no model; searches for the right input
//!   size at runtime by descent, paying per-application search latency on
//!   the coordinating node plus steady-state trial overhead (§6.5);
//! * the predictive policies ([`PolicyKind::Moe`], [`PolicyKind::Quasar`],
//!   [`PolicyKind::Oracle`], [`PolicyKind::UnifiedLinear`] /
//!   [`PolicyKind::UnifiedExponential`] / [`PolicyKind::UnifiedLog`] /
//!   [`PolicyKind::UnifiedAnn`]) — §4.3's dispatcher driven by the
//!   respective memory predictor.

use crate::predictors::{
    AnnPredictor, MemoryPredictor, MoePolicy, Oracle, Prediction, QuasarPredictor, UnifiedFamily,
};
use crate::profiling::{profile_app, ProfilingConfig, ProfilingCost};
use crate::training::{TrainedSystem, TrainingConfig};
use crate::ColocateError;
use mlkit::regression::CurveFamily;
use simkit::faults::{FaultEvent, FaultKind, FaultPlan};
use simkit::SimRng;
use sparklite::app::AppId;
use sparklite::cluster::ClusterSpec;
use sparklite::dynalloc::{self, DynAllocConfig};
use sparklite::engine::ClusterEngine;
use sparklite::perf::{InterferenceModel, MemoryPressure};
use sparklite::NodeId;
use std::collections::VecDeque;
use workloads::catalog::Catalog;
use workloads::mixes::MixEntry;

/// The scheduling policies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// One application at a time with all memory (the §6 baseline).
    Isolated,
    /// At most two co-located executors per host (§5.4).
    Pairwise,
    /// Runtime descent search for the input size (§6.5).
    OnlineSearch,
    /// Quasar-style classification against historical workloads (§5.4).
    Quasar,
    /// The paper's mixture-of-experts approach.
    Moe,
    /// Unified single-family baseline: linear (Fig. 9).
    UnifiedLinear,
    /// Unified single-family baseline: saturating exponential (Fig. 9).
    UnifiedExponential,
    /// Unified single-family baseline: Napierian logarithmic (Fig. 9).
    UnifiedLog,
    /// Unified 3-layer neural network (Fig. 9).
    UnifiedAnn,
    /// The ideal memory predictor (§5.4).
    Oracle,
}

impl PolicyKind {
    /// Display name used in the paper's figures.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            PolicyKind::Isolated => "Isolated",
            PolicyKind::Pairwise => "Pairwise",
            PolicyKind::OnlineSearch => "Online Search",
            PolicyKind::Quasar => "Quasar",
            PolicyKind::Moe => "Our Approach",
            PolicyKind::UnifiedLinear => "Linear Regression",
            PolicyKind::UnifiedExponential => "Exponential Regression",
            PolicyKind::UnifiedLog => "Napierian Log. Regression",
            PolicyKind::UnifiedAnn => "ANN",
            PolicyKind::Oracle => "Oracle",
        }
    }

    /// Whether this policy schedules with a memory predictor.
    #[must_use]
    pub fn is_predictive(self) -> bool {
        !matches!(self, PolicyKind::Isolated | PolicyKind::Pairwise)
    }
}

/// Scheduler configuration shared by all policies.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Node-level interference model.
    pub interference: InterferenceModel,
    /// Profiling pipeline settings.
    pub profiling: ProfilingConfig,
    /// Dynamic-allocation sizing.
    pub dynalloc: DynAllocConfig,
    /// Hard cap on executors per node (thread re-balancing limit, §4.3).
    pub max_execs_per_node: usize,
    /// Aggregate CPU demand allowed on one node (the paper refuses
    /// co-locations that push the sum over 100 %).
    pub cpu_cap: f64,
    /// Reservation margin for normal predictions (1.0 = reserve exactly
    /// the predicted footprint).
    pub reserve_margin: f64,
    /// Margin for low-confidence predictions and post-OOM re-runs.
    pub conservative_margin: f64,
    /// Smallest slice worth spawning an executor for (GB).
    pub min_slice_gb: f64,
    /// RDD partition granularity (GB): data slices handed to executors
    /// are whole partitions, so budget-derived slices snap down to this
    /// grid (HDFS block size by default).
    pub partition_gb: f64,
    /// §4.3's dynamic adjustment: when no new executor can be placed for
    /// an application, top up its running executors with more data items
    /// instead (saves the executor-startup cost).
    pub dynamic_adjustment: bool,
    /// Resource-monitor daemon settings (§4.2): placement consults the
    /// windowed CPU view in addition to the instantaneous one.
    pub monitor: sparklite::monitor::MonitorConfig,
    /// Fixed executor startup latency (JVM + container allocation), s.
    /// Makes slice-chopping expensive: a predictor that over-reserves
    /// memory forces smaller slices and pays this cost more often.
    pub executor_startup_secs: f64,
    /// Online search: fraction of the input processed per descent trial,
    /// serialised on the coordinating node (§6.5's scalability problem).
    pub search_serial_frac: f64,
    /// Online search: steady-state rate penalty from repeated trial
    /// adjustments.
    pub search_rate_penalty: f64,
    /// Self-healing behaviour under injected faults. Disabled by default,
    /// in which case the dispatcher behaves exactly as it always has.
    pub resilience: ResilienceConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cluster: ClusterSpec::paper_cluster(),
            interference: InterferenceModel::default(),
            profiling: ProfilingConfig::default(),
            dynalloc: DynAllocConfig::default(),
            max_execs_per_node: 8,
            cpu_cap: 1.0,
            // §6.9 suggests slightly over-provisioning (~10 %) to tolerate
            // prediction error; 5 % keeps measurement noise from tipping a
            // tightly packed node into paging.
            reserve_margin: 1.05,
            conservative_margin: 1.5,
            min_slice_gb: 0.02,
            partition_gb: workloads::inputs::DEFAULT_PARTITION_GB,
            dynamic_adjustment: true,
            monitor: sparklite::monitor::MonitorConfig::default(),
            executor_startup_secs: 25.0,
            search_serial_frac: 0.008,
            search_rate_penalty: 0.18,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Self-healing knobs layered on the dispatcher. Fault *injection* (via
/// [`run_schedule_with_faults`]) affects every policy equally; only
/// schedules with `enabled == true` get the recovery machinery: retry
/// backoff after executor losses, node quarantine after repeated OOM
/// kills, an online safety-margin controller, and graceful degradation
/// to an isolated reservation once the retry budget is exhausted.
///
/// The default is fully disabled so the fault-free path is byte-identical
/// to a scheduler without this module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Master switch; `false` disables every recovery mechanism.
    pub enabled: bool,
    /// Executor-loss retries an application may consume before the
    /// scheduler stops trusting its prediction and falls back to an
    /// isolated full-node reservation.
    pub max_retries: usize,
    /// Backoff before the first retry, seconds (doubles per failure).
    pub backoff_base_secs: f64,
    /// Ceiling on the exponential backoff, seconds.
    pub backoff_cap_secs: f64,
    /// Relative jitter applied to each backoff (± this fraction), drawn
    /// from a dedicated RNG fork so it never perturbs the main stream.
    pub backoff_jitter: f64,
    /// OOM kills within one monitor window that quarantine a node.
    pub quarantine_threshold: usize,
    /// How long placement avoids a quarantined node, seconds.
    pub quarantine_secs: f64,
    /// EWMA smoothing factor for the observed-vs-booked footprint ratio
    /// feeding the safety-margin controller.
    pub margin_alpha: f64,
    /// Upper clamp on the controller's margin multiplier.
    pub margin_cap: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: false,
            max_retries: 3,
            backoff_base_secs: 10.0,
            backoff_cap_secs: 120.0,
            backoff_jitter: 0.25,
            quarantine_threshold: 3,
            quarantine_secs: 240.0,
            margin_alpha: 0.3,
            margin_cap: 2.0,
        }
    }
}

impl ResilienceConfig {
    /// The self-healing configuration used by the chaos evaluation:
    /// defaults with the master switch on.
    #[must_use]
    pub fn self_healing() -> Self {
        ResilienceConfig {
            enabled: true,
            ..ResilienceConfig::default()
        }
    }
}

/// What the fault layer did to one schedule, and how the scheduler coped.
/// All zeros on a fault-free run with resilience disabled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Node crashes delivered.
    pub node_crashes: usize,
    /// Executor crash-restarts delivered.
    pub executor_crashes: usize,
    /// Monitor dropouts delivered.
    pub monitor_dropouts: usize,
    /// Prediction-noise perturbations delivered.
    pub prediction_noise: usize,
    /// Input data re-queued by crashes, GB (work conservation: every GB
    /// here went back to the owning application's unassigned pool).
    pub slices_requeued_gb: f64,
    /// Retries scheduled by the self-healing layer.
    pub retries: usize,
    /// Node quarantines triggered by repeated OOM kills.
    pub quarantines: usize,
    /// Applications that exhausted their retry budget and degraded to an
    /// isolated full-node reservation.
    pub isolated_fallbacks: usize,
    /// Spot-preemption warnings delivered (the node is revoked after its
    /// warning lead time elapses).
    pub spot_preemptions: usize,
    /// Spot warnings the self-healing layer answered by draining: the node
    /// stops taking new work immediately instead of crashing cold at
    /// revocation.
    pub drains: usize,
}

/// Outcome for one application in a schedule.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Catalog index of the benchmark.
    pub benchmark: usize,
    /// Input size (GB).
    pub input_gb: f64,
    /// When the application became dispatchable (profiling done), s.
    pub ready_at: f64,
    /// Completion time from submission (turnaround), s.
    pub finished_at: f64,
    /// Profiling cost breakdown.
    pub profiling: ProfilingCost,
}

/// Outcome of one scheduled mix.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Which policy produced this schedule.
    pub policy: &'static str,
    /// Per-application outcomes, in submission order.
    pub per_app: Vec<AppOutcome>,
    /// Wall-clock time until the last application finished, s.
    pub makespan_secs: f64,
    /// Number of OOM kills that occurred.
    pub oom_kills: usize,
    /// Utilisation trace: `(time, per-node CPU load)` samples at every
    /// scheduling event.
    pub trace: Vec<(f64, Vec<f64>)>,
    /// Delivered faults and the self-healing layer's responses.
    pub faults: FaultStats,
}

pub(crate) struct AppRt {
    pub(crate) engine_id: AppId,
    pub(crate) benchmark: usize,
    pub(crate) ready_at: f64,
    pub(crate) prediction: Option<Prediction>,
    pub(crate) measured_cpu: f64,
    pub(crate) margin: f64,
    pub(crate) finished_at: Option<f64>,
    pub(crate) profiling: ProfilingCost,
    pub(crate) input_gb: f64,
    /// Multiplicative perturbation of the predicted footprint (injected
    /// prediction-noise faults land here; 1.0 = faithful predictions).
    pub(crate) pred_scale: f64,
    /// EWMA of the observed/booked footprint ratio for the online
    /// safety-margin controller (resilience only).
    pub(crate) err_ewma: f64,
    /// Executor losses (crashes and OOM kills) charged to this app.
    pub(crate) failures: usize,
    /// Earliest time the self-healing layer allows a re-placement.
    pub(crate) retry_at: f64,
    /// Retry budget exhausted: only isolated full-node placements remain.
    pub(crate) isolated_fallback: bool,
}

/// Mutable runtime state of the self-healing layer for one schedule.
pub(crate) struct ResilState {
    /// Backoff-jitter RNG, forked only when resilience is enabled so the
    /// disabled path draws nothing extra from the main stream.
    pub(crate) jitter: Option<SimRng>,
    /// Per-node quarantine deadlines (0 = not quarantined); inert zeros
    /// when resilience is disabled.
    pub(crate) quarantined_until: Vec<f64>,
    /// Recent OOM-kill timestamps per node (pruned to the monitor window).
    pub(crate) oom_times: Vec<VecDeque<f64>>,
    pub(crate) stats: FaultStats,
}

/// The margin the dispatcher books for `app`: its per-app margin (raised
/// on OOM re-runs) times the global reserve margin, times the online
/// controller's clamped error estimate when resilience is enabled. With
/// resilience disabled the controller multiplier is exactly 1.0 and the
/// product is bit-identical to the historical `margin * reserve_margin`.
pub(crate) fn effective_margin(app: &AppRt, config: &SchedulerConfig) -> f64 {
    let controller = if config.resilience.enabled {
        app.err_ewma.clamp(1.0, config.resilience.margin_cap)
    } else {
        1.0
    };
    app.margin * config.reserve_margin * controller
}

/// Feeds one executor's observed footprint into the app's error EWMA.
fn observe_footprint_error(app: &mut AppRt, actual_gb: f64, reserved_gb: f64, alpha: f64) {
    if reserved_gb <= 0.0 {
        return;
    }
    let ratio = (actual_gb / reserved_gb).clamp(0.0, 10.0);
    app.err_ewma = (1.0 - alpha) * app.err_ewma + alpha * ratio;
}

/// Charges one executor loss to `app`: exponential backoff with jitter,
/// and — only when the loss was the application's own doing (`may_demote`,
/// i.e. an OOM kill rather than an injected crash) — degradation to
/// isolated mode once the retry budget runs out. Environment failures
/// keep retrying at the capped backoff forever: serialising an
/// application because its *nodes* kept dying would punish the victim.
pub(crate) fn schedule_retry(
    app: &mut AppRt,
    t: f64,
    r: &ResilienceConfig,
    resil: &mut ResilState,
    may_demote: bool,
) {
    app.failures += 1;
    if may_demote && app.failures > r.max_retries {
        if !app.isolated_fallback {
            app.isolated_fallback = true;
            resil.stats.isolated_fallbacks += 1;
        }
        return;
    }
    let exponent = app.failures.min(r.max_retries.max(1)) as i32 - 1;
    let backoff = (r.backoff_base_secs * 2f64.powi(exponent)).min(r.backoff_cap_secs);
    let jitter = match resil.jitter.as_mut() {
        Some(rng) => 1.0 + r.backoff_jitter * rng.uniform(-1.0, 1.0),
        None => 1.0,
    };
    app.retry_at = app.retry_at.max(t + (backoff * jitter).max(0.0));
    resil.stats.retries += 1;
}

/// Runs one mix under one policy. `system` supplies the offline-trained
/// models for the predictive policies (ignored by Isolated/Pairwise; the
/// Oracle needs only the catalog).
///
/// # Errors
///
/// Returns configuration errors for empty mixes, and propagates substrate
/// or predictor failures (which indicate bugs rather than expected
/// conditions).
pub fn run_schedule(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[MixEntry],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<ScheduleOutcome, ColocateError> {
    let jobs: Vec<(usize, f64)> = mix.iter().map(|e| (e.benchmark, e.size.gb())).collect();
    run_schedule_custom(policy, catalog, &jobs, system, config, seed)
}

/// Like [`run_schedule`], but with explicit `(benchmark index, input GB)`
/// jobs — used by experiments whose input sizes fall outside the three
/// Table 3 classes (e.g. the ~280 GB interference runs of Figs. 14/15).
///
/// # Errors
///
/// Same conditions as [`run_schedule`].
pub fn run_schedule_custom(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[(usize, f64)],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<ScheduleOutcome, ColocateError> {
    run_schedule_inner(policy, catalog, mix, system, config, seed, None)
}

/// Like [`run_schedule_custom`], but replaying a pre-drawn [`FaultPlan`]
/// against the schedule: node crashes take a node (and every executor on
/// it) offline for their outage, executor crashes kill the youngest
/// executor on a node, monitor dropouts silence a node's resource-monitor
/// daemon, and prediction-noise events perturb one application's booked
/// footprints. Crashed work is credited back to the owning application
/// (work conservation), and an empty plan reproduces
/// [`run_schedule_custom`] bit for bit.
///
/// Recovery behaviour is controlled by `config.resilience`: with the
/// default (disabled) config the dispatcher just re-places lost work
/// through its normal placement path; with
/// [`ResilienceConfig::self_healing`] it adds retry backoff, node
/// quarantine, an online safety-margin controller and isolated fallback.
///
/// # Errors
///
/// Same conditions as [`run_schedule`].
pub fn run_schedule_with_faults(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[(usize, f64)],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
    plan: &FaultPlan,
) -> Result<ScheduleOutcome, ColocateError> {
    run_schedule_inner(policy, catalog, mix, system, config, seed, Some(plan))
}

fn run_schedule_inner(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[(usize, f64)],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
    plan: Option<&FaultPlan>,
) -> Result<ScheduleOutcome, ColocateError> {
    if mix.is_empty() {
        return Err(ColocateError::Config("empty application mix".into()));
    }
    let mut rng = SimRng::seed_from(seed);
    let predictor = build_predictor(policy, catalog, system, &mut rng)?;

    let mut engine = ClusterEngine::with_seed(
        config.cluster.clone(),
        config.interference,
        rng.fork().next_u64_seed(),
    );
    engine.set_executor_startup_secs(config.executor_startup_secs);

    // Submit every application and run the profiling pipeline.
    let mut apps: Vec<AppRt> = Vec::with_capacity(mix.len());
    // Profiling happens off the computing cluster, "grouping different
    // application tasks to run on a single host" (§4.1) — modeled as a
    // small pool of concurrent profiling slots on the coordinating side.
    let mut profile_slots = [0.0f64; 6];
    let mut search_queue_end = 0.0; // OnlineSearch serialises on the driver.
    for &(bench_idx, input) in mix {
        let bench = &catalog.all()[bench_idx];
        let rate_penalty = if policy == PolicyKind::OnlineSearch {
            1.0 / (1.0 + config.search_rate_penalty)
        } else {
            1.0
        };
        let mut spec = bench.app_spec(input, config.profiling.footprint_noise_sd);
        spec.rate_gb_per_s *= rate_penalty;
        let engine_id = engine.submit(spec);

        let (ready_at, prediction, measured_cpu, profiling) = match predictor.as_ref() {
            Some(p) => {
                let (profile, mut cost) = profile_app(
                    bench,
                    input,
                    config.cluster.nodes,
                    config.cluster.node.ram_gb,
                    &config.profiling,
                    &mut rng,
                );
                let prediction = p.predict(&profile)?;
                let mut ready = if p.needs_profiling() {
                    engine.credit_profiled(engine_id, cost.profiled_gb);
                    // Take the earliest-free profiling slot. Slot times
                    // are sums of positive costs, so `total_cmp` orders
                    // them exactly as `partial_cmp` would.
                    let slot = profile_slots
                        .iter_mut()
                        .min_by(|a, b| a.total_cmp(b))
                        .ok_or_else(|| {
                            ColocateError::Config("profiling slot pool is empty".into())
                        })?;
                    *slot += cost.total_secs();
                    *slot
                } else {
                    cost = ProfilingCost::default();
                    0.0
                };
                if policy == PolicyKind::OnlineSearch {
                    // Descent search serialised on the coordinating node.
                    let search = config.search_serial_frac * input / bench.rate_gb_per_s();
                    search_queue_end += search;
                    ready = ready.max(search_queue_end);
                }
                let cpu = prediction.cpu_estimate.unwrap_or(profile.measured_cpu);
                (ready, Some(prediction), cpu, cost)
            }
            None => (0.0, None, bench.cpu_util(), ProfilingCost::default()),
        };

        apps.push(AppRt {
            engine_id,
            benchmark: bench_idx,
            ready_at,
            prediction,
            measured_cpu,
            margin: 1.0,
            finished_at: None,
            profiling,
            input_gb: input,
            pred_scale: 1.0,
            err_ewma: 1.0,
            failures: 0,
            retry_at: 0.0,
            isolated_fallback: false,
        });
    }
    for app in &mut apps {
        if let Some(pred) = &app.prediction {
            if pred.low_confidence {
                app.margin = config.conservative_margin;
            }
        }
    }

    // Main event loop.
    let mut monitor =
        sparklite::monitor::ResourceMonitor::new(config.cluster.nodes, config.monitor);
    let mut t = 0.0f64;
    let mut oom_kills = 0usize;
    let mut trace: Vec<(f64, Vec<f64>)> = Vec::new();
    let node_ids = engine.cluster().node_ids();
    // OOM-candidate scratch: only nodes whose final footprints overflow
    // RAM can ever report OutOfMemory (see ClusterEngine::hot_nodes_into),
    // so the resolver scans this short list instead of the whole cluster.
    let mut hot_nodes: Vec<NodeId> = Vec::new();
    // Placement scratch, hoisted out of the per-event placement calls.
    let mut place_scratch = PlaceScratch::new();
    let mut guard = 0usize;
    let guard_limit = 200_000usize;

    // Fault replay and self-healing state. The jitter RNG is forked only
    // when resilience is enabled, and only after the app-setup loop, so
    // the fault-free disabled path draws exactly what it always drew.
    let mut cursor = plan.map(FaultPlan::cursor);
    let mut restore_at = vec![0.0f64; node_ids.len()];
    // Pending spot revocations: the warning sets a deadline here, and the
    // node is failed when it elapses. All-zero (inert) without spot faults.
    let mut revoke_at = vec![0.0f64; node_ids.len()];
    let mut revoke_outage = vec![0.0f64; node_ids.len()];
    let mut resil = ResilState {
        jitter: config.resilience.enabled.then(|| rng.fork()),
        quarantined_until: vec![0.0; node_ids.len()],
        oom_times: vec![VecDeque::new(); node_ids.len()],
        stats: FaultStats::default(),
    };

    loop {
        guard += 1;
        if guard.is_multiple_of(20_000) && std::env::var_os("SPARK_MOE_DEBUG").is_some() {
            let live = engine.live_executors();
            let unfinished = apps.iter().filter(|a| a.finished_at.is_none()).count();
            eprintln!(
                "[debug] iter {guard}: t={t:.0}s live={live} unfinished={unfinished} ooms={oom_kills}"
            );
        }
        if guard > guard_limit {
            return Err(ColocateError::Config(
                "scheduler event loop exceeded its iteration guard".into(),
            ));
        }

        // Deliver every fault due by now before placement sees the
        // cluster, then bring nodes whose outage elapsed back online.
        if let Some(cursor) = cursor.as_mut() {
            while let Some(event) = cursor.pop_due(t) {
                apply_fault(
                    event,
                    &mut engine,
                    &mut monitor,
                    &mut apps,
                    config,
                    t,
                    &mut restore_at,
                    &mut revoke_at,
                    &mut revoke_outage,
                    &mut resil,
                )?;
            }
        }
        process_revocations(
            &mut engine,
            &mut apps,
            config,
            t,
            &node_ids,
            &mut revoke_at,
            &mut revoke_outage,
            &mut restore_at,
            &mut resil,
        )?;
        for (i, due) in restore_at.iter_mut().enumerate() {
            if *due > 0.0 && *due <= t {
                engine.restore_node(node_ids[i])?;
                *due = 0.0;
            }
        }

        // Mark finished apps before placement so policies see fresh state
        // (the isolated policy in particular must move on to the next app
        // in the same instant its predecessor's last executor completes).
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }

        monitor.observe(&engine, t);
        place(
            policy,
            &mut engine,
            &mut apps,
            config,
            t,
            catalog,
            &monitor,
            &resil,
            &node_ids,
            false,
            &mut place_scratch,
        )?;
        engine.hot_nodes_into(&mut hot_nodes);
        oom_kills += resolve_ooms(&mut engine, &mut apps, config, t, &mut resil, &hot_nodes)?;

        trace.push((
            t,
            node_ids.iter().map(|&n| engine.node_cpu_load(n)).collect(),
        ));

        // Apps may also finish via profiling credit alone.
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }
        if apps.iter().all(|a| a.finished_at.is_some()) {
            break;
        }

        // Next externally scheduled instant: an application becoming
        // ready (profiling done or retry backoff elapsed), a fault
        // striking, or a crashed node's outage ending. With no plan and
        // resilience disabled this reduces to the classic next-ready time.
        let next_ready = apps
            .iter()
            .filter(|a| a.finished_at.is_none())
            .map(|a| a.ready_at.max(a.retry_at))
            .filter(|&r| r > t)
            .fold(f64::INFINITY, f64::min);
        let next_fault = cursor
            .as_ref()
            .and_then(simkit::faults::FaultCursor::next_at)
            .unwrap_or(f64::INFINITY);
        let next_restore = restore_at
            .iter()
            .copied()
            .filter(|&r| r > t)
            .fold(f64::INFINITY, f64::min);
        let next_revoke = revoke_at
            .iter()
            .copied()
            .filter(|&r| r > t)
            .fold(f64::INFINITY, f64::min);
        let next_event = next_ready
            .min(next_fault)
            .min(next_restore)
            .min(next_revoke);
        let next_done = engine.next_completion();

        match (next_done, next_event.is_finite()) {
            (Some((dt, _)), true) if t + dt > next_event => {
                engine.advance(next_event - t);
                t = next_event;
            }
            (Some((dt, first)), _) => {
                engine.advance(dt);
                t += dt;
                note_completion(&engine, &mut apps, config, first);
                engine.complete_executor(first)?;
                // Complete any executors that finished at the same instant.
                while let Some((dt2, id2)) = engine.next_completion() {
                    if dt2 > 1e-9 {
                        break;
                    }
                    engine.advance(dt2);
                    t += dt2;
                    note_completion(&engine, &mut apps, config, id2);
                    engine.complete_executor(id2)?;
                }
            }
            (None, true) => {
                t = next_event;
            }
            (None, false) => {
                // No executors, nothing becoming ready: the policy's model
                // refused every node (a badly mis-fitted unified model can
                // predict footprints beyond any budget). A real dispatcher
                // still makes progress — force a minimum-slice placement
                // on the emptiest node, capped at the free memory; if it
                // pages, that is the baseline's deserved penalty.
                if !force_place(&mut engine, &mut apps, config, t)? {
                    return Err(ColocateError::Config(format!(
                        "schedule stuck at t={t:.1}s with unfinished applications"
                    )));
                }
            }
        }
    }

    // Every app must have finished by now (the event loop only exits once
    // the last completion fires); surface a typed error rather than
    // panicking if that invariant is ever broken.
    let mut per_app = Vec::with_capacity(apps.len());
    let mut makespan = 0.0f64;
    for a in &apps {
        let finished_at = a.finished_at.ok_or_else(|| {
            ColocateError::Config("schedule ended with an unfinished application".into())
        })?;
        makespan = makespan.max(finished_at);
        per_app.push(AppOutcome {
            benchmark: a.benchmark,
            input_gb: a.input_gb,
            ready_at: a.ready_at,
            finished_at,
            profiling: a.profiling,
        });
    }
    Ok(ScheduleOutcome {
        policy: policy.display_name(),
        per_app,
        makespan_secs: makespan,
        oom_kills,
        trace,
        faults: resil.stats,
    })
}

/// Completion hook for the self-healing layer: a successfully finished
/// executor reports its observed footprint to the margin controller,
/// clears the owner's crash streak and lifts any isolated-fallback
/// demotion — §2.3's re-run-in-isolation is one probation wave, not a
/// life sentence, so a clean finish earns back co-location (with the
/// raised margin and error EWMA carried along). No-op when resilience
/// is disabled.
pub(crate) fn note_completion(
    engine: &ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    id: sparklite::ExecutorId,
) {
    if !config.resilience.enabled {
        return;
    }
    let Ok(exec) = engine.executor(id) else {
        return;
    };
    let (owner, actual, reserved) = (exec.app(), exec.actual_gb(), exec.reserved_gb());
    if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
        observe_footprint_error(app, actual, reserved, config.resilience.margin_alpha);
        app.failures = 0;
        app.isolated_fallback = false;
    }
}

/// Applies one fault event to the running schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_fault(
    event: &FaultEvent,
    engine: &mut ClusterEngine,
    monitor: &mut sparklite::monitor::ResourceMonitor,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    restore_at: &mut [f64],
    revoke_at: &mut [f64],
    revoke_outage: &mut [f64],
    resil: &mut ResilState,
) -> Result<(), ColocateError> {
    match event.kind {
        FaultKind::NodeCrash { node, outage_secs } => {
            let Some(id) = engine.cluster().node_ids_iter().nth(node) else {
                return Ok(());
            };
            let lost = engine.fail_node(id)?;
            resil.stats.node_crashes += 1;
            restore_at[node] = restore_at[node].max(t + outage_secs);
            let mut owners: Vec<AppId> = Vec::new();
            for (owner, slice) in lost {
                resil.stats.slices_requeued_gb += slice;
                if !owners.contains(&owner) {
                    owners.push(owner);
                }
            }
            if config.resilience.enabled {
                for owner in owners {
                    if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
                        schedule_retry(app, t, &config.resilience, resil, false);
                    }
                }
            }
        }
        FaultKind::ExecutorCrash { node } => {
            let Some(id) = engine.cluster().node_ids_iter().nth(node) else {
                return Ok(());
            };
            // The youngest executor (largest id, i.e. the most recently
            // spawned container) is the one that dies — the same victim
            // order the OOM killer uses, so crash and OOM recovery share
            // one re-queue path.
            let Some(victim) = engine.node_executors_iter(id).max() else {
                return Ok(());
            };
            let owner = engine.executor(victim)?.app();
            let slice = engine.kill_executor(victim)?;
            resil.stats.executor_crashes += 1;
            resil.stats.slices_requeued_gb += slice;
            if config.resilience.enabled {
                if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
                    schedule_retry(app, t, &config.resilience, resil, false);
                }
            }
        }
        FaultKind::MonitorDropout {
            node,
            duration_secs,
        } => {
            let Some(id) = engine.cluster().node_ids_iter().nth(node) else {
                return Ok(());
            };
            monitor.drop_reports(id, t + duration_secs);
            resil.stats.monitor_dropouts += 1;
        }
        FaultKind::PredictionNoise { app, factor } => {
            if let Some(rt) = apps.get_mut(app) {
                rt.pred_scale *= factor;
                resil.stats.prediction_noise += 1;
            }
        }
        FaultKind::SpotPreemption {
            node,
            warning_secs,
            outage_secs,
        } => {
            if node >= revoke_at.len() {
                return Ok(());
            }
            resil.stats.spot_preemptions += 1;
            let revoke = t + warning_secs.max(0.0);
            // Earliest pending revocation wins; overlapping notices extend
            // the outage rather than stacking extra crashes.
            if revoke_at[node] == 0.0 || revoke < revoke_at[node] {
                revoke_at[node] = revoke;
            }
            revoke_outage[node] = revoke_outage[node].max(outage_secs);
            if config.resilience.enabled {
                // Drain: stop placing onto the doomed node for the whole
                // warning window (the quarantine machinery already keeps
                // placement away; the node's offline spell covers the rest).
                resil.quarantined_until[node] = resil.quarantined_until[node].max(revoke);
                resil.stats.drains += 1;
            }
        }
    }
    Ok(())
}

/// Fails every node whose spot-revocation deadline has elapsed: running
/// executors are lost (work conservation credits their slices back to the
/// owners), the node goes offline for the drawn outage, and — with
/// resilience enabled — the victims get backed-off retries that never
/// demote them (losing a node is the environment's fault, not theirs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_revocations(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    node_ids: &[NodeId],
    revoke_at: &mut [f64],
    revoke_outage: &mut [f64],
    restore_at: &mut [f64],
    resil: &mut ResilState,
) -> Result<(), ColocateError> {
    for i in 0..revoke_at.len() {
        if revoke_at[i] <= 0.0 || revoke_at[i] > t {
            continue;
        }
        if engine.node_online(node_ids[i]) {
            let lost = engine.fail_node(node_ids[i])?;
            let mut owners: Vec<AppId> = Vec::new();
            for (owner, slice) in lost {
                resil.stats.slices_requeued_gb += slice;
                if !owners.contains(&owner) {
                    owners.push(owner);
                }
            }
            if config.resilience.enabled {
                for owner in owners {
                    if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
                        schedule_retry(app, t, &config.resilience, resil, false);
                    }
                }
            }
        }
        restore_at[i] = restore_at[i].max(t + revoke_outage[i]);
        revoke_at[i] = 0.0;
        revoke_outage[i] = 0.0;
    }
    Ok(())
}

pub(crate) fn build_predictor(
    policy: PolicyKind,
    catalog: &Catalog,
    system: Option<&TrainedSystem>,
    rng: &mut SimRng,
) -> Result<Option<Box<dyn MemoryPredictor>>, ColocateError> {
    let need_system = || {
        system.ok_or_else(|| {
            ColocateError::Config(format!("{policy:?} requires an offline-trained system"))
        })
    };
    Ok(match policy {
        PolicyKind::Isolated | PolicyKind::Pairwise => None,
        PolicyKind::Oracle | PolicyKind::OnlineSearch => Some(Box::new(Oracle::new(catalog))),
        PolicyKind::Moe => Some(Box::new(MoePolicy::new(need_system()?.clone()))),
        PolicyKind::Quasar => Some(Box::new(QuasarPredictor::new(need_system()?)?)),
        PolicyKind::UnifiedLinear => Some(Box::new(UnifiedFamily::new(CurveFamily::Linear))),
        PolicyKind::UnifiedExponential => {
            Some(Box::new(UnifiedFamily::new(CurveFamily::Exponential)))
        }
        PolicyKind::UnifiedLog => Some(Box::new(UnifiedFamily::new(CurveFamily::NapierianLog))),
        PolicyKind::UnifiedAnn => {
            let sys = need_system()?;
            let sizes = TrainingConfig::default().profile_sizes_gb;
            Some(Box::new(AnnPredictor::train(
                catalog,
                &sys.program_benchmarks,
                &sizes,
                0.01,
                rng,
            )?))
        }
    })
}

/// Reusable buffers for [`place_predictive`], owned by the event loop so
/// per-event placement passes allocate nothing at steady state — the PR 4
/// ranked/candidate pattern hoisted one level further, out of the call
/// itself. Also carries the worker budget and fan-out slots for the
/// storm-sized candidate-ranking pass (DESIGN.md §17).
#[derive(Debug)]
pub(crate) struct PlaceScratch {
    /// Worker budget for the parallel ranking pass.
    workers: usize,
    /// Nodes ranked by free memory, rebuilt per water-filling round.
    ranked: Vec<(NodeId, f64)>,
    /// Dynamic-adjustment candidates: `(executor, node, free memory)`.
    candidates: Vec<(sparklite::ExecutorId, NodeId, f64)>,
    /// Fan-out slots for the parallel ranking pass.
    rank_out: Vec<Option<Option<(NodeId, f64)>>>,
    /// Per-worker (stateless) arenas for the ranking fan-out.
    rank_arenas: Vec<()>,
}

impl PlaceScratch {
    pub(crate) fn new() -> Self {
        PlaceScratch {
            workers: simkit::par::available_workers(),
            ranked: Vec::new(),
            candidates: Vec::new(),
            rank_out: Vec::new(),
            rank_arenas: Vec::new(),
        }
    }
}

/// Minimum cluster size before the per-round ranking filter fans across
/// workers; below this the filter is a few microseconds of pointer
/// chasing and thread spawn would dominate.
const PAR_RANK_MIN_NODES: usize = 4096;

/// One placement round at time `t`. Returns the number of *abstain*
/// placements made (isolated whole-node reservations forced by a tripped
/// circuit breaker); always 0 unless `abstain` is set.
#[allow(clippy::too_many_arguments)]
pub(crate) fn place(
    policy: PolicyKind,
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    catalog: &Catalog,
    monitor: &sparklite::monitor::ResourceMonitor,
    resil: &ResilState,
    nodes: &[NodeId],
    abstain: bool,
    scratch: &mut PlaceScratch,
) -> Result<usize, ColocateError> {
    match policy {
        PolicyKind::Isolated => place_isolated(engine, apps, config, nodes).map(|()| 0),
        PolicyKind::Pairwise => place_pairwise(engine, apps, config, catalog, nodes).map(|()| 0),
        _ => place_predictive(
            engine, apps, config, t, monitor, resil, nodes, abstain, scratch,
        ),
    }
}

/// Last-resort placement when the policy's model refuses every node: give
/// the first ready, unfinished application one dynalloc-sized slice on the
/// node with the most free memory, reserving whatever is free. Returns
/// whether an executor was spawned.
pub(crate) fn force_place(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
) -> Result<bool, ColocateError> {
    for app in apps.iter() {
        if app.finished_at.is_some() || app.ready_at.max(app.retry_at) > t {
            continue;
        }
        let id = app.engine_id;
        if engine.app(id).unassigned_gb() <= 0.0 {
            continue;
        }
        let spec = engine.app(id).spec().clone();
        let target = dynalloc::executors_for(
            &spec,
            config.cluster.nodes,
            config.cluster.node.ram_gb,
            config.dynalloc,
        );
        // Emptiest *online* node; when every node is offline there is
        // nothing to force (the caller's restore schedule will unblock).
        let Some(node) = engine
            .cluster()
            .node_ids_iter()
            .filter(|&n| engine.node_online(n))
            .max_by(|&a, &b| {
                engine
                    .node_free_memory(a)
                    .total_cmp(&engine.node_free_memory(b))
            })
        else {
            return Ok(false);
        };
        let free = engine.node_free_memory(node);
        if free <= 0.5 {
            continue;
        }
        let slice = fitting_slice(
            &spec,
            (spec.input_gb / target as f64).min(engine.app(id).unassigned_gb()),
            free * 0.95,
        )
        .max(config.min_slice_gb)
        .min(engine.app(id).unassigned_gb());
        if engine
            .spawn_executor(id, node, slice, free * 0.95)?
            .is_some()
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Largest slice of `spec`'s input whose ground-truth footprint fits in
/// `budget_gb` — the wave size a memory-observing baseline processes at a
/// time when a node cannot hold the whole slice.
fn fitting_slice(spec: &sparklite::app::AppSpec, want_gb: f64, budget_gb: f64) -> f64 {
    let model = moe_core::calibration::CalibratedModel::from_curve(spec.memory_curve);
    match model.max_input_for_budget(budget_gb) {
        Some(x) => want_gb.min(x),
        None => 0.0,
    }
}

fn place_isolated(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    nodes: &[NodeId],
) -> Result<(), ColocateError> {
    // The first unfinished app owns the whole cluster.
    let Some(active) = apps.iter().position(|a| a.finished_at.is_none()) else {
        return Ok(());
    };
    let id = apps[active].engine_id;
    if engine.app(id).unassigned_gb() <= 0.0 {
        return Ok(());
    }
    let spec = engine.app(id).spec().clone();
    let target = dynalloc::executors_for(
        &spec,
        config.cluster.nodes,
        config.cluster.node.ram_gb,
        config.dynalloc,
    );
    let slice = spec.input_gb / target as f64;
    for &node in nodes {
        if engine.app(id).unassigned_gb() <= 0.0 {
            break;
        }
        if engine.app(id).live_executors() >= target {
            break;
        }
        if !engine.node_online(node) || engine.node_executors_iter(node).next().is_some() {
            continue;
        }
        // Exclusive: reserve the node's entire memory; process the input
        // in waves sized to what actually fits the heap.
        let ram = engine.cluster().node(node).spec().ram_gb;
        let wave = fitting_slice(&spec, slice, ram * 0.95);
        if wave <= 0.0 {
            continue;
        }
        engine.spawn_executor(id, node, wave, ram)?;
    }
    Ok(())
}

fn place_pairwise(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    catalog: &Catalog,
    nodes: &[NodeId],
) -> Result<(), ColocateError> {
    // Pairwise co-location runs the queue strictly first-come-first-served
    // with AT MOST TWO CONCURRENT APPLICATIONS: the head-of-queue job gets
    // its default allocation, and one additional job is co-located into
    // the spare memory (heap = free RAM, Spark-default slices). Everything
    // else waits. This matches the paper's description and its Fig. 7a
    // utilisation map (long idle stretches), and is why Pairwise "does not
    // scale up beyond pairwise co-location" (§6.2).
    let active: Vec<usize> = apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.finished_at.is_none())
        .map(|(i, _)| i)
        .take(2)
        .collect();
    for i in active {
        let id = apps[i].engine_id;
        if engine.app(id).unassigned_gb() <= 0.0 {
            continue;
        }
        let spec = engine.app(id).spec().clone();
        let bench = &catalog.all()[apps[i].benchmark];
        let target = dynalloc::executors_for(
            &spec,
            config.cluster.nodes,
            config.cluster.node.ram_gb,
            config.dynalloc,
        );
        let slice = spec.input_gb / target as f64;
        // Prefer empty nodes, then singly occupied ones. Occupancy counts
        // come from one pass over the executor set instead of letting the
        // sort re-scan it per comparison key; the stable sort over equal
        // counts visits nodes in exactly the order the per-node rescans
        // produced.
        let mut node_order: Vec<(NodeId, usize)> = nodes.iter().map(|&n| (n, 0)).collect();
        for e in engine.executors_iter() {
            node_order[e.node().index()].1 += 1;
        }
        node_order.sort_by_key(|&(_, count)| count);
        for (node, occupants) in node_order {
            if engine.app(id).unassigned_gb() <= 0.0 || engine.app(id).live_executors() >= target {
                break;
            }
            if !engine.node_online(node) {
                continue;
            }
            if occupants >= 2 {
                continue;
            }
            // One executor per app per host.
            if engine.executors_on(node).any(|e| e.app() == id) {
                continue;
            }
            let want = fitting_slice(
                &spec,
                slice.min(engine.app(id).unassigned_gb()),
                engine.cluster().node(node).spec().ram_gb * 0.95,
            );
            let observed = bench.true_footprint_gb(want);
            let free = engine.node_free_memory(node);
            if want < config.min_slice_gb || free < 1.0 {
                continue;
            }
            if apps[i].margin > 1.0 && observed * apps[i].margin > free {
                continue;
            }
            // First occupant books what it is observed to use; the
            // co-locating newcomer gets heap = all free memory.
            let reserve = if occupants == 0 {
                observed.min(free)
            } else {
                free
            };
            engine.spawn_executor(id, node, want, reserve)?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn place_predictive(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    monitor: &sparklite::monitor::ResourceMonitor,
    resil: &ResilState,
    nodes: &[NodeId],
    abstain: bool,
    scratch: &mut PlaceScratch,
) -> Result<usize, ColocateError> {
    let PlaceScratch {
        workers,
        ranked,
        candidates,
        rank_out,
        rank_arenas,
    } = scratch;
    let mut abstain_placements = 0usize;
    // Graceful degradation: an application that burned through its retry
    // budget gets a whole empty node to itself — the paper's §2.3 answer
    // to repeated OOMs is to re-run in isolation — sidestepping the
    // predictions that kept failing it. A tripped circuit breaker
    // (`abstain`, service layer only) widens this to *every* ready
    // application: co-location is suspended until the distress rate
    // recovers, and each placement made that way is counted.
    if config.resilience.enabled || abstain {
        for app in apps.iter() {
            if !(app.isolated_fallback || abstain)
                || app.finished_at.is_some()
                || app.ready_at.max(app.retry_at) > t
            {
                continue;
            }
            let id = app.engine_id;
            if engine.app(id).unassigned_gb() <= 0.0 || engine.app(id).live_executors() > 0 {
                continue;
            }
            let spec = engine.app(id).spec().clone();
            for &node in nodes {
                if !engine.node_online(node)
                    || resil.quarantined_until[node.index()] > t
                    || engine.node_executors_iter(node).next().is_some()
                {
                    continue;
                }
                let ram = engine.cluster().node(node).spec().ram_gb;
                let wave = fitting_slice(&spec, engine.app(id).unassigned_gb(), ram * 0.95);
                if wave < config.min_slice_gb {
                    continue;
                }
                engine.spawn_executor(id, node, wave, ram)?;
                if abstain && !app.isolated_fallback {
                    abstain_placements += 1;
                }
                break;
            }
        }
    }
    // While the breaker is open nothing co-locates: skip the water-filling
    // and dynamic-adjustment phases wholesale.
    if abstain {
        return Ok(abstain_placements);
    }

    // Water-filling rounds: each ready application may claim at most one
    // new executor per round, earlier-submitted applications picking
    // first. This models §4.3's "starts executing waiting applications as
    // soon as possible" + even thread distribution: late arrivals are not
    // starved behind large jobs the way strict per-slot FCFS would.
    loop {
        let mut progress = false;
        for app in apps.iter() {
            if app.finished_at.is_some()
                || app.ready_at.max(app.retry_at) > t
                || app.isolated_fallback
            {
                continue;
            }
            let id = app.engine_id;
            if engine.app(id).unassigned_gb() <= 0.0 {
                continue;
            }
            let Some(prediction) = &app.prediction else {
                continue;
            };
            let margin = effective_margin(app, config);
            let cpu = app.measured_cpu;
            let spec = engine.app(id).spec().clone();
            let target = dynalloc::executors_for(
                &spec,
                config.cluster.nodes,
                config.cluster.node.ram_gb,
                config.dynalloc,
            );
            if engine.app(id).live_executors() >= target {
                continue;
            }
            let slice_target = spec.input_gb / target as f64;

            // Nodes with the most free memory first (§4.3: spawn on
            // servers that have spare memory). Offline and quarantined
            // nodes are filtered out BEFORE ranking, so rounds on a
            // degraded cluster stop re-sorting and re-skipping dead nodes;
            // the stable sort over the surviving subset (same keys, same
            // relative pre-order) visits eligible nodes in exactly the
            // sequence the unfiltered scan did.
            ranked.clear();
            if *workers > 1 && nodes.len() >= PAR_RANK_MIN_NODES {
                // Storm-sized cluster: fan the per-node filter and
                // free-memory read across workers. Survivors are taken in
                // index order, so the stable sort below sees exactly the
                // sequence the serial scan feeds it (DESIGN.md §17).
                let engine_ref: &ClusterEngine = engine;
                simkit::par::par_for_shards(
                    nodes,
                    *workers,
                    rank_arenas,
                    || (),
                    rank_out,
                    |_, &n, ()| {
                        (engine_ref.node_online(n) && resil.quarantined_until[n.index()] <= t)
                            .then(|| (n, engine_ref.node_free_memory(n)))
                    },
                );
                ranked.extend(rank_out.iter_mut().filter_map(|slot| slot.take().flatten()));
            } else {
                ranked.extend(
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| {
                            engine.node_online(n) && resil.quarantined_until[n.index()] <= t
                        })
                        .map(|n| (n, engine.node_free_memory(n))),
                );
            }
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            for &(node, _) in ranked.iter() {
                if engine.node_executor_count(node) >= config.max_execs_per_node {
                    continue;
                }
                // CPU guard: aggregate load stays under the cap (§4.3).
                // The monitor's windowed view (§4.2) is consulted alongside
                // the instantaneous load so a node recovering from a burst
                // is not immediately over-packed.
                let observed_load = engine.node_cpu_load(node).max(
                    monitor
                        .windowed_cpu(node)
                        .min(engine.node_cpu_load(node) + 0.15),
                );
                if observed_load + cpu > config.cpu_cap {
                    continue;
                }
                let free = engine.node_free_memory(node);
                let remaining = engine.app(id).unassigned_gb();
                let want = slice_target.min(remaining);
                let need = prediction.model.footprint_gb(want) * app.pred_scale * margin;
                let quantize = |gb: f64| -> f64 {
                    // Whole RDD partitions only (never exceeding what was
                    // asked for; a final sub-partition tail is allowed so
                    // inputs drain completely).
                    if config.partition_gb <= 0.0 || gb <= config.partition_gb {
                        return gb;
                    }
                    (gb / config.partition_gb).floor() * config.partition_gb
                };
                let (slice, reserve) = if need <= free {
                    (want, need)
                } else {
                    match prediction
                        .model
                        .max_input_for_budget(free / (app.pred_scale * margin))
                    {
                        Some(x) if x.min(want) >= config.min_slice_gb => {
                            let s = quantize(x.min(want)).max(config.min_slice_gb);
                            (
                                s,
                                (prediction.model.footprint_gb(s) * app.pred_scale * margin)
                                    .min(free),
                            )
                        }
                        _ => continue,
                    }
                };
                if engine.spawn_executor(id, node, slice, reserve)?.is_some() {
                    progress = true;
                }
                break; // one executor per app per round
            }
        }
        if !progress {
            break;
        }
    }

    // §4.3 dynamic adjustment: applications with leftover input that could
    // not obtain another executor top up a running one where the node has
    // spare memory, avoiding a fresh executor's startup cost.
    if config.dynamic_adjustment {
        // `candidates` is reused across apps AND calls (scratch-owned):
        // (executor, its node, free memory there).
        for app in apps.iter() {
            if app.finished_at.is_some()
                || app.ready_at.max(app.retry_at) > t
                || app.isolated_fallback
            {
                continue;
            }
            let id = app.engine_id;
            if engine.app(id).unassigned_gb() <= 0.0 || engine.app(id).live_executors() == 0 {
                continue;
            }
            let Some(prediction) = &app.prediction else {
                continue;
            };
            let margin = effective_margin(app, config);
            // Top up only toward the dynalloc per-executor share: the
            // adjustment restores an executor squeezed below its fair
            // slice by an earlier memory shortage — it must not serialise
            // work that future executors would process in parallel.
            let spec = engine.app(id).spec().clone();
            let target = dynalloc::executors_for(
                &spec,
                config.cluster.nodes,
                config.cluster.node.ram_gb,
                config.dynalloc,
            );
            let slice_target = spec.input_gb / target as f64;
            // This app's executors, on the node with the most free memory
            // first. One pass over the executor set replaces the old
            // nodes-times-executors double scan; the (node, id) tie-break
            // reproduces the order that scan fed its stable sort, so equal
            // free-memory ties resolve identically.
            candidates.clear();
            for e in engine.executors_iter() {
                if e.app() == id {
                    candidates.push((e.id(), e.node(), engine.node_free_memory(e.node())));
                }
            }
            candidates.sort_by(|a, b| {
                b.2.total_cmp(&a.2)
                    .then_with(|| a.1.cmp(&b.1))
                    .then_with(|| a.0.cmp(&b.0))
            });
            for &(exec_id, _, _) in candidates.iter() {
                let remaining = engine.app(id).unassigned_gb();
                if remaining <= config.min_slice_gb {
                    break;
                }
                let (node, slice, reserved) = {
                    let e = engine.executor(exec_id)?;
                    (e.node(), e.slice_gb(), e.reserved_gb())
                };
                let free = engine.node_free_memory(node);
                if free <= 0.5 {
                    continue;
                }
                // Grow toward what the whole budget (current + free) can
                // host, bounded by the remaining input.
                let budget = (reserved + free) / (app.pred_scale * margin);
                let Some(max_slice) = prediction.model.max_input_for_budget(budget) else {
                    continue;
                };
                let extra = (max_slice.min(slice_target) - slice).min(remaining);
                if extra < config.min_slice_gb.max(config.partition_gb) {
                    continue;
                }
                let new_need =
                    prediction.model.footprint_gb(slice + extra) * app.pred_scale * margin;
                let extra_reserve = (new_need - reserved).clamp(0.0, free);
                if engine
                    .extend_executor(exec_id, extra, extra_reserve)
                    .is_ok()
                {
                    // One extension per app per round keeps growth fair.
                    break;
                }
            }
        }
    }
    Ok(abstain_placements)
}

/// Minimum hot-node count before [`resolve_ooms`] fans its pressure scan
/// across workers — storm-sized candidate sets only (DESIGN.md §17).
const PAR_OOM_MIN_NODES: usize = 1024;

/// Kills executors until no candidate node is out of memory; raises the
/// owning application's margin so its re-run is conservative. `nodes` is
/// the OOM candidate set — the engine's hot nodes — which provably covers
/// every node the full-cluster scan could act on (cool nodes always report
/// `Fits`). With resilience enabled it additionally feeds the margin
/// controller, schedules a backed-off retry for the owner, and quarantines
/// nodes that keep OOMing within one monitor window.
///
/// On storm-sized candidate sets the read-only pressure scan fans across
/// workers first, and the serial kill loop then visits only flagged nodes
/// in index order. Bit-identical to the plain loop: kills on a node only
/// *reduce* that node's occupancy and touch no other node, so a node not
/// OOM at scan time cannot have become OOM by the time the serial loop
/// would have reached it — the skipped iterations are provably no-ops.
pub(crate) fn resolve_ooms(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    resil: &mut ResilState,
    nodes: &[NodeId],
) -> Result<usize, ColocateError> {
    let mut kills = 0;
    if nodes.len() >= PAR_OOM_MIN_NODES {
        let workers = simkit::par::available_workers();
        if workers > 1 {
            let engine_ref: &ClusterEngine = engine;
            let flags = simkit::par::par_map_indexed(nodes, workers, |_, &n| {
                matches!(engine_ref.memory_pressure(n), MemoryPressure::OutOfMemory)
            });
            for (&node, flagged) in nodes.iter().zip(flags) {
                if flagged {
                    kills += resolve_node_ooms(engine, apps, config, t, resil, node)?;
                }
            }
            return Ok(kills);
        }
    }
    for &node in nodes {
        kills += resolve_node_ooms(engine, apps, config, t, resil, node)?;
    }
    Ok(kills)
}

/// One node's share of [`resolve_ooms`]: kill youngest-first until the
/// node's pressure drops below out-of-memory.
fn resolve_node_ooms(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    resil: &mut ResilState,
    node: NodeId,
) -> Result<usize, ColocateError> {
    let resilience = config.resilience;
    let mut kills = 0;
    {
        while matches!(engine.memory_pressure(node), MemoryPressure::OutOfMemory) {
            let Some(victim) = engine.oom_victim(node) else {
                break;
            };
            let (owner, actual, reserved) = {
                let e = engine.executor(victim)?;
                (e.app(), e.current_actual_gb(), e.reserved_gb())
            };
            engine.kill_executor(victim)?;
            if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
                app.margin = (app.margin * 1.5).min(3.0).max(config.conservative_margin);
                if resilience.enabled {
                    observe_footprint_error(app, actual, reserved, resilience.margin_alpha);
                    schedule_retry(app, t, &resilience, resil, true);
                }
            }
            kills += 1;
            if resilience.enabled {
                let times = &mut resil.oom_times[node.index()];
                times.push_back(t);
                while times
                    .front()
                    .is_some_and(|&f| t - f > config.monitor.window_secs)
                {
                    times.pop_front();
                }
                if times.len() >= resilience.quarantine_threshold {
                    resil.quarantined_until[node.index()] = t + resilience.quarantine_secs;
                    times.clear();
                    resil.stats.quarantines += 1;
                }
            }
        }
    }
    Ok(kills)
}

/// Helper: a forked seed for the engine.
pub(crate) trait NextSeed {
    fn next_u64_seed(&mut self) -> u64;
}

impl NextSeed for SimRng {
    fn next_u64_seed(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_system;
    use workloads::mixes::{InputSize, MixEntry};

    fn small_config() -> SchedulerConfig {
        SchedulerConfig {
            cluster: ClusterSpec::small(4),
            ..Default::default()
        }
    }

    fn mix_of(catalog: &Catalog, names: &[(&str, InputSize)]) -> Vec<MixEntry> {
        names
            .iter()
            .map(|(n, s)| MixEntry {
                benchmark: catalog.by_name(n).unwrap().index(),
                size: *s,
            })
            .collect()
    }

    #[test]
    fn isolated_runs_apps_sequentially() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Medium),
            ],
        );
        let out = run_schedule(
            PolicyKind::Isolated,
            &catalog,
            &mix,
            None,
            &small_config(),
            1,
        )
        .unwrap();
        assert_eq!(out.per_app.len(), 2);
        // Sequential: second finishes after the first.
        assert!(out.per_app[1].finished_at > out.per_app[0].finished_at);
        assert_eq!(out.oom_kills, 0);
        assert!(out.makespan_secs > 0.0);
    }

    #[test]
    fn oracle_colocation_beats_isolated_makespan() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Medium),
                ("SP.glm-regression", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
            ],
        );
        let cfg = small_config();
        let iso = run_schedule(PolicyKind::Isolated, &catalog, &mix, None, &cfg, 1).unwrap();
        let orc = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 1).unwrap();
        assert!(
            orc.makespan_secs < iso.makespan_secs * 0.8,
            "oracle {:.0}s vs isolated {:.0}s",
            orc.makespan_secs,
            iso.makespan_secs
        );
    }

    #[test]
    fn moe_schedules_mixed_workloads() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(5);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        let mix = mix_of(
            &catalog,
            &[
                ("SB.Hive", InputSize::Medium),
                ("SP.Kmeans", InputSize::Medium),
                ("HB.Scan", InputSize::Small),
            ],
        );
        let out = run_schedule(
            PolicyKind::Moe,
            &catalog,
            &mix,
            Some(&system),
            &small_config(),
            2,
        )
        .unwrap();
        assert_eq!(out.per_app.len(), 3);
        // Profiling happened: ready_at > 0 and cost recorded.
        assert!(out.per_app.iter().all(|a| a.ready_at > 0.0));
        assert!(out.per_app.iter().all(|a| a.profiling.total_secs() > 0.0));
    }

    #[test]
    fn pairwise_never_exceeds_two_executors_per_node() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.Scan", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
                ("HB.WordCount", InputSize::Medium),
            ],
        );
        // Indirect check: pairwise completes and beats isolated, but not by
        // more than 2x concurrency allows on this cluster.
        let cfg = small_config();
        let iso = run_schedule(PolicyKind::Isolated, &catalog, &mix, None, &cfg, 3).unwrap();
        let pw = run_schedule(PolicyKind::Pairwise, &catalog, &mix, None, &cfg, 3).unwrap();
        assert!(pw.makespan_secs <= iso.makespan_secs);
    }

    #[test]
    fn predictive_policies_require_training_where_applicable() {
        let catalog = Catalog::paper();
        let mix = mix_of(&catalog, &[("HB.Sort", InputSize::Small)]);
        let err = run_schedule(PolicyKind::Moe, &catalog, &mix, None, &small_config(), 1);
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn empty_mix_is_rejected() {
        let catalog = Catalog::paper();
        let err = run_schedule(
            PolicyKind::Isolated,
            &catalog,
            &[],
            None,
            &small_config(),
            1,
        );
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn online_search_is_slower_than_oracle() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
                ("HB.WordCount", InputSize::Medium),
            ],
        );
        let cfg = small_config();
        let orc = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 4).unwrap();
        let online = run_schedule(PolicyKind::OnlineSearch, &catalog, &mix, None, &cfg, 4).unwrap();
        assert!(online.makespan_secs > orc.makespan_secs);
    }

    #[test]
    fn dynamic_adjustment_tops_up_memory_capped_executors() {
        // One node; a memory-hungry app whose first slice is budget-capped
        // because a co-runner holds memory. When the co-runner finishes,
        // the hungry app's executor is extended rather than a new one
        // spawned (saving startup), so it finishes with few executors.
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("BDB.PageRank", InputSize::Medium), // log family, hungry
                ("HB.Scan", InputSize::Medium),      // small footprints
            ],
        );
        let cfg_on = SchedulerConfig {
            cluster: ClusterSpec::small(1),
            ..Default::default()
        };
        let cfg_off = SchedulerConfig {
            dynamic_adjustment: false,
            ..cfg_on.clone()
        };
        let on = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg_on, 2).unwrap();
        let off = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg_off, 2).unwrap();
        // Both complete; the adjusted schedule is no slower (it saves
        // startup costs when it fires).
        assert!(on.per_app.iter().all(|a| a.finished_at > 0.0));
        assert!(off.per_app.iter().all(|a| a.finished_at > 0.0));
        assert!(
            on.makespan_secs <= off.makespan_secs + 1.0,
            "adjusted {:.0}s vs plain {:.0}s",
            on.makespan_secs,
            off.makespan_secs
        );
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Small),
            ],
        );
        let cfg = small_config();
        let a = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 9).unwrap();
        let b = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 9).unwrap();
        assert_eq!(a.makespan_secs, b.makespan_secs);
        for (x, y) in a.per_app.iter().zip(b.per_app.iter()) {
            assert_eq!(x.finished_at, y.finished_at);
        }
    }
}
