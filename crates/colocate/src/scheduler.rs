//! The job dispatcher and the comparative scheduling policies (§4.3, §5.4).
//!
//! All policies share one event loop over the sparklite engine:
//!
//! 1. **placement** — the policy spawns executors given the resource
//!    monitor's view (free memory per node, CPU load per node) and, for
//!    predictive policies, each application's calibrated memory model;
//! 2. **OOM resolution** — if actual footprints exhaust RAM + swap, the
//!    youngest executor is killed, its slice re-queued, and the owning
//!    application's reservation margin is raised (the paper re-runs OOM'd
//!    executors in isolation, §2.3);
//! 3. **progress** — the engine advances to the next executor completion
//!    or profiling-ready instant, and finished slices are credited.
//!
//! The policies:
//!
//! * [`PolicyKind::Isolated`] — the baseline: one application at a time,
//!   exclusively owning every allocated node's memory;
//! * [`PolicyKind::Pairwise`] — co-locates at most two executors per host,
//!   giving the second all observed-free memory (§5.4);
//! * [`PolicyKind::OnlineSearch`] — no model; searches for the right input
//!   size at runtime by descent, paying per-application search latency on
//!   the coordinating node plus steady-state trial overhead (§6.5);
//! * the predictive policies ([`PolicyKind::Moe`], [`PolicyKind::Quasar`],
//!   [`PolicyKind::Oracle`], [`PolicyKind::UnifiedLinear`] /
//!   [`PolicyKind::UnifiedExponential`] / [`PolicyKind::UnifiedLog`] /
//!   [`PolicyKind::UnifiedAnn`]) — §4.3's dispatcher driven by the
//!   respective memory predictor.

use crate::predictors::{
    AnnPredictor, MemoryPredictor, MoePolicy, Oracle, Prediction, QuasarPredictor, UnifiedFamily,
};
use crate::profiling::{profile_app, ProfilingConfig, ProfilingCost};
use crate::training::{TrainedSystem, TrainingConfig};
use crate::ColocateError;
use mlkit::regression::CurveFamily;
use simkit::SimRng;
use sparklite::app::AppId;
use sparklite::cluster::ClusterSpec;
use sparklite::dynalloc::{self, DynAllocConfig};
use sparklite::engine::ClusterEngine;
use sparklite::perf::{InterferenceModel, MemoryPressure};
use workloads::catalog::Catalog;
use workloads::mixes::MixEntry;

/// The scheduling policies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// One application at a time with all memory (the §6 baseline).
    Isolated,
    /// At most two co-located executors per host (§5.4).
    Pairwise,
    /// Runtime descent search for the input size (§6.5).
    OnlineSearch,
    /// Quasar-style classification against historical workloads (§5.4).
    Quasar,
    /// The paper's mixture-of-experts approach.
    Moe,
    /// Unified single-family baseline: linear (Fig. 9).
    UnifiedLinear,
    /// Unified single-family baseline: saturating exponential (Fig. 9).
    UnifiedExponential,
    /// Unified single-family baseline: Napierian logarithmic (Fig. 9).
    UnifiedLog,
    /// Unified 3-layer neural network (Fig. 9).
    UnifiedAnn,
    /// The ideal memory predictor (§5.4).
    Oracle,
}

impl PolicyKind {
    /// Display name used in the paper's figures.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            PolicyKind::Isolated => "Isolated",
            PolicyKind::Pairwise => "Pairwise",
            PolicyKind::OnlineSearch => "Online Search",
            PolicyKind::Quasar => "Quasar",
            PolicyKind::Moe => "Our Approach",
            PolicyKind::UnifiedLinear => "Linear Regression",
            PolicyKind::UnifiedExponential => "Exponential Regression",
            PolicyKind::UnifiedLog => "Napierian Log. Regression",
            PolicyKind::UnifiedAnn => "ANN",
            PolicyKind::Oracle => "Oracle",
        }
    }

    /// Whether this policy schedules with a memory predictor.
    #[must_use]
    pub fn is_predictive(self) -> bool {
        !matches!(self, PolicyKind::Isolated | PolicyKind::Pairwise)
    }
}

/// Scheduler configuration shared by all policies.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Node-level interference model.
    pub interference: InterferenceModel,
    /// Profiling pipeline settings.
    pub profiling: ProfilingConfig,
    /// Dynamic-allocation sizing.
    pub dynalloc: DynAllocConfig,
    /// Hard cap on executors per node (thread re-balancing limit, §4.3).
    pub max_execs_per_node: usize,
    /// Aggregate CPU demand allowed on one node (the paper refuses
    /// co-locations that push the sum over 100 %).
    pub cpu_cap: f64,
    /// Reservation margin for normal predictions (1.0 = reserve exactly
    /// the predicted footprint).
    pub reserve_margin: f64,
    /// Margin for low-confidence predictions and post-OOM re-runs.
    pub conservative_margin: f64,
    /// Smallest slice worth spawning an executor for (GB).
    pub min_slice_gb: f64,
    /// RDD partition granularity (GB): data slices handed to executors
    /// are whole partitions, so budget-derived slices snap down to this
    /// grid (HDFS block size by default).
    pub partition_gb: f64,
    /// §4.3's dynamic adjustment: when no new executor can be placed for
    /// an application, top up its running executors with more data items
    /// instead (saves the executor-startup cost).
    pub dynamic_adjustment: bool,
    /// Resource-monitor daemon settings (§4.2): placement consults the
    /// windowed CPU view in addition to the instantaneous one.
    pub monitor: sparklite::monitor::MonitorConfig,
    /// Fixed executor startup latency (JVM + container allocation), s.
    /// Makes slice-chopping expensive: a predictor that over-reserves
    /// memory forces smaller slices and pays this cost more often.
    pub executor_startup_secs: f64,
    /// Online search: fraction of the input processed per descent trial,
    /// serialised on the coordinating node (§6.5's scalability problem).
    pub search_serial_frac: f64,
    /// Online search: steady-state rate penalty from repeated trial
    /// adjustments.
    pub search_rate_penalty: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cluster: ClusterSpec::paper_cluster(),
            interference: InterferenceModel::default(),
            profiling: ProfilingConfig::default(),
            dynalloc: DynAllocConfig::default(),
            max_execs_per_node: 8,
            cpu_cap: 1.0,
            // §6.9 suggests slightly over-provisioning (~10 %) to tolerate
            // prediction error; 5 % keeps measurement noise from tipping a
            // tightly packed node into paging.
            reserve_margin: 1.05,
            conservative_margin: 1.5,
            min_slice_gb: 0.02,
            partition_gb: workloads::inputs::DEFAULT_PARTITION_GB,
            dynamic_adjustment: true,
            monitor: sparklite::monitor::MonitorConfig::default(),
            executor_startup_secs: 25.0,
            search_serial_frac: 0.008,
            search_rate_penalty: 0.18,
        }
    }
}

/// Outcome for one application in a schedule.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Catalog index of the benchmark.
    pub benchmark: usize,
    /// Input size (GB).
    pub input_gb: f64,
    /// When the application became dispatchable (profiling done), s.
    pub ready_at: f64,
    /// Completion time from submission (turnaround), s.
    pub finished_at: f64,
    /// Profiling cost breakdown.
    pub profiling: ProfilingCost,
}

/// Outcome of one scheduled mix.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Which policy produced this schedule.
    pub policy: &'static str,
    /// Per-application outcomes, in submission order.
    pub per_app: Vec<AppOutcome>,
    /// Wall-clock time until the last application finished, s.
    pub makespan_secs: f64,
    /// Number of OOM kills that occurred.
    pub oom_kills: usize,
    /// Utilisation trace: `(time, per-node CPU load)` samples at every
    /// scheduling event.
    pub trace: Vec<(f64, Vec<f64>)>,
}

struct AppRt {
    engine_id: AppId,
    benchmark: usize,
    ready_at: f64,
    prediction: Option<Prediction>,
    measured_cpu: f64,
    margin: f64,
    finished_at: Option<f64>,
    profiling: ProfilingCost,
    input_gb: f64,
}

/// Runs one mix under one policy. `system` supplies the offline-trained
/// models for the predictive policies (ignored by Isolated/Pairwise; the
/// Oracle needs only the catalog).
///
/// # Errors
///
/// Returns configuration errors for empty mixes, and propagates substrate
/// or predictor failures (which indicate bugs rather than expected
/// conditions).
pub fn run_schedule(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[MixEntry],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<ScheduleOutcome, ColocateError> {
    let jobs: Vec<(usize, f64)> = mix.iter().map(|e| (e.benchmark, e.size.gb())).collect();
    run_schedule_custom(policy, catalog, &jobs, system, config, seed)
}

/// Like [`run_schedule`], but with explicit `(benchmark index, input GB)`
/// jobs — used by experiments whose input sizes fall outside the three
/// Table 3 classes (e.g. the ~280 GB interference runs of Figs. 14/15).
///
/// # Errors
///
/// Same conditions as [`run_schedule`].
pub fn run_schedule_custom(
    policy: PolicyKind,
    catalog: &Catalog,
    mix: &[(usize, f64)],
    system: Option<&TrainedSystem>,
    config: &SchedulerConfig,
    seed: u64,
) -> Result<ScheduleOutcome, ColocateError> {
    if mix.is_empty() {
        return Err(ColocateError::Config("empty application mix".into()));
    }
    let mut rng = SimRng::seed_from(seed);
    let predictor = build_predictor(policy, catalog, system, &mut rng)?;

    let mut engine = ClusterEngine::with_seed(
        config.cluster.clone(),
        config.interference,
        rng.fork().next_u64_seed(),
    );
    engine.set_executor_startup_secs(config.executor_startup_secs);

    // Submit every application and run the profiling pipeline.
    let mut apps: Vec<AppRt> = Vec::with_capacity(mix.len());
    // Profiling happens off the computing cluster, "grouping different
    // application tasks to run on a single host" (§4.1) — modeled as a
    // small pool of concurrent profiling slots on the coordinating side.
    let mut profile_slots = [0.0f64; 6];
    let mut search_queue_end = 0.0; // OnlineSearch serialises on the driver.
    for &(bench_idx, input) in mix {
        let bench = &catalog.all()[bench_idx];
        let rate_penalty = if policy == PolicyKind::OnlineSearch {
            1.0 / (1.0 + config.search_rate_penalty)
        } else {
            1.0
        };
        let mut spec = bench.app_spec(input, config.profiling.footprint_noise_sd);
        spec.rate_gb_per_s *= rate_penalty;
        let engine_id = engine.submit(spec);

        let (ready_at, prediction, measured_cpu, profiling) = match predictor.as_ref() {
            Some(p) => {
                let (profile, mut cost) = profile_app(
                    bench,
                    input,
                    config.cluster.nodes,
                    config.cluster.node.ram_gb,
                    &config.profiling,
                    &mut rng,
                );
                let prediction = p.predict(&profile)?;
                let mut ready = if p.needs_profiling() {
                    engine.credit_profiled(engine_id, cost.profiled_gb);
                    // Take the earliest-free profiling slot.
                    let slot = profile_slots
                        .iter_mut()
                        .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
                        .expect("non-empty pool");
                    *slot += cost.total_secs();
                    *slot
                } else {
                    cost = ProfilingCost::default();
                    0.0
                };
                if policy == PolicyKind::OnlineSearch {
                    // Descent search serialised on the coordinating node.
                    let search = config.search_serial_frac * input / bench.rate_gb_per_s();
                    search_queue_end += search;
                    ready = ready.max(search_queue_end);
                }
                let cpu = prediction.cpu_estimate.unwrap_or(profile.measured_cpu);
                (ready, Some(prediction), cpu, cost)
            }
            None => (0.0, None, bench.cpu_util(), ProfilingCost::default()),
        };

        apps.push(AppRt {
            engine_id,
            benchmark: bench_idx,
            ready_at,
            prediction,
            measured_cpu,
            margin: 1.0,
            finished_at: None,
            profiling,
            input_gb: input,
        });
    }
    for app in &mut apps {
        if let Some(pred) = &app.prediction {
            if pred.low_confidence {
                app.margin = config.conservative_margin;
            }
        }
    }

    // Main event loop.
    let mut monitor =
        sparklite::monitor::ResourceMonitor::new(config.cluster.nodes, config.monitor);
    let mut t = 0.0f64;
    let mut oom_kills = 0usize;
    let mut trace: Vec<(f64, Vec<f64>)> = Vec::new();
    let node_ids = engine.cluster().node_ids();
    let mut guard = 0usize;
    let guard_limit = 200_000usize;

    loop {
        guard += 1;
        if guard.is_multiple_of(20_000) && std::env::var_os("SPARK_MOE_DEBUG").is_some() {
            let live = engine.live_executors();
            let unfinished = apps.iter().filter(|a| a.finished_at.is_none()).count();
            eprintln!(
                "[debug] iter {guard}: t={t:.0}s live={live} unfinished={unfinished} ooms={oom_kills}"
            );
        }
        if guard > guard_limit {
            return Err(ColocateError::Config(
                "scheduler event loop exceeded its iteration guard".into(),
            ));
        }

        // Mark finished apps before placement so policies see fresh state
        // (the isolated policy in particular must move on to the next app
        // in the same instant its predecessor's last executor completes).
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }

        monitor.observe(&engine, t);
        place(policy, &mut engine, &mut apps, config, t, catalog, &monitor)?;
        oom_kills += resolve_ooms(&mut engine, &mut apps, config)?;

        trace.push((
            t,
            node_ids.iter().map(|&n| engine.node_cpu_load(n)).collect(),
        ));

        // Apps may also finish via profiling credit alone.
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }
        if apps.iter().all(|a| a.finished_at.is_some()) {
            break;
        }

        let next_ready = apps
            .iter()
            .filter(|a| a.finished_at.is_none() && a.ready_at > t)
            .map(|a| a.ready_at)
            .fold(f64::INFINITY, f64::min);
        let next_done = engine.next_completion();

        match (next_done, next_ready.is_finite()) {
            (Some((dt, _)), true) if t + dt > next_ready => {
                engine.advance(next_ready - t);
                t = next_ready;
            }
            (Some((dt, first)), _) => {
                engine.advance(dt);
                t += dt;
                engine.complete_executor(first)?;
                // Complete any executors that finished at the same instant.
                while let Some((dt2, id2)) = engine.next_completion() {
                    if dt2 > 1e-9 {
                        break;
                    }
                    engine.advance(dt2);
                    t += dt2;
                    engine.complete_executor(id2)?;
                }
            }
            (None, true) => {
                t = next_ready;
            }
            (None, false) => {
                // No executors, nothing becoming ready: the policy's model
                // refused every node (a badly mis-fitted unified model can
                // predict footprints beyond any budget). A real dispatcher
                // still makes progress — force a minimum-slice placement
                // on the emptiest node, capped at the free memory; if it
                // pages, that is the baseline's deserved penalty.
                if !force_place(&mut engine, &mut apps, config, t)? {
                    return Err(ColocateError::Config(format!(
                        "schedule stuck at t={t:.1}s with unfinished applications"
                    )));
                }
            }
        }
    }

    let makespan = apps
        .iter()
        .map(|a| a.finished_at.expect("all finished"))
        .fold(0.0, f64::max);
    Ok(ScheduleOutcome {
        policy: policy.display_name(),
        per_app: apps
            .iter()
            .map(|a| AppOutcome {
                benchmark: a.benchmark,
                input_gb: a.input_gb,
                ready_at: a.ready_at,
                finished_at: a.finished_at.expect("all finished"),
                profiling: a.profiling,
            })
            .collect(),
        makespan_secs: makespan,
        oom_kills,
        trace,
    })
}

fn build_predictor(
    policy: PolicyKind,
    catalog: &Catalog,
    system: Option<&TrainedSystem>,
    rng: &mut SimRng,
) -> Result<Option<Box<dyn MemoryPredictor>>, ColocateError> {
    let need_system = || {
        system.ok_or_else(|| {
            ColocateError::Config(format!("{policy:?} requires an offline-trained system"))
        })
    };
    Ok(match policy {
        PolicyKind::Isolated | PolicyKind::Pairwise => None,
        PolicyKind::Oracle | PolicyKind::OnlineSearch => Some(Box::new(Oracle::new(catalog))),
        PolicyKind::Moe => Some(Box::new(MoePolicy::new(need_system()?.clone()))),
        PolicyKind::Quasar => Some(Box::new(QuasarPredictor::new(need_system()?)?)),
        PolicyKind::UnifiedLinear => Some(Box::new(UnifiedFamily::new(CurveFamily::Linear))),
        PolicyKind::UnifiedExponential => {
            Some(Box::new(UnifiedFamily::new(CurveFamily::Exponential)))
        }
        PolicyKind::UnifiedLog => Some(Box::new(UnifiedFamily::new(CurveFamily::NapierianLog))),
        PolicyKind::UnifiedAnn => {
            let sys = need_system()?;
            let sizes = TrainingConfig::default().profile_sizes_gb;
            Some(Box::new(AnnPredictor::train(
                catalog,
                &sys.program_benchmarks,
                &sizes,
                0.01,
                rng,
            )?))
        }
    })
}

/// One placement round at time `t`.
#[allow(clippy::too_many_arguments)]
fn place(
    policy: PolicyKind,
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    catalog: &Catalog,
    monitor: &sparklite::monitor::ResourceMonitor,
) -> Result<(), ColocateError> {
    match policy {
        PolicyKind::Isolated => place_isolated(engine, apps, config),
        PolicyKind::Pairwise => place_pairwise(engine, apps, config, catalog),
        _ => place_predictive(engine, apps, config, t, monitor),
    }
}

/// Last-resort placement when the policy's model refuses every node: give
/// the first ready, unfinished application one dynalloc-sized slice on the
/// node with the most free memory, reserving whatever is free. Returns
/// whether an executor was spawned.
fn force_place(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
) -> Result<bool, ColocateError> {
    for app in apps.iter() {
        if app.finished_at.is_some() || app.ready_at > t {
            continue;
        }
        let id = app.engine_id;
        if engine.app(id).unassigned_gb() <= 0.0 {
            continue;
        }
        let spec = engine.app(id).spec().clone();
        let target = dynalloc::executors_for(
            &spec,
            config.cluster.nodes,
            config.cluster.node.ram_gb,
            config.dynalloc,
        );
        let node = engine
            .cluster()
            .node_ids()
            .into_iter()
            .max_by(|&a, &b| {
                engine
                    .node_free_memory(a)
                    .partial_cmp(&engine.node_free_memory(b))
                    .expect("finite memory")
            })
            .expect("cluster has nodes");
        let free = engine.node_free_memory(node);
        if free <= 0.5 {
            continue;
        }
        let slice = fitting_slice(
            &spec,
            (spec.input_gb / target as f64).min(engine.app(id).unassigned_gb()),
            free * 0.95,
        )
        .max(config.min_slice_gb)
        .min(engine.app(id).unassigned_gb());
        if engine
            .spawn_executor(id, node, slice, free * 0.95)?
            .is_some()
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Largest slice of `spec`'s input whose ground-truth footprint fits in
/// `budget_gb` — the wave size a memory-observing baseline processes at a
/// time when a node cannot hold the whole slice.
fn fitting_slice(spec: &sparklite::app::AppSpec, want_gb: f64, budget_gb: f64) -> f64 {
    let model = moe_core::calibration::CalibratedModel::from_curve(spec.memory_curve);
    match model.max_input_for_budget(budget_gb) {
        Some(x) => want_gb.min(x),
        None => 0.0,
    }
}

fn place_isolated(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
) -> Result<(), ColocateError> {
    // The first unfinished app owns the whole cluster.
    let Some(active) = apps.iter().position(|a| a.finished_at.is_none()) else {
        return Ok(());
    };
    let id = apps[active].engine_id;
    if engine.app(id).unassigned_gb() <= 0.0 {
        return Ok(());
    }
    let spec = engine.app(id).spec().clone();
    let target = dynalloc::executors_for(
        &spec,
        config.cluster.nodes,
        config.cluster.node.ram_gb,
        config.dynalloc,
    );
    let slice = spec.input_gb / target as f64;
    for node in engine.cluster().node_ids() {
        if engine.app(id).unassigned_gb() <= 0.0 {
            break;
        }
        if engine.app(id).live_executors() >= target {
            break;
        }
        if !engine.node_executors(node).is_empty() {
            continue;
        }
        // Exclusive: reserve the node's entire memory; process the input
        // in waves sized to what actually fits the heap.
        let ram = engine.cluster().node(node).spec().ram_gb;
        let wave = fitting_slice(&spec, slice, ram * 0.95);
        if wave <= 0.0 {
            continue;
        }
        engine.spawn_executor(id, node, wave, ram)?;
    }
    Ok(())
}

fn place_pairwise(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    catalog: &Catalog,
) -> Result<(), ColocateError> {
    // Pairwise co-location runs the queue strictly first-come-first-served
    // with AT MOST TWO CONCURRENT APPLICATIONS: the head-of-queue job gets
    // its default allocation, and one additional job is co-located into
    // the spare memory (heap = free RAM, Spark-default slices). Everything
    // else waits. This matches the paper's description and its Fig. 7a
    // utilisation map (long idle stretches), and is why Pairwise "does not
    // scale up beyond pairwise co-location" (§6.2).
    let active: Vec<usize> = apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.finished_at.is_none())
        .map(|(i, _)| i)
        .take(2)
        .collect();
    for i in active {
        let id = apps[i].engine_id;
        if engine.app(id).unassigned_gb() <= 0.0 {
            continue;
        }
        let spec = engine.app(id).spec().clone();
        let bench = &catalog.all()[apps[i].benchmark];
        let target = dynalloc::executors_for(
            &spec,
            config.cluster.nodes,
            config.cluster.node.ram_gb,
            config.dynalloc,
        );
        let slice = spec.input_gb / target as f64;
        // Prefer empty nodes, then singly occupied ones.
        let mut nodes = engine.cluster().node_ids();
        nodes.sort_by_key(|&n| engine.node_executors(n).len());
        for node in nodes {
            if engine.app(id).unassigned_gb() <= 0.0 || engine.app(id).live_executors() >= target {
                break;
            }
            let execs = engine.node_executors(node);
            if execs.len() >= 2 {
                continue;
            }
            // One executor per app per host.
            if execs
                .iter()
                .any(|&e| engine.executor(e).map(|x| x.app()) == Ok(id))
            {
                continue;
            }
            let want = fitting_slice(
                &spec,
                slice.min(engine.app(id).unassigned_gb()),
                engine.cluster().node(node).spec().ram_gb * 0.95,
            );
            let observed = bench.true_footprint_gb(want);
            let free = engine.node_free_memory(node);
            if want < config.min_slice_gb || free < 1.0 {
                continue;
            }
            if apps[i].margin > 1.0 && observed * apps[i].margin > free {
                continue;
            }
            // First occupant books what it is observed to use; the
            // co-locating newcomer gets heap = all free memory.
            let reserve = if execs.is_empty() {
                observed.min(free)
            } else {
                free
            };
            engine.spawn_executor(id, node, want, reserve)?;
        }
    }
    Ok(())
}

fn place_predictive(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
    t: f64,
    monitor: &sparklite::monitor::ResourceMonitor,
) -> Result<(), ColocateError> {
    // Water-filling rounds: each ready application may claim at most one
    // new executor per round, earlier-submitted applications picking
    // first. This models §4.3's "starts executing waiting applications as
    // soon as possible" + even thread distribution: late arrivals are not
    // starved behind large jobs the way strict per-slot FCFS would.
    loop {
        let mut progress = false;
        for app in apps.iter() {
            if app.finished_at.is_some() || app.ready_at > t {
                continue;
            }
            let id = app.engine_id;
            if engine.app(id).unassigned_gb() <= 0.0 {
                continue;
            }
            let Some(prediction) = &app.prediction else {
                continue;
            };
            let margin = app.margin * config.reserve_margin;
            let cpu = app.measured_cpu;
            let spec = engine.app(id).spec().clone();
            let target = dynalloc::executors_for(
                &spec,
                config.cluster.nodes,
                config.cluster.node.ram_gb,
                config.dynalloc,
            );
            if engine.app(id).live_executors() >= target {
                continue;
            }
            let slice_target = spec.input_gb / target as f64;

            // Nodes with the most free memory first (§4.3: spawn on
            // servers that have spare memory).
            let mut nodes = engine.cluster().node_ids();
            nodes.sort_by(|&a, &b| {
                engine
                    .node_free_memory(b)
                    .partial_cmp(&engine.node_free_memory(a))
                    .expect("finite memory")
            });
            for node in nodes {
                if engine.node_executors(node).len() >= config.max_execs_per_node {
                    continue;
                }
                // CPU guard: aggregate load stays under the cap (§4.3).
                // The monitor's windowed view (§4.2) is consulted alongside
                // the instantaneous load so a node recovering from a burst
                // is not immediately over-packed.
                let observed_load = engine.node_cpu_load(node).max(
                    monitor
                        .windowed_cpu(node)
                        .min(engine.node_cpu_load(node) + 0.15),
                );
                if observed_load + cpu > config.cpu_cap {
                    continue;
                }
                let free = engine.node_free_memory(node);
                let remaining = engine.app(id).unassigned_gb();
                let want = slice_target.min(remaining);
                let need = prediction.model.footprint_gb(want) * margin;
                let quantize = |gb: f64| -> f64 {
                    // Whole RDD partitions only (never exceeding what was
                    // asked for; a final sub-partition tail is allowed so
                    // inputs drain completely).
                    if config.partition_gb <= 0.0 || gb <= config.partition_gb {
                        return gb;
                    }
                    (gb / config.partition_gb).floor() * config.partition_gb
                };
                let (slice, reserve) = if need <= free {
                    (want, need)
                } else {
                    match prediction.model.max_input_for_budget(free / margin) {
                        Some(x) if x.min(want) >= config.min_slice_gb => {
                            let s = quantize(x.min(want)).max(config.min_slice_gb);
                            (s, (prediction.model.footprint_gb(s) * margin).min(free))
                        }
                        _ => continue,
                    }
                };
                if engine.spawn_executor(id, node, slice, reserve)?.is_some() {
                    progress = true;
                }
                break; // one executor per app per round
            }
        }
        if !progress {
            break;
        }
    }

    // §4.3 dynamic adjustment: applications with leftover input that could
    // not obtain another executor top up a running one where the node has
    // spare memory, avoiding a fresh executor's startup cost.
    if config.dynamic_adjustment {
        for app in apps.iter() {
            if app.finished_at.is_some() || app.ready_at > t {
                continue;
            }
            let id = app.engine_id;
            if engine.app(id).unassigned_gb() <= 0.0 || engine.app(id).live_executors() == 0 {
                continue;
            }
            let Some(prediction) = &app.prediction else {
                continue;
            };
            let margin = app.margin * config.reserve_margin;
            // Top up only toward the dynalloc per-executor share: the
            // adjustment restores an executor squeezed below its fair
            // slice by an earlier memory shortage — it must not serialise
            // work that future executors would process in parallel.
            let spec = engine.app(id).spec().clone();
            let target = dynalloc::executors_for(
                &spec,
                config.cluster.nodes,
                config.cluster.node.ram_gb,
                config.dynalloc,
            );
            let slice_target = spec.input_gb / target as f64;
            // This app's executors, on the node with the most free memory
            // first.
            let mut candidates: Vec<_> = engine
                .cluster()
                .node_ids()
                .into_iter()
                .flat_map(|n| engine.node_executors(n))
                .filter(|&e| engine.executor(e).map(|x| x.app()) == Ok(id))
                .collect();
            candidates.sort_by(|&a, &b| {
                let fa = engine.node_free_memory(engine.executor(a).expect("live").node());
                let fb = engine.node_free_memory(engine.executor(b).expect("live").node());
                fb.partial_cmp(&fa).expect("finite memory")
            });
            for exec_id in candidates {
                let remaining = engine.app(id).unassigned_gb();
                if remaining <= config.min_slice_gb {
                    break;
                }
                let (node, slice, reserved) = {
                    let e = engine.executor(exec_id).expect("live executor");
                    (e.node(), e.slice_gb(), e.reserved_gb())
                };
                let free = engine.node_free_memory(node);
                if free <= 0.5 {
                    continue;
                }
                // Grow toward what the whole budget (current + free) can
                // host, bounded by the remaining input.
                let budget = (reserved + free) / margin;
                let Some(max_slice) = prediction.model.max_input_for_budget(budget) else {
                    continue;
                };
                let extra = (max_slice.min(slice_target) - slice).min(remaining);
                if extra < config.min_slice_gb.max(config.partition_gb) {
                    continue;
                }
                let new_need = prediction.model.footprint_gb(slice + extra) * margin;
                let extra_reserve = (new_need - reserved).clamp(0.0, free);
                if engine
                    .extend_executor(exec_id, extra, extra_reserve)
                    .is_ok()
                {
                    // One extension per app per round keeps growth fair.
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Kills executors until no node is out of memory; raises the owning
/// application's margin so its re-run is conservative.
fn resolve_ooms(
    engine: &mut ClusterEngine,
    apps: &mut [AppRt],
    config: &SchedulerConfig,
) -> Result<usize, ColocateError> {
    let mut kills = 0;
    for node in engine.cluster().node_ids() {
        while matches!(engine.memory_pressure(node), MemoryPressure::OutOfMemory) {
            let Some(victim) = engine.oom_victim(node) else {
                break;
            };
            let owner = engine.executor(victim)?.app();
            engine.kill_executor(victim)?;
            if let Some(app) = apps.iter_mut().find(|a| a.engine_id == owner) {
                app.margin = (app.margin * 1.5).min(3.0).max(config.conservative_margin);
            }
            kills += 1;
        }
    }
    Ok(kills)
}

/// Helper: a forked seed for the engine.
trait NextSeed {
    fn next_u64_seed(&mut self) -> u64;
}

impl NextSeed for SimRng {
    fn next_u64_seed(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_system;
    use workloads::mixes::{InputSize, MixEntry};

    fn small_config() -> SchedulerConfig {
        SchedulerConfig {
            cluster: ClusterSpec::small(4),
            ..Default::default()
        }
    }

    fn mix_of(catalog: &Catalog, names: &[(&str, InputSize)]) -> Vec<MixEntry> {
        names
            .iter()
            .map(|(n, s)| MixEntry {
                benchmark: catalog.by_name(n).unwrap().index(),
                size: *s,
            })
            .collect()
    }

    #[test]
    fn isolated_runs_apps_sequentially() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Medium),
            ],
        );
        let out = run_schedule(
            PolicyKind::Isolated,
            &catalog,
            &mix,
            None,
            &small_config(),
            1,
        )
        .unwrap();
        assert_eq!(out.per_app.len(), 2);
        // Sequential: second finishes after the first.
        assert!(out.per_app[1].finished_at > out.per_app[0].finished_at);
        assert_eq!(out.oom_kills, 0);
        assert!(out.makespan_secs > 0.0);
    }

    #[test]
    fn oracle_colocation_beats_isolated_makespan() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Medium),
                ("SP.glm-regression", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
            ],
        );
        let cfg = small_config();
        let iso = run_schedule(PolicyKind::Isolated, &catalog, &mix, None, &cfg, 1).unwrap();
        let orc = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 1).unwrap();
        assert!(
            orc.makespan_secs < iso.makespan_secs * 0.8,
            "oracle {:.0}s vs isolated {:.0}s",
            orc.makespan_secs,
            iso.makespan_secs
        );
    }

    #[test]
    fn moe_schedules_mixed_workloads() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(5);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        let mix = mix_of(
            &catalog,
            &[
                ("SB.Hive", InputSize::Medium),
                ("SP.Kmeans", InputSize::Medium),
                ("HB.Scan", InputSize::Small),
            ],
        );
        let out = run_schedule(
            PolicyKind::Moe,
            &catalog,
            &mix,
            Some(&system),
            &small_config(),
            2,
        )
        .unwrap();
        assert_eq!(out.per_app.len(), 3);
        // Profiling happened: ready_at > 0 and cost recorded.
        assert!(out.per_app.iter().all(|a| a.ready_at > 0.0));
        assert!(out.per_app.iter().all(|a| a.profiling.total_secs() > 0.0));
    }

    #[test]
    fn pairwise_never_exceeds_two_executors_per_node() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.Scan", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
                ("HB.WordCount", InputSize::Medium),
            ],
        );
        // Indirect check: pairwise completes and beats isolated, but not by
        // more than 2x concurrency allows on this cluster.
        let cfg = small_config();
        let iso = run_schedule(PolicyKind::Isolated, &catalog, &mix, None, &cfg, 3).unwrap();
        let pw = run_schedule(PolicyKind::Pairwise, &catalog, &mix, None, &cfg, 3).unwrap();
        assert!(pw.makespan_secs <= iso.makespan_secs);
    }

    #[test]
    fn predictive_policies_require_training_where_applicable() {
        let catalog = Catalog::paper();
        let mix = mix_of(&catalog, &[("HB.Sort", InputSize::Small)]);
        let err = run_schedule(PolicyKind::Moe, &catalog, &mix, None, &small_config(), 1);
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn empty_mix_is_rejected() {
        let catalog = Catalog::paper();
        let err = run_schedule(
            PolicyKind::Isolated,
            &catalog,
            &[],
            None,
            &small_config(),
            1,
        );
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn online_search_is_slower_than_oracle() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("BDB.Grep", InputSize::Medium),
                ("HB.WordCount", InputSize::Medium),
            ],
        );
        let cfg = small_config();
        let orc = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 4).unwrap();
        let online = run_schedule(PolicyKind::OnlineSearch, &catalog, &mix, None, &cfg, 4).unwrap();
        assert!(online.makespan_secs > orc.makespan_secs);
    }

    #[test]
    fn dynamic_adjustment_tops_up_memory_capped_executors() {
        // One node; a memory-hungry app whose first slice is budget-capped
        // because a co-runner holds memory. When the co-runner finishes,
        // the hungry app's executor is extended rather than a new one
        // spawned (saving startup), so it finishes with few executors.
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("BDB.PageRank", InputSize::Medium), // log family, hungry
                ("HB.Scan", InputSize::Medium),      // small footprints
            ],
        );
        let cfg_on = SchedulerConfig {
            cluster: ClusterSpec::small(1),
            ..Default::default()
        };
        let cfg_off = SchedulerConfig {
            dynamic_adjustment: false,
            ..cfg_on.clone()
        };
        let on = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg_on, 2).unwrap();
        let off = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg_off, 2).unwrap();
        // Both complete; the adjusted schedule is no slower (it saves
        // startup costs when it fires).
        assert!(on.per_app.iter().all(|a| a.finished_at > 0.0));
        assert!(off.per_app.iter().all(|a| a.finished_at > 0.0));
        assert!(
            on.makespan_secs <= off.makespan_secs + 1.0,
            "adjusted {:.0}s vs plain {:.0}s",
            on.makespan_secs,
            off.makespan_secs
        );
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let catalog = Catalog::paper();
        let mix = mix_of(
            &catalog,
            &[
                ("HB.Sort", InputSize::Medium),
                ("HB.PageRank", InputSize::Small),
            ],
        );
        let cfg = small_config();
        let a = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 9).unwrap();
        let b = run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &cfg, 9).unwrap();
        assert_eq!(a.makespan_secs, b.makespan_secs);
        for (x, y) in a.per_app.iter().zip(b.per_app.iter()) {
            assert_eq!(x.finished_at, y.finished_at);
        }
    }
}
