//! Memory predictors: the paper's mixture-of-experts scheme and every
//! comparative estimator of the evaluation.
//!
//! A predictor turns an [`AppProfile`] (features + two calibration points)
//! into a [`FootprintModel`] the job dispatcher queries in both directions:
//! *footprint of a slice* and *largest slice under a budget*.
//!
//! | Predictor | Paper role |
//! |---|---|
//! | [`MoePolicy`] | our approach (§3–4) |
//! | [`Oracle`] | ideal predictor (§5.4) |
//! | [`UnifiedFamily`] | single-family baselines of Fig. 9 |
//! | [`AnnPredictor`] | the unified 3-layer ANN of Fig. 9 |
//! | [`QuasarPredictor`] | Quasar-style classification against historical workloads (§5.4) |

use crate::profiling::AppProfile;
use crate::training::TrainedSystem;
use crate::ColocateError;
use mlkit::mlp::{Mlp, MlpParams};
use mlkit::regression::{CurveFamily, FittedCurve};
use mlkit::scaling::MinMaxScaler;
use moe_core::calibration::CalibratedModel;
use moe_core::expert::{CurveExpert, MemoryExpert};
use moe_core::features::FeatureVector;
use moe_core::{MoeError, MoePredictor, Selection};
use simkit::SimRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use workloads::catalog::Catalog;
use workloads::signatures;

/// A calibrated, queryable memory model for one application.
pub trait FootprintModel: fmt::Debug {
    /// Predicted footprint (GB) of an executor holding `slice_gb`.
    fn footprint_gb(&self, slice_gb: f64) -> f64;

    /// Largest slice (GB) whose predicted footprint fits `budget_gb`;
    /// `None` when nothing fits, `f64::INFINITY` when everything does.
    fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64>;
}

impl FootprintModel for CalibratedModel {
    fn footprint_gb(&self, slice_gb: f64) -> f64 {
        CalibratedModel::footprint_gb(self, slice_gb)
    }

    fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64> {
        CalibratedModel::max_input_for_budget(self, budget_gb)
    }
}

/// A predictor's verdict for one application.
#[derive(Debug)]
pub struct Prediction {
    /// The calibrated model.
    pub model: Box<dyn FootprintModel>,
    /// Whether the predictor itself flags the prediction as
    /// low-confidence (KNN distance beyond threshold, §6.9); the
    /// dispatcher then over-provisions conservatively.
    pub low_confidence: bool,
    /// Predictor-supplied CPU-demand estimate overriding the measured
    /// value. Only the Quasar baseline sets this: it classifies *all*
    /// resource demands from the nearest historical workload instead of
    /// per-application measurement.
    pub cpu_estimate: Option<f64>,
}

/// A memory predictor: profile in, model out.
pub trait MemoryPredictor: fmt::Debug {
    /// Short name used in reports ("Our Approach", "Quasar", ...).
    fn name(&self) -> &str;

    /// Whether the dispatcher must run the profiling pipeline before
    /// calling [`MemoryPredictor::predict`] (the Oracle needs nothing).
    fn needs_profiling(&self) -> bool {
        true
    }

    /// Produces a model for the profiled application.
    ///
    /// # Errors
    ///
    /// Returns an error only for internal inconsistencies; predictors are
    /// expected to fall back to robust fits on degenerate calibration
    /// points rather than fail.
    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError>;

    /// Produces models for a whole batch of profiled applications, in
    /// order — `colocate::service::run_service` hands every job arriving
    /// in the same event-loop pass here. The default implementation is
    /// the per-profile scalar loop, so every predictor behaves exactly as
    /// before; the MoE overrides it with the whole-matrix serving path,
    /// which is bitwise identical to the scalar loop (see
    /// [`PredictionTable::select_cached_batch`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`MemoryPredictor::predict`].
    fn predict_batch(&self, profiles: &[&AppProfile]) -> Result<Vec<Prediction>, ColocateError> {
        profiles.iter().map(|p| self.predict(p)).collect()
    }
}

/// Calibrates `expert` on two points, falling back to a least-squares fit
/// through the same two points when the exact solve is infeasible (e.g. a
/// saturating exponential whose measured ratio is pushed out of range by
/// noise), and to a two-point linear solve as a last resort.
///
/// # Errors
///
/// Returns [`ColocateError::Predictor`] only if even the linear fallback
/// fails (coincident calibration points).
pub fn robust_calibrate(
    expert: &dyn MemoryExpert,
    p1: (f64, f64),
    p2: (f64, f64),
) -> Result<CalibratedModel, ColocateError> {
    if let Ok(model) = expert.calibrate(p1, p2) {
        return Ok(model);
    }
    if let Ok(model) = expert.fit(&[p1.0, p2.0], &[p1.1, p2.1]) {
        return Ok(model);
    }
    let linear = CurveExpert::new(CurveFamily::Linear);
    linear.calibrate(p1, p2).map_err(ColocateError::from)
}

// ---------------------------------------------------------------------------
// Campaign-wide selection cache.
// ---------------------------------------------------------------------------

/// A campaign-wide cache of expert selections.
///
/// Expert selection ([`MoePredictor::select`]) is a pure function of the
/// trained selector and the exact bits of the query features, so its result
/// can be memoised. A table is created once per [`TrainedSystem`] and shared
/// by every clone of that system — across policies built from it and across
/// mix replays — through an `Arc`, so the scaling + PCA + KNN pipeline runs
/// at most once per distinct feature vector per campaign binding.
///
/// Keys are the `f64::to_bits` patterns of the raw features, which makes a
/// hit bit-identical to re-running the selection; replay outputs therefore
/// stay invariant to worker count and replay order. Errors are never
/// cached.
#[derive(Debug, Default)]
pub struct PredictionTable {
    entries: Mutex<HashMap<Vec<u64>, Selection>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        PredictionTable::default()
    }

    /// Returns the cached selection for `features`, running
    /// `predictor.select` and caching the result on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`MoePredictor::select`] failures (which are not cached).
    pub fn select_cached(
        &self,
        predictor: &MoePredictor,
        features: &FeatureVector,
    ) -> Result<Selection, MoeError> {
        let key: Vec<u64> = features.as_slice().iter().map(|v| v.to_bits()).collect();
        {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&hit) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        let selection = predictor.select(features)?;
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, selection);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(selection)
    }

    /// The batched form of [`PredictionTable::select_cached`]: resolves a
    /// whole slice of feature vectors, answering what it can from the
    /// cache and running **one** [`MoePredictor::select_batch`] call over
    /// the distinct uncached vectors.
    ///
    /// Results and the hit/miss counters are exactly what the equivalent
    /// sequence of scalar `select_cached` calls produces: an in-batch
    /// duplicate of a pending miss counts as a hit (the sequential caller
    /// would have found the first occurrence already inserted), and each
    /// distinct uncached vector counts as one miss. Selections are bitwise
    /// identical because the batched selector pipeline is (see
    /// [`ExpertSelector::select_batch`](moe_core::selector::ExpertSelector::select_batch)).
    ///
    /// # Errors
    ///
    /// Propagates [`MoePredictor::select_batch`] failures; nothing is
    /// cached or counted as a miss on failure.
    pub fn select_cached_batch(
        &self,
        predictor: &MoePredictor,
        features: &[&FeatureVector],
    ) -> Result<Vec<Selection>, MoeError> {
        let keys: Vec<Vec<u64>> = features
            .iter()
            .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        // Per slot: Ok(cached selection) or Err(index into the pending
        // miss list). Built under one lock so the hit accounting matches
        // the sequential scalar calls exactly.
        let mut slots: Vec<Result<Selection, usize>> = Vec::with_capacity(features.len());
        let mut unique: Vec<usize> = Vec::new();
        let mut pending: HashMap<&[u64], usize> = HashMap::new();
        {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            for (i, key) in keys.iter().enumerate() {
                if let Some(&hit) = entries.get(key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    slots.push(Ok(hit));
                } else if let Some(&u) = pending.get(key.as_slice()) {
                    // A sequential caller would have inserted the first
                    // occurrence before looking this one up: a hit.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    slots.push(Err(u));
                } else {
                    pending.insert(key.as_slice(), unique.len());
                    slots.push(Err(unique.len()));
                    unique.push(i);
                }
            }
        }
        let miss_features: Vec<FeatureVector> =
            unique.iter().map(|&i| features[i].clone()).collect();
        let fresh = predictor.select_batch(&miss_features)?;
        if fresh.len() != unique.len() {
            return Err(MoeError::InvalidTraining(
                "select_batch returned a mismatched result count".into(),
            ));
        }
        {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            for (&i, sel) in unique.iter().zip(fresh.iter()) {
                entries.insert(keys[i].clone(), *sel);
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Ok(sel) => sel,
                Err(u) => fresh[u],
            })
            .collect())
    }

    /// Number of distinct feature vectors cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the table has cached nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the full selection pipeline.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Our approach.
// ---------------------------------------------------------------------------

/// The paper's mixture-of-experts predictor.
#[derive(Debug)]
pub struct MoePolicy {
    system: TrainedSystem,
}

impl MoePolicy {
    /// Wraps a trained system.
    #[must_use]
    pub fn new(system: TrainedSystem) -> Self {
        MoePolicy { system }
    }

    /// The underlying trained system.
    #[must_use]
    pub fn system(&self) -> &TrainedSystem {
        &self.system
    }
}

impl MemoryPredictor for MoePolicy {
    fn name(&self) -> &str {
        "Our Approach"
    }

    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError> {
        // Selection is memoised campaign-wide: every clone of this system
        // shares the table, so repeated queries for the same feature bits
        // skip the scaling + PCA + KNN pipeline entirely.
        let selection = self
            .system
            .selections
            .select_cached(&self.system.predictor, &profile.features)?;
        let expert = self.system.predictor.registry().get(selection.expert)?;
        let model = robust_calibrate(expert, profile.calibration[0], profile.calibration[1])?;
        Ok(Prediction {
            model: Box::new(model),
            low_confidence: selection.low_confidence,
            cpu_estimate: None,
        })
    }

    fn predict_batch(&self, profiles: &[&AppProfile]) -> Result<Vec<Prediction>, ColocateError> {
        // The serving path: one cached-batch selection over every profile
        // (whole-matrix scaling + PCA + KNN for the uncached ones), then
        // the same per-job calibration as the scalar path. Bitwise
        // identical to calling `predict` once per profile, in order.
        let features: Vec<&FeatureVector> = profiles.iter().map(|p| &p.features).collect();
        let selections = self
            .system
            .selections
            .select_cached_batch(&self.system.predictor, &features)?;
        profiles
            .iter()
            .zip(selections)
            .map(|(profile, selection)| {
                let expert = self.system.predictor.registry().get(selection.expert)?;
                let model =
                    robust_calibrate(expert, profile.calibration[0], profile.calibration[1])?;
                Ok(Prediction {
                    model: Box::new(model),
                    low_confidence: selection.low_confidence,
                    cpu_estimate: None,
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------------

/// The ideal predictor: returns each application's ground-truth curve with
/// no profiling cost (§5.4).
#[derive(Debug)]
pub struct Oracle {
    curves: Vec<FittedCurve>,
}

impl Oracle {
    /// Builds the oracle from the catalog's ground truth.
    #[must_use]
    pub fn new(catalog: &Catalog) -> Self {
        Oracle {
            curves: catalog.all().iter().map(|b| b.curve()).collect(),
        }
    }
}

impl MemoryPredictor for Oracle {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn needs_profiling(&self) -> bool {
        false
    }

    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError> {
        let curve = self.curves.get(profile.benchmark).ok_or_else(|| {
            ColocateError::Config(format!("oracle knows no benchmark #{}", profile.benchmark))
        })?;
        Ok(Prediction {
            model: Box::new(CalibratedModel::from_curve(*curve)),
            low_confidence: false,
            cpu_estimate: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Unified single-family baselines (Fig. 9).
// ---------------------------------------------------------------------------

/// A unified model that fits *every* application with one fixed family.
#[derive(Debug)]
pub struct UnifiedFamily {
    family: CurveFamily,
    expert: CurveExpert,
}

impl UnifiedFamily {
    /// Creates the baseline for one Table 1 family.
    #[must_use]
    pub fn new(family: CurveFamily) -> Self {
        UnifiedFamily {
            family,
            expert: CurveExpert::new(family),
        }
    }
}

impl MemoryPredictor for UnifiedFamily {
    fn name(&self) -> &str {
        self.family.name()
    }

    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError> {
        let model = robust_calibrate(&self.expert, profile.calibration[0], profile.calibration[1])?;
        Ok(Prediction {
            model: Box::new(model),
            low_confidence: false,
            cpu_estimate: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Unified ANN baseline (Fig. 9).
// ---------------------------------------------------------------------------

/// A single 3-layer neural network trained to predict footprints from
/// runtime features plus input size (Fig. 9 "ANN").
#[derive(Debug)]
pub struct AnnPredictor {
    scaler: MinMaxScaler,
    net: Mlp,
    /// Footprints were scaled to [0, 1] over this range for training.
    y_max: f64,
}

/// Model wrapper for the ANN (inverse via logarithmic grid search since a
/// neural net has no closed-form inverse and no monotonicity guarantee).
#[derive(Debug)]
struct AnnModel {
    scaler: MinMaxScaler,
    net: Mlp,
    features: Vec<f64>,
    y_max: f64,
}

impl AnnPredictor {
    /// Trains the unified ANN on the same training benchmarks and profile
    /// sizes as the mixture-of-experts system.
    ///
    /// # Errors
    ///
    /// Propagates mlkit training failures.
    pub fn train(
        catalog: &Catalog,
        training: &[usize],
        profile_sizes_gb: &[f64],
        noise_sd: f64,
        rng: &mut SimRng,
    ) -> Result<Self, ColocateError> {
        let mut raw_inputs = Vec::new();
        let mut targets = Vec::new();
        let mut y_max: f64 = 1e-9;
        for &idx in training {
            let bench = &catalog.all()[idx];
            let features = signatures::observe_default(bench, rng);
            for &x in profile_sizes_gb {
                let mut row = features.as_slice().to_vec();
                row.push((1.0 + x).ln());
                let y = bench.true_footprint_gb(x) * rng.relative_noise(noise_sd);
                y_max = y_max.max(y);
                raw_inputs.push(row);
                targets.push(y);
            }
        }
        let scaler = MinMaxScaler::fit(&raw_inputs)?;
        let scaled = scaler.transform_batch(&raw_inputs)?;
        let scaled_targets: Vec<f64> = targets.iter().map(|y| y / y_max).collect();
        let net = Mlp::fit_regressor(
            &scaled,
            &scaled_targets,
            MlpParams {
                hidden: 24,
                learning_rate: 0.02,
                epochs: 400,
                seed: 0xA44,
            },
        )?;
        Ok(AnnPredictor { scaler, net, y_max })
    }
}

impl MemoryPredictor for AnnPredictor {
    fn name(&self) -> &str {
        "ANN"
    }

    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError> {
        Ok(Prediction {
            model: Box::new(AnnModel {
                scaler: self.scaler.clone(),
                net: self.net.clone(),
                features: profile.features.as_slice().to_vec(),
                y_max: self.y_max,
            }),
            low_confidence: false,
            cpu_estimate: None,
        })
    }
}

impl FootprintModel for AnnModel {
    fn footprint_gb(&self, slice_gb: f64) -> f64 {
        let mut row = self.features.clone();
        row.push((1.0 + slice_gb.max(0.0)).ln());
        let scaled = self.scaler.transform(&row).expect("fixed arity");
        let y = self.net.predict_value(&scaled).expect("fixed arity");
        (y * self.y_max).max(0.0)
    }

    fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64> {
        if budget_gb <= 0.0 {
            return None;
        }
        // Largest grid slice whose prediction fits; log grid 10 MB–1 TB.
        let mut best: Option<f64> = None;
        for i in 0..=120 {
            let x = 0.01 * (1000.0 / 0.01_f64).powf(i as f64 / 120.0);
            if self.footprint_gb(x) <= budget_gb {
                best = Some(x);
            }
        }
        best
    }
}

// ---------------------------------------------------------------------------
// Quasar-style baseline (§5.4).
// ---------------------------------------------------------------------------

/// A Quasar-style estimator built the way Quasar actually works:
/// **collaborative filtering**. Historical workloads form a dense
/// `programs × input-sizes` footprint matrix; a truncated SVD learns how
/// profiles co-vary; an incoming application's two quick profiling
/// measurements select its position in that low-rank space and the full
/// profile is reconstructed ([`mlkit::svd::TruncatedSvd::complete_row`]).
/// CPU demand is classified from the nearest historical workload. Unlike
/// the mixture-of-experts approach there is no per-application selection
/// of a *memory-function family* — one shared low-rank model covers
/// everything, which is exactly the "single monolithic model" limitation
/// §7.1 attributes to it.
#[derive(Debug)]
pub struct QuasarPredictor {
    scaler: MinMaxScaler,
    exemplars: Vec<Vec<f64>>,
    cpus: Vec<f64>,
    svd: mlkit::svd::TruncatedSvd,
    grid: Vec<f64>,
}

impl QuasarPredictor {
    /// Builds the estimator from the trained system's historical profiles:
    /// the footprint matrix is sampled from each program's offline-fitted
    /// curve over a log-spaced size grid, then decomposed.
    ///
    /// # Errors
    ///
    /// Propagates scaler-fitting and SVD failures.
    pub fn new(system: &TrainedSystem) -> Result<Self, ColocateError> {
        let raw: Vec<Vec<f64>> = system
            .programs
            .iter()
            .map(|p| p.features.as_slice().to_vec())
            .collect();
        let scaler = MinMaxScaler::fit(&raw)?;
        let exemplars = scaler.transform_batch(&raw)?;

        // The historical profile matrix: programs × grid sizes.
        let grid: Vec<f64> = crate::training::TrainingConfig::default().profile_sizes_gb;
        let rows: Vec<Vec<f64>> = system
            .fitted_curves
            .iter()
            .map(|curve| grid.iter().map(|&x| curve.eval(x).max(0.0)).collect())
            .collect();
        let matrix = mlkit::linalg::Matrix::from_rows(rows);
        let svd = mlkit::svd::truncated_svd(&matrix, 2, 300)?;
        Ok(QuasarPredictor {
            scaler,
            exemplars,
            cpus: system.program_cpus.clone(),
            svd,
            grid,
        })
    }
}

/// The reconstructed profile as a footprint model: monotone piecewise
/// linear over the size grid, extrapolating the last segment's slope.
#[derive(Debug)]
struct GridModel {
    grid: Vec<f64>,
    footprints: Vec<f64>,
}

impl GridModel {
    fn new(grid: Vec<f64>, mut footprints: Vec<f64>) -> Self {
        // Enforce monotone non-decreasing, non-negative profiles: the
        // reconstruction can wiggle where the basis is weak.
        let mut run_max = 0.0f64;
        for f in &mut footprints {
            run_max = run_max.max(f.max(0.0));
            *f = run_max;
        }
        GridModel { grid, footprints }
    }
}

impl FootprintModel for GridModel {
    fn footprint_gb(&self, slice_gb: f64) -> f64 {
        let n = self.grid.len();
        if slice_gb <= self.grid[0] {
            // Scale toward zero below the grid.
            return self.footprints[0] * (slice_gb / self.grid[0]).clamp(0.0, 1.0);
        }
        for w in 0..n - 1 {
            if slice_gb <= self.grid[w + 1] {
                let t = (slice_gb - self.grid[w]) / (self.grid[w + 1] - self.grid[w]);
                return self.footprints[w] + t * (self.footprints[w + 1] - self.footprints[w]);
            }
        }
        // Extrapolate the last segment's slope.
        let slope = (self.footprints[n - 1] - self.footprints[n - 2])
            / (self.grid[n - 1] - self.grid[n - 2]).max(1e-12);
        (self.footprints[n - 1] + slope * (slice_gb - self.grid[n - 1])).max(0.0)
    }

    fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64> {
        if budget_gb <= 0.0 {
            return None;
        }
        // Walk the monotone profile; binary precision is unnecessary at
        // scheduling granularity.
        let mut best = None;
        let mut x = self.grid[0] * 0.1;
        let hi = self.grid.last().copied().unwrap_or(1.0) * 16.0;
        while x <= hi {
            if self.footprint_gb(x) <= budget_gb {
                best = Some(x);
            } else {
                break;
            }
            x *= 1.05;
        }
        best
    }
}

impl MemoryPredictor for QuasarPredictor {
    fn name(&self) -> &str {
        "Quasar"
    }

    fn predict(&self, profile: &AppProfile) -> Result<Prediction, ColocateError> {
        // CPU demand: classified from the nearest historical workload.
        // Squared distances rank identically to distances (sqrt is
        // monotone and injective on non-negatives, ties included), so each
        // exemplar costs one fused pass instead of the two full `euclidean`
        // evaluations the old comparator re-ran per comparison. `min_by`
        // keeps the first of equal minima either way.
        let scaled = self.scaler.transform(profile.features.as_slice())?;
        let nearest = self
            .exemplars
            .iter()
            .map(|e| mlkit::linalg::euclidean_sq(e, &scaled))
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .ok_or_else(|| ColocateError::Config("Quasar has no historical workloads".into()))?;
        if self.grid.is_empty() {
            return Err(ColocateError::Config(
                "Quasar has an empty size grid".into(),
            ));
        }

        // Memory profile: collaborative filtering. Map the two calibration
        // measurements onto the nearest grid columns and complete the row
        // in the historical low-rank space.
        let nearest_col = |x: f64| {
            let lx = x.max(1e-9).ln();
            self.grid
                .iter()
                .map(|a| (a.ln() - lx).abs())
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                // Unreachable fallback: the grid was verified non-empty.
                .map_or(0, |(i, _)| i)
        };
        let mut observed: Vec<(usize, f64)> = Vec::new();
        for &(x, y) in &profile.calibration {
            let col = nearest_col(x);
            if !observed.iter().any(|&(c, _)| c == col) {
                observed.push((col, y));
            }
        }
        let footprints = self
            .svd
            .complete_row(&observed)
            .map_err(ColocateError::from)?;
        Ok(Prediction {
            model: Box::new(GridModel::new(self.grid.clone(), footprints)),
            low_confidence: false,
            cpu_estimate: Some(self.cpus[nearest]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::{profile_app, ProfilingConfig};
    use crate::training::{train_system, TrainingConfig};

    fn setup() -> (Catalog, TrainedSystem, SimRng) {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(42);
        let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
        (catalog, system, rng)
    }

    fn profile_of(catalog: &Catalog, name: &str, input: f64, rng: &mut SimRng) -> AppProfile {
        let bench = catalog.by_name(name).unwrap();
        let spec = sparklite::ClusterSpec::paper_cluster();
        profile_app(
            bench,
            input,
            spec.nodes,
            spec.node.ram_gb,
            &ProfilingConfig::default(),
            rng,
        )
        .0
    }

    #[test]
    fn moe_predicts_accurate_footprints() {
        let (catalog, system, mut rng) = setup();
        let moe = MoePolicy::new(system);
        for name in ["SB.TriangleCount", "SP.glm-regression", "SB.Hive"] {
            let bench = catalog.by_name(name).unwrap();
            let profile = profile_of(&catalog, name, 30.0, &mut rng);
            let pred = moe.predict(&profile).unwrap();
            let slice = profile.expected_slice_gb;
            let truth = bench.true_footprint_gb(slice);
            let got = pred.model.footprint_gb(slice);
            let err = (got - truth).abs() / truth;
            assert!(err < 0.15, "{name}: predicted {got:.2}, truth {truth:.2}");
        }
    }

    #[test]
    fn prediction_table_is_shared_across_clones_and_bit_identical() {
        let (catalog, system, mut rng) = setup();
        let profile = profile_of(&catalog, "SB.TriangleCount", 30.0, &mut rng);
        // Direct selection, bypassing the table, as the reference bits.
        let direct = system.predictor.select(&profile.features).unwrap();
        assert!(system.selections.is_empty());

        // Two policies cloned from the same binding share one table.
        let moe_a = MoePolicy::new(system.clone());
        let moe_b = MoePolicy::new(system.clone());
        moe_a.predict(&profile).unwrap();
        assert_eq!(
            (system.selections.misses(), system.selections.hits()),
            (1, 0)
        );
        moe_b.predict(&profile).unwrap();
        assert_eq!(
            (system.selections.misses(), system.selections.hits()),
            (1, 1)
        );
        assert_eq!(system.selections.len(), 1);

        // A cache hit returns the stored selection bit for bit.
        let cached = system
            .selections
            .select_cached(&system.predictor, &profile.features)
            .unwrap();
        assert_eq!(cached.expert, direct.expert);
        assert_eq!(cached.distance.to_bits(), direct.distance.to_bits());
        assert_eq!(cached.low_confidence, direct.low_confidence);
        assert_eq!(system.selections.hits(), 2);
    }

    #[test]
    fn predict_batch_matches_sequential_predict_bitwise() {
        let (catalog, system_a, mut rng_a) = setup();
        let (_, system_b, mut rng_b) = setup();
        let names = [
            "SB.TriangleCount",
            "SP.glm-regression",
            "SB.Hive",
            "HB.PageRank",
        ];
        let mut profiles_a: Vec<AppProfile> = names
            .iter()
            .map(|n| profile_of(&catalog, n, 30.0, &mut rng_a))
            .collect();
        let mut profiles_b: Vec<AppProfile> = names
            .iter()
            .map(|n| profile_of(&catalog, n, 30.0, &mut rng_b))
            .collect();
        // An exact in-batch duplicate of a pending miss: same feature bits.
        profiles_a.push(profiles_a[0].clone());
        profiles_b.push(profiles_b[0].clone());

        // Reference: scalar predictions, one at a time, on system A.
        let moe_a = MoePolicy::new(system_a.clone());
        let scalar: Vec<Prediction> = profiles_a
            .iter()
            .map(|p| moe_a.predict(p).unwrap())
            .collect();

        // Batched path on an independently trained (identical) system B.
        let moe_b = MoePolicy::new(system_b.clone());
        let refs: Vec<&AppProfile> = profiles_b.iter().collect();
        let batched = moe_b.predict_batch(&refs).unwrap();

        assert_eq!(batched.len(), scalar.len());
        for (i, (s, b)) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(s.low_confidence, b.low_confidence, "row {i}");
            for x in [0.5, 5.0, 30.0, 240.0] {
                assert_eq!(
                    s.model.footprint_gb(x).to_bits(),
                    b.model.footprint_gb(x).to_bits(),
                    "row {i} at x={x}"
                );
            }
        }
        // Counter accounting matches the sequential calls: the duplicate
        // TriangleCount profile is a hit in both worlds.
        assert_eq!(
            (system_a.selections.misses(), system_a.selections.hits()),
            (system_b.selections.misses(), system_b.selections.hits()),
        );
        assert_eq!(system_b.selections.hits(), 1);
        assert_eq!(system_b.selections.misses(), 4);

        // A second batched pass is all hits and still bitwise stable.
        let again = moe_b.predict_batch(&refs).unwrap();
        assert_eq!(system_b.selections.hits(), 1 + refs.len() as u64);
        for (s, b) in scalar.iter().zip(again.iter()) {
            assert_eq!(
                s.model.footprint_gb(30.0).to_bits(),
                b.model.footprint_gb(30.0).to_bits()
            );
        }
    }

    #[test]
    fn oracle_is_exact_and_free() {
        let (catalog, _, mut rng) = setup();
        let oracle = Oracle::new(&catalog);
        assert!(!oracle.needs_profiling());
        let bench = catalog.by_name("HB.PageRank").unwrap();
        let profile = profile_of(&catalog, "HB.PageRank", 30.0, &mut rng);
        let pred = oracle.predict(&profile).unwrap();
        for x in [0.5, 5.0, 30.0] {
            assert_eq!(pred.model.footprint_gb(x), bench.true_footprint_gb(x));
        }
    }

    #[test]
    fn unified_wrong_family_is_less_accurate_than_moe() {
        let (catalog, system, mut rng) = setup();
        let moe = MoePolicy::new(system);
        let linear_only = UnifiedFamily::new(CurveFamily::Linear);
        // HB.PageRank is logarithmic; a linear unified model extrapolates
        // badly beyond the calibration points.
        let bench = catalog.by_name("HB.PageRank").unwrap();
        let profile = profile_of(&catalog, "HB.PageRank", 1000.0, &mut rng);
        let slice = profile.expected_slice_gb;
        let truth = bench.true_footprint_gb(slice);
        let moe_err = (moe.predict(&profile).unwrap().model.footprint_gb(slice) - truth).abs();
        let lin_err = (linear_only
            .predict(&profile)
            .unwrap()
            .model
            .footprint_gb(slice)
            - truth)
            .abs();
        assert!(
            moe_err < lin_err,
            "moe {moe_err:.2} GB vs linear {lin_err:.2} GB"
        );
    }

    #[test]
    fn ann_learns_rough_footprints() {
        let (catalog, system, mut rng) = setup();
        let sizes = TrainingConfig::default().profile_sizes_gb;
        let ann = AnnPredictor::train(&catalog, &system.program_benchmarks, &sizes, 0.01, &mut rng)
            .unwrap();
        let bench = catalog.by_name("HB.Sort").unwrap();
        let profile = profile_of(&catalog, "HB.Sort", 30.0, &mut rng);
        let pred = ann.predict(&profile).unwrap();
        let truth = bench.true_footprint_gb(10.0);
        let got = pred.model.footprint_gb(10.0);
        assert!(
            (got - truth).abs() / truth < 0.6,
            "ANN wildly off: {got:.2} vs {truth:.2}"
        );
    }

    #[test]
    fn quasar_uses_nearest_historical_curve() {
        let (catalog, system, mut rng) = setup();
        let quasar = QuasarPredictor::new(&system).unwrap();
        let profile = profile_of(&catalog, "SP.Kmeans", 30.0, &mut rng);
        let pred = quasar.predict(&profile).unwrap();
        // SP.Kmeans is logarithmic; its nearest training programs are the
        // log-family cluster, so predictions are in a sane range.
        let bench = catalog.by_name("SP.Kmeans").unwrap();
        let slice = profile.expected_slice_gb;
        let truth = bench.true_footprint_gb(slice);
        let got = pred.model.footprint_gb(slice);
        assert!(got > 0.3 * truth && got < 3.0 * truth, "{got} vs {truth}");
    }

    #[test]
    fn quasar_grid_model_is_monotone_and_inverse_feasible() {
        let (catalog, system, mut rng) = setup();
        let quasar = QuasarPredictor::new(&system).unwrap();
        for name in ["SP.Kmeans", "HB.Sort", "SB.TriangleCount", "SP.Pearson"] {
            let profile = profile_of(&catalog, name, 30.0, &mut rng);
            let model = quasar.predict(&profile).unwrap().model;
            // Monotone non-decreasing over a wide sweep.
            let mut last = 0.0;
            for i in 0..60 {
                let x = 0.01 * 1.25f64.powi(i);
                let fp = model.footprint_gb(x);
                assert!(fp >= last - 1e-9, "{name}: non-monotone at {x}");
                assert!(fp >= 0.0);
                last = fp;
            }
            // The budget inversion respects the budget.
            for budget in [4.0, 16.0, 48.0] {
                if let Some(x) = model.max_input_for_budget(budget) {
                    assert!(
                        model.footprint_gb(x) <= budget * 1.01 + 1e-9,
                        "{name}: inverse violates budget {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn quasar_reconstruction_is_order_of_magnitude_not_exact() {
        // Collaborative filtering from two low-end observations lands in
        // the right order of magnitude but misses the per-application
        // curvature — the §6.2 "over- or under-provisions" behaviour that
        // separates Quasar from per-application calibration.
        let (catalog, system, mut rng) = setup();
        let quasar = QuasarPredictor::new(&system).unwrap();
        let moe = MoePolicy::new(system.clone());
        let bench = catalog.by_name("SB.ShortestPaths").unwrap();
        let profile = profile_of(&catalog, "SB.ShortestPaths", 30.0, &mut rng);
        let slice = profile.expected_slice_gb;
        let truth = bench.true_footprint_gb(slice);
        let q = quasar.predict(&profile).unwrap().model.footprint_gb(slice);
        let m = moe.predict(&profile).unwrap().model.footprint_gb(slice);
        assert!(
            q > truth * 0.2 && q < truth * 5.0,
            "reconstructed {q:.1} vs truth {truth:.1}"
        );
        // Our per-application calibration is strictly closer.
        assert!(
            (m - truth).abs() < (q - truth).abs(),
            "moe {m:.1} should beat quasar {q:.1} against truth {truth:.1}"
        );
    }

    #[test]
    fn robust_calibrate_survives_degenerate_exponential_points() {
        let expert = CurveExpert::new(CurveFamily::Exponential);
        // Deep saturation: both measurements at the asymptote; the exact
        // two-point solve is infeasible, the robust path must succeed.
        let model = robust_calibrate(&expert, (10.0, 5.0), (20.0, 5.0)).unwrap();
        let predicted = FootprintModel::footprint_gb(&model, 60.0);
        assert!((predicted - 5.0).abs() < 0.5, "predicted {predicted}");
    }

    #[test]
    fn model_inversion_respects_budget() {
        let (catalog, system, mut rng) = setup();
        let moe = MoePolicy::new(system);
        let profile = profile_of(&catalog, "BDB.PageRank", 30.0, &mut rng);
        let pred = moe.predict(&profile).unwrap();
        if let Some(x) = pred.model.max_input_for_budget(24.0) {
            if x.is_finite() {
                assert!(pred.model.footprint_gb(x) <= 24.0 * 1.01);
            }
        }
    }
}
