//! The open-system streaming service (§6's evaluation, opened up): jobs
//! arrive over simulated time from a pre-drawn
//! [`ArrivalPlan`](simkit::arrivals::ArrivalPlan) instead of all sitting
//! in the queue at `t = 0`, and the dispatcher is wrapped in an
//! overload-robust admission layer:
//!
//! * **memory-aware admission** — a job is admitted only while the sum of
//!   MoE-predicted footprints of everything already admitted leaves
//!   headroom on the online cluster ([`AdmissionConfig::headroom_frac`]);
//!   an empty cluster always admits (no deadlock on oversized jobs);
//! * **weighted fair queueing** — queued jobs are ordered by per-tenant
//!   virtual finish times, so a heavy tenant cannot starve light ones;
//! * **load shedding** — above [`AdmissionConfig::shed_watermark`] the
//!   largest-finish-tag jobs are dropped (seeded tie-breaks), bounding
//!   queue growth under sustained overload;
//! * **backpressure** — when headroom runs out admission simply defers:
//!   arrivals keep landing but nothing new starts, counted as deferrals;
//! * **circuit breaker** — when memory distress (executor crashes plus
//!   OOM kills; infrastructure node crashes are the fault layer's
//!   business) inside a sliding window exceeds a threshold, the breaker
//!   opens and placement *abstains* from co-location (isolated whole-node
//!   reservations only) until the distress rate recovers, with hysteresis
//!   on the way back. Admission keeps flowing while open — the service
//!   degrades to isolated throughput instead of stalling.
//!
//! Everything is opt-in: with [`AdmissionConfig::enabled`] `false` and a
//! [`batch`](simkit::arrivals::ArrivalPlan::batch) plan, [`run_service`]
//! reproduces the closed-system [`run_schedule_custom`] path bit for bit —
//! the identity the open-loop invariant tests pin.

use crate::harness::{BaselineCache, ChaosSpec, RunConfig};
use crate::metrics::percentiles;
use crate::scheduler::{
    apply_fault, build_predictor, effective_margin, force_place, note_completion, place,
    process_revocations, resolve_ooms, AppRt, FaultStats, NextSeed, PolicyKind, ResilState,
    ResilienceConfig, SchedulerConfig,
};
use crate::training::TrainedSystem;
use crate::ColocateError;
use simkit::arrivals::{ArrivalPlan, ArrivalPlanConfig, ArrivalProcess};
use simkit::faults::{FaultPlan, FaultPlanConfig};
use simkit::stats::TimeWeighted;
use simkit::{par, SimRng, SimTime};
use sparklite::dynalloc;
use sparklite::engine::ClusterEngine;
use sparklite::NodeId;
use std::collections::{HashMap, VecDeque};
use workloads::catalog::Catalog;

/// Circuit-breaker thresholds for the admission layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window the distress rate is measured over, seconds.
    pub window_secs: f64,
    /// Distress events (executor crashes + OOM kills) within one window
    /// that trip the breaker open.
    pub trip_threshold: usize,
    /// The breaker closes again only once the window holds at most this
    /// many events — strictly below the trip threshold, so the state
    /// machine has hysteresis instead of flapping.
    pub recover_threshold: usize,
    /// Minimum time the breaker stays open before a recovery check, s.
    pub cooldown_secs: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_secs: 600.0,
            trip_threshold: 6,
            recover_threshold: 1,
            cooldown_secs: 300.0,
        }
    }
}

/// Admission-control knobs for the open-system service. Disabled by
/// default: every arrival is admitted the instant its profiling finishes,
/// reproducing an uncontrolled open system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; `false` admits everything immediately and draws
    /// nothing from the RNG, keeping uncontrolled runs bit-identical to a
    /// service without this layer.
    pub enabled: bool,
    /// Hard bound on the admission queue; arrivals beyond it are shed on
    /// the spot.
    pub queue_capacity: usize,
    /// Queue length above which the largest-finish-tag jobs are shed.
    pub shed_watermark: usize,
    /// Fraction of online-cluster RAM the committed (admitted but
    /// unfinished) predicted footprints may occupy.
    pub headroom_frac: f64,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            queue_capacity: 64,
            shed_watermark: 48,
            headroom_frac: 0.9,
            breaker: BreakerConfig::default(),
        }
    }
}

impl AdmissionConfig {
    /// The overload-robust preset the open-loop evaluation races against
    /// uncontrolled baselines.
    ///
    /// The shape errs toward protecting admitted work over accepting more:
    /// a short queue (6) with an aggressive watermark (3) sheds the excess
    /// of a sustained storm instead of letting every job's wait grow
    /// without bound, and the headroom fraction of 1.25 books committed
    /// footprints against RAM *plus* swap (the paper nodes carry 16 GB of
    /// swap per 64 GB of RAM) — the engine can page, so refusing to book
    /// past physical RAM would idle memory the cluster does have, while
    /// the shed watermark and circuit breaker absorb the excursions
    /// beyond it.
    #[must_use]
    pub fn controlled() -> Self {
        AdmissionConfig {
            enabled: true,
            queue_capacity: 6,
            shed_watermark: 3,
            headroom_frac: 1.25,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Configuration of one open-system service run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scheduler configuration (cluster, profiling, resilience, …).
    pub scheduler: SchedulerConfig,
    /// Admission-control configuration.
    pub admission: AdmissionConfig,
    /// Per-tenant WFQ weights; empty means every tenant weighs 1.0. When
    /// non-empty it must cover every tenant index the plan references.
    pub tenant_weights: Vec<f64>,
    /// Job-class table: [`ArrivalEvent::job_class`](simkit::arrivals::ArrivalEvent)
    /// indexes into this `(benchmark index, input GB)` list.
    pub job_classes: Vec<(usize, f64)>,
}

/// One job's fate in an open-system run.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// Catalog index of the benchmark.
    pub benchmark: usize,
    /// Input size, GB.
    pub input_gb: f64,
    /// Tenant the job belongs to.
    pub tenant: usize,
    /// When the job arrived, s.
    pub arrived_at: f64,
    /// When admission let it through (`None` if shed or never admitted).
    pub admitted_at: Option<f64>,
    /// When it finished (`None` if shed).
    pub finished_at: Option<f64>,
    /// Dropped by load shedding: the job never ran.
    pub shed: bool,
}

/// Outcome of one open-system service run.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Per-job outcomes, in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Time the last surviving job finished, s.
    pub makespan_secs: f64,
    /// OOM kills across the run.
    pub oom_kills: usize,
    /// Jobs dropped by load shedding.
    pub shed_jobs: usize,
    /// Backpressure events: eligible queued jobs left waiting by an
    /// admission pass because headroom ran out. A job deferred across many
    /// scheduling instants counts once per instant, so this is a
    /// time-integral of queue pressure, not a distinct-job count.
    pub deferrals: usize,
    /// Isolated placements forced by an open circuit breaker.
    pub abstain_placements: usize,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Largest admission-queue depth observed. With admission disabled
    /// nothing is ever formally admitted, so this degenerates to the
    /// arrived-but-unfinished backlog — the open system's work in flight.
    pub max_queue_depth: usize,
    /// Time-averaged admission-queue depth (same caveat as
    /// [`max_queue_depth`](Self::max_queue_depth)).
    pub mean_queue_depth: f64,
    /// Delivered faults and the self-healing layer's responses.
    pub faults: FaultStats,
    /// Internal-consistency counters the chaos-search invariant battery
    /// audits after the run.
    pub audit: AdmissionAudit,
}

/// Internal-consistency counters recorded alongside a service run — the
/// hooks the chaos-search invariant battery reads. On a healthy run every
/// violation counter is zero: they pin the admission layer's contracts
/// (committed-GB accounting, WFQ ordering, breaker liveness, quarantine
/// finiteness) against refactors, and a chaos episode that drives any of
/// them non-zero is a reportable invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionAudit {
    /// Largest committed-footprint sum observed right after an admission,
    /// GB (informational, not a violation counter).
    pub peak_committed_gb: f64,
    /// Admissions that left the committed sum above the headroom budget
    /// while more than one booking was in flight. The single-booking
    /// escape — an otherwise-empty cluster always admits one oversized
    /// job — is legitimate and not counted.
    pub overbook_events: usize,
    /// Times the committed sum went negative (impossible by construction;
    /// recomputed from live bookings each admission).
    pub negative_commit_events: usize,
    /// Admissions whose head was not a minimum-vft eligible job — the WFQ
    /// no-starvation ordering contract.
    pub wfq_order_violations: usize,
    /// Breaker reopens with no in-window distress to justify them (see
    /// [`CircuitBreaker::quiet_reopens`]) — the trip-lock invariant: under
    /// a fault-free tail the window drains and the breaker must close.
    pub quiet_breaker_reopens: usize,
    /// Quarantine deadlines left non-finite at the end of the run: a
    /// quarantined node must carry a finite release deadline, never limbo.
    pub nonfinite_quarantines: usize,
    /// Whether the breaker was still open when the service drained
    /// (informational: legitimate when distress lands near the end).
    pub final_breaker_open: bool,
    /// Micro-batches the opt-in prediction batcher dispatched
    /// (informational; zero unless `SPARK_MOE_SERVICE_DEADLINE_US` is
    /// set to a nonzero deadline).
    pub prediction_batches: usize,
    /// Longest time any request waited in the prediction batcher's queue
    /// before its batch dispatched, s (informational; zero when batching
    /// is off).
    pub prediction_max_wait_secs: f64,
}

/// Sidecar state the admission layer keeps per planned job.
struct JobState {
    tenant: usize,
    arrived: bool,
    admitted_at: Option<f64>,
    shed: bool,
    /// When the profiling pipeline (run at arrival) completes, s.
    profile_ready: f64,
    /// WFQ virtual finish tag, assigned at arrival.
    vft: f64,
    /// Predicted footprint booked against the headroom budget.
    committed_gb: f64,
    released: bool,
}

/// Circuit-breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Breaker {
    Closed,
    Open { until: f64 },
}

/// The admission layer's memory-distress circuit breaker, extracted as a
/// standalone state machine so its hysteresis edges can be unit- and
/// property-tested (and chaos-searched) without driving a full service
/// run.
///
/// Distress events (executor crashes plus OOM kills) land in a sliding
/// window of [`BreakerConfig::window_secs`]. When a closed breaker's
/// window reaches [`BreakerConfig::trip_threshold`] it opens for at least
/// [`BreakerConfig::cooldown_secs`]; at each recovery check it closes only
/// once the window has drained to [`BreakerConfig::recover_threshold`] —
/// otherwise it stays open another cooldown. The two thresholds differ
/// (hysteresis), so the machine cannot flap on a borderline distress rate.
///
/// `run_service` drives this in a fixed order each scheduling instant:
/// [`note_distress`](Self::note_distress) for crashes, then
/// [`prune`](Self::prune) + [`recover`](Self::recover), then
/// [`note_distress`](Self::note_distress) for kills and
/// [`maybe_trip`](Self::maybe_trip).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Breaker,
    distress: VecDeque<f64>,
    trips: usize,
    quiet_reopens: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds and an empty window.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Breaker::Closed,
            distress: VecDeque::new(),
            trips: 0,
            quiet_reopens: 0,
        }
    }

    /// Records one distress event (an executor crash or an OOM kill) at
    /// time `t`.
    pub fn note_distress(&mut self, t: f64) {
        self.distress.push_back(t);
    }

    /// Drops window entries older than `t − window_secs`.
    pub fn prune(&mut self, t: f64) {
        while self
            .distress
            .front()
            .is_some_and(|&f| t - f > self.config.window_secs)
        {
            self.distress.pop_front();
        }
    }

    /// Runs the recovery check: an open breaker at or past its deadline
    /// closes if the window has drained to the recover threshold,
    /// otherwise it stays open another cooldown. Call after
    /// [`prune`](Self::prune) so the window reflects time `t`.
    pub fn recover(&mut self, t: f64) {
        if let Breaker::Open { until } = self.state {
            if t >= until {
                if self.distress.len() <= self.config.recover_threshold {
                    self.state = Breaker::Closed;
                } else {
                    // A reopen must be justified by recent distress; a
                    // stale window here means the prune/recover contract
                    // broke. Counted, not asserted — the chaos-search
                    // battery pins it at zero as the trip-lock invariant.
                    let stale = match self.distress.back() {
                        None => true,
                        Some(&f) => t - f > self.config.window_secs,
                    };
                    if stale {
                        self.quiet_reopens += 1;
                    }
                    self.state = Breaker::Open {
                        until: t + self.config.cooldown_secs,
                    };
                }
            }
        }
    }

    /// Trips a closed breaker whose window has reached the trip
    /// threshold; returns whether a trip happened.
    pub fn maybe_trip(&mut self, t: f64) -> bool {
        if matches!(self.state, Breaker::Closed)
            && self.distress.len() >= self.config.trip_threshold
        {
            self.state = Breaker::Open {
                until: t + self.config.cooldown_secs,
            };
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Whether the breaker is currently open (placement must abstain from
    /// co-location).
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self.state, Breaker::Open { .. })
    }

    /// The next scheduled recovery check strictly after `t`, if any.
    #[must_use]
    pub fn next_check_after(&self, t: f64) -> Option<f64> {
        match self.state {
            Breaker::Open { until } if until > t => Some(until),
            _ => None,
        }
    }

    /// Times the breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Reopens that happened with no in-window distress to justify them —
    /// zero unless the prune/recover contract is broken.
    #[must_use]
    pub fn quiet_reopens(&self) -> usize {
        self.quiet_reopens
    }

    /// Distress events currently inside the sliding window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.distress.len()
    }
}

/// RAM of every online node, GB — the denominator of the headroom gate.
fn online_ram_gb(engine: &ClusterEngine, node_ids: &[NodeId]) -> f64 {
    node_ids
        .iter()
        .filter(|&&n| engine.node_online(n))
        .map(|&n| engine.cluster().node(n).spec().ram_gb)
        .sum()
}

/// The predicted whole-job footprint admission books: per-executor
/// predicted need at the dynalloc slice, margins applied, times the
/// executor target. Deliberately pessimistic — the gate protects the
/// cluster, the placement loop still packs tighter than this.
fn admission_need_gb(app: &AppRt, engine: &ClusterEngine, config: &SchedulerConfig) -> f64 {
    let Some(prediction) = &app.prediction else {
        return 0.0;
    };
    let spec = engine.app(app.engine_id).spec().clone();
    let target = dynalloc::executors_for(
        &spec,
        config.cluster.nodes,
        config.cluster.node.ram_gb,
        config.dynalloc,
    );
    let slice = spec.input_gb / target as f64;
    prediction.model.footprint_gb(slice)
        * app.pred_scale
        * effective_margin(app, config)
        * target as f64
}

/// Opt-in flush deadline for the admission-time prediction batcher, µs
/// (`SPARK_MOE_SERVICE_DEADLINE_US`; default 0 routes predictions through
/// the plain whole-plan batch, byte-identical to prior releases).
fn service_deadline_us() -> u64 {
    std::env::var("SPARK_MOE_SERVICE_DEADLINE_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Serves the plan's expert selections through the [`BatchPredictor`]
/// micro-batching front end with a real flush deadline: requests enter in
/// plan order at their profiling-completion instants (clamped monotone —
/// the batcher's clock contract), and each queued batch dispatches at
/// `max_batch` requests or `deadline_us` of queue age, whichever first.
/// Selections are batch-partition invariant, so the returned predictions
/// are bitwise identical to one whole-plan `predict_batch`; the calls
/// here only exercise the deadline machinery and report how it batched.
fn batched_service_predictions(
    system: &TrainedSystem,
    refs: &[&crate::profiling::AppProfile],
    jobs: &[JobState],
    deadline_us: u64,
    batches: &mut usize,
    max_wait: &mut f64,
) -> Result<Vec<crate::predictors::Prediction>, ColocateError> {
    let config = crate::serving::BatchConfig {
        max_batch: 256,
        max_delay: deadline_us as f64 * 1e-6,
    };
    let mut batcher = crate::serving::BatchPredictor::new(
        system.predictor.clone(),
        system.selections.clone(),
        config,
    )
    .map_err(|e| ColocateError::Config(format!("prediction batcher setup: {e}")))?;
    let mut selections: Vec<Option<moe_core::Selection>> = vec![None; refs.len()];
    let mut submitted_at: Vec<f64> = vec![0.0; refs.len()];
    let mut now = 0.0f64;
    for (i, profile) in refs.iter().enumerate() {
        now = now.max(jobs[i].profile_ready);
        let queued_before = batcher.pending();
        for (ticket, selection) in batcher.poll(now)? {
            *max_wait = max_wait.max(now - submitted_at[ticket as usize]);
            selections[ticket as usize] = Some(selection);
        }
        if batcher.pending() < queued_before {
            *batches += 1;
        }
        let queued_before = batcher.pending();
        let ticket = batcher.submit(now, profile.features.clone())?;
        submitted_at[ticket as usize] = now;
        if batcher.pending() <= queued_before {
            *batches += 1;
        }
    }
    if batcher.pending() > 0 {
        *batches += 1;
    }
    for (ticket, selection) in batcher.flush()? {
        *max_wait = max_wait.max(now - submitted_at[ticket as usize]);
        selections[ticket as usize] = Some(selection);
    }
    let mut out = Vec::with_capacity(refs.len());
    for (profile, selection) in refs.iter().zip(&selections) {
        let Some(selection) = selection else {
            return Err(ColocateError::Config(
                "prediction batcher dropped a request".into(),
            ));
        };
        let expert = system.predictor.registry().get(selection.expert)?;
        let model = crate::predictors::robust_calibrate(
            expert,
            profile.calibration[0],
            profile.calibration[1],
        )?;
        out.push(crate::predictors::Prediction {
            model: Box::new(model),
            low_confidence: selection.low_confidence,
            cpu_estimate: None,
        });
    }
    Ok(out)
}

/// Runs one open-system campaign: every arrival in `plan` is mapped
/// through [`ServiceConfig::job_classes`], profiled on arrival, passed
/// through the admission layer (when enabled) and scheduled by `policy`'s
/// dispatcher, with `faults` (when given) replayed against the cluster.
///
/// Determinism: the outcome is a pure function of the arguments. A
/// [`batch`](ArrivalPlan::batch) plan with admission disabled and no
/// faults reproduces [`run_schedule_custom`](crate::scheduler::run_schedule_custom)
/// bit for bit.
///
/// # Errors
///
/// Rejects non-predictive policies (`Isolated`/`Pairwise` have no memory
/// model for the admission gate), empty plans, and plans referencing
/// tenants or job classes the config does not define; propagates
/// substrate and predictor failures.
#[allow(clippy::too_many_lines)]
pub fn run_service(
    policy: PolicyKind,
    catalog: &Catalog,
    plan: &ArrivalPlan,
    system: Option<&TrainedSystem>,
    config: &ServiceConfig,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> Result<ServiceOutcome, ColocateError> {
    if !policy.is_predictive() {
        return Err(ColocateError::Config(format!(
            "open-system service needs a predictive policy, got {policy:?}"
        )));
    }
    if plan.is_empty() {
        return Err(ColocateError::Config("empty arrival plan".into()));
    }
    for event in plan.events() {
        if event.job_class >= config.job_classes.len() {
            return Err(ColocateError::Config(format!(
                "arrival references job class {} but only {} are defined",
                event.job_class,
                config.job_classes.len()
            )));
        }
        if !config.tenant_weights.is_empty() && event.tenant >= config.tenant_weights.len() {
            return Err(ColocateError::Config(format!(
                "arrival references tenant {} but only {} weights are defined",
                event.tenant,
                config.tenant_weights.len()
            )));
        }
    }
    for &(bench, input) in &config.job_classes {
        if bench >= catalog.all().len() {
            return Err(ColocateError::Config(format!(
                "job class references benchmark {bench} outside the catalog"
            )));
        }
        if !input.is_finite() || input <= 0.0 {
            return Err(ColocateError::Config(
                "job classes need positive input sizes".into(),
            ));
        }
    }
    if !config.tenant_weights.iter().all(|&w| w > 0.0) {
        return Err(ColocateError::Config(
            "tenant weights must be positive".into(),
        ));
    }
    let sched = &config.scheduler;
    let admission = config.admission;

    let mut rng = SimRng::seed_from(seed);
    let predictor = build_predictor(policy, catalog, system, &mut rng)?;

    let mut engine = ClusterEngine::with_seed(
        sched.cluster.clone(),
        sched.interference,
        rng.fork().next_u64_seed(),
    );
    engine.set_executor_startup_secs(sched.executor_startup_secs);

    // Submit every planned job up front (the engine is inert about apps
    // without executors) and run each one's profiling pipeline starting at
    // its arrival instant. Same draw order as the closed loop: plan order.
    let mut apps: Vec<AppRt> = Vec::with_capacity(plan.len());
    let mut jobs: Vec<JobState> = Vec::with_capacity(plan.len());
    let mut profiles: Vec<crate::profiling::AppProfile> = Vec::with_capacity(plan.len());
    let mut profile_slots = [0.0f64; 6];
    let mut search_queue_end = 0.0f64;
    for event in plan.events() {
        let (bench_idx, input) = config.job_classes[event.job_class];
        let bench = &catalog.all()[bench_idx];
        let rate_penalty = if policy == PolicyKind::OnlineSearch {
            1.0 / (1.0 + sched.search_rate_penalty)
        } else {
            1.0
        };
        let mut spec = bench.app_spec(input, sched.profiling.footprint_noise_sd);
        spec.rate_gb_per_s *= rate_penalty;
        let engine_id = engine.submit(spec);

        let p = predictor.as_ref().ok_or_else(|| {
            ColocateError::Config("predictive policy produced no predictor".into())
        })?;
        let (profile, mut cost) = crate::profiling::profile_app(
            bench,
            input,
            sched.cluster.nodes,
            sched.cluster.node.ram_gb,
            &sched.profiling,
            &mut rng,
        );
        let mut ready = if p.needs_profiling() {
            engine.credit_profiled(engine_id, cost.profiled_gb);
            let slot = profile_slots
                .iter_mut()
                .min_by(|a, b| a.total_cmp(b))
                .ok_or_else(|| ColocateError::Config("profiling slot pool is empty".into()))?;
            // Profiling starts no earlier than the arrival; at a batch
            // plan's t = 0 this reduces to the closed loop's `*slot += cost`.
            let start = slot.max(event.at_secs);
            *slot = start + cost.total_secs();
            *slot
        } else {
            cost = crate::profiling::ProfilingCost::default();
            event.at_secs
        };
        if policy == PolicyKind::OnlineSearch {
            let search = sched.search_serial_frac * input / bench.rate_gb_per_s();
            search_queue_end = search_queue_end.max(event.at_secs) + search;
            ready = ready.max(search_queue_end);
        }
        apps.push(AppRt {
            engine_id,
            benchmark: bench_idx,
            // With admission enabled a job is invisible to placement until
            // an admission pass grants it a finite ready time.
            ready_at: if admission.enabled {
                f64::INFINITY
            } else {
                ready
            },
            prediction: None,
            measured_cpu: profile.measured_cpu,
            margin: 1.0,
            finished_at: None,
            profiling: cost,
            input_gb: input,
            pred_scale: 1.0,
            err_ewma: 1.0,
            failures: 0,
            retry_at: 0.0,
            isolated_fallback: false,
        });
        jobs.push(JobState {
            tenant: event.tenant,
            arrived: false,
            admitted_at: None,
            shed: false,
            profile_ready: ready,
            vft: 0.0,
            committed_gb: 0.0,
            released: false,
        });
        profiles.push(profile);
    }
    // One batched prediction over every job arriving in this planning
    // pass: the MoE serves it through the whole-matrix selector path,
    // bitwise identical to the former per-job predict calls (and the
    // profiling RNG draws above are untouched — predict consumes none).
    //
    // With `SPARK_MOE_SERVICE_DEADLINE_US` set to a nonzero microsecond
    // budget (and a trained MoE system on hand) the same selections are
    // instead served through the `BatchPredictor` micro-batching front
    // end with a real flush deadline. Selections are batch-partition
    // invariant, so the service outputs stay bitwise identical — the knob
    // only exercises the deadline machinery and records what it saw in
    // the audit.
    let deadline_us = service_deadline_us();
    let mut pred_batches = 0usize;
    let mut pred_max_wait = 0.0f64;
    {
        let p = predictor.as_ref().ok_or_else(|| {
            ColocateError::Config("predictive policy produced no predictor".into())
        })?;
        let refs: Vec<&crate::profiling::AppProfile> = profiles.iter().collect();
        let moe_system = (deadline_us > 0 && policy == PolicyKind::Moe)
            .then_some(system)
            .flatten();
        let predictions = if let Some(sys) = moe_system {
            batched_service_predictions(
                sys,
                &refs,
                &jobs,
                deadline_us,
                &mut pred_batches,
                &mut pred_max_wait,
            )?
        } else {
            p.predict_batch(&refs)?
        };
        for ((app, prediction), profile) in apps.iter_mut().zip(predictions).zip(&profiles) {
            if let Some(cpu) = prediction.cpu_estimate {
                app.measured_cpu = cpu;
            } else {
                app.measured_cpu = profile.measured_cpu;
            }
            app.prediction = Some(prediction);
        }
    }
    for app in &mut apps {
        if let Some(pred) = &app.prediction {
            if pred.low_confidence {
                app.margin = sched.conservative_margin;
            }
        }
    }

    // Event-loop state, mirroring the closed loop's setup order; the shed
    // RNG is forked only when admission is enabled so uncontrolled runs
    // draw exactly what the closed loop draws.
    let mut monitor = sparklite::monitor::ResourceMonitor::new(sched.cluster.nodes, sched.monitor);
    let mut t = 0.0f64;
    let mut oom_kills = 0usize;
    let node_ids = engine.cluster().node_ids();
    let mut hot_nodes: Vec<NodeId> = Vec::new();
    // Placement scratch, hoisted out of the per-event placement calls.
    let mut place_scratch = crate::scheduler::PlaceScratch::new();
    let mut guard = 0usize;
    let guard_limit = 500_000usize;

    let mut fault_cursor = faults.map(FaultPlan::cursor);
    let mut restore_at = vec![0.0f64; node_ids.len()];
    let mut revoke_at = vec![0.0f64; node_ids.len()];
    let mut revoke_outage = vec![0.0f64; node_ids.len()];
    let mut resil = ResilState {
        jitter: sched.resilience.enabled.then(|| rng.fork()),
        quarantined_until: vec![0.0; node_ids.len()],
        oom_times: vec![VecDeque::new(); node_ids.len()],
        stats: FaultStats::default(),
    };
    let mut shed_rng = admission.enabled.then(|| rng.fork());

    let mut arrivals = plan.cursor();
    let mut tenant_pass: HashMap<usize, f64> = HashMap::new();
    let mut virtual_time = 0.0f64;
    let mut breaker = CircuitBreaker::new(admission.breaker);
    let mut audit = AdmissionAudit {
        prediction_batches: pred_batches,
        prediction_max_wait_secs: pred_max_wait,
        ..AdmissionAudit::default()
    };
    let mut deferrals = 0usize;
    let mut shed_jobs = 0usize;
    let mut abstain_placements = 0usize;
    let mut depth_avg = TimeWeighted::new(SimTime::ZERO);
    let mut max_queue_depth = 0usize;

    loop {
        guard += 1;
        if guard > guard_limit {
            return Err(ColocateError::Config(
                "service event loop exceeded its iteration guard".into(),
            ));
        }

        // 1. Deliver arrivals due now: assign WFQ finish tags in arrival
        //    order, and shed on the spot once the hard queue cap is hit.
        while let Some(event) = arrivals.pop_due(t) {
            // The cursor walks the plan front to back, so this index is
            // the event's position in plan order.
            let idx = plan.len() - arrivals.remaining() - 1;
            jobs[idx].arrived = true;
            let weight = config
                .tenant_weights
                .get(event.tenant)
                .copied()
                .unwrap_or(1.0);
            let pass = tenant_pass.entry(event.tenant).or_insert(0.0);
            let vft = pass.max(virtual_time) + apps[idx].input_gb / weight;
            *pass = vft;
            jobs[idx].vft = vft;
            if admission.enabled && queued_count(&apps, &jobs) > admission.queue_capacity {
                jobs[idx].shed = true;
                shed_jobs += 1;
            }
        }

        // 2. Faults, spot revocations, node restores (closed-loop order).
        let crashes_before = resil.stats.executor_crashes;
        if let Some(cursor) = fault_cursor.as_mut() {
            while let Some(event) = cursor.pop_due(t) {
                apply_fault(
                    event,
                    &mut engine,
                    &mut monitor,
                    &mut apps,
                    sched,
                    t,
                    &mut restore_at,
                    &mut revoke_at,
                    &mut revoke_outage,
                    &mut resil,
                )?;
            }
        }
        process_revocations(
            &mut engine,
            &mut apps,
            sched,
            t,
            &node_ids,
            &mut revoke_at,
            &mut revoke_outage,
            &mut restore_at,
            &mut resil,
        )?;
        for (i, due) in restore_at.iter_mut().enumerate() {
            if *due > 0.0 && *due <= t {
                engine.restore_node(node_ids[i])?;
                *due = 0.0;
            }
        }
        if admission.enabled {
            // Only app-level distress feeds the breaker: infrastructure
            // node crashes are handled by self-healing and must not trip
            // the service into isolated mode on their own.
            for _ in crashes_before..resil.stats.executor_crashes {
                breaker.note_distress(t);
            }
        }

        // 3. Mark finishes and release their committed headroom.
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }
        release_finished(&apps, &mut jobs);

        // 4. Breaker recovery with hysteresis: after the cooldown the
        //    breaker closes only if the window has drained below the
        //    recover threshold; otherwise it stays open another cooldown.
        breaker.prune(t);
        breaker.recover(t);

        // 5. Load shedding above the watermark, then admission in WFQ
        //    order while headroom lasts. An open breaker does NOT block
        //    admission — it only forces isolated placement below — so the
        //    service degrades instead of stalling.
        if admission.enabled {
            while queued_count(&apps, &jobs) > admission.shed_watermark {
                let Some(victim) = pick_shed_victim(&apps, &jobs, shed_rng.as_mut()) else {
                    break;
                };
                jobs[victim].shed = true;
                shed_jobs += 1;
            }
            loop {
                let eligible: Vec<usize> = (0..jobs.len())
                    .filter(|&i| {
                        jobs[i].arrived
                            && !jobs[i].shed
                            && jobs[i].admitted_at.is_none()
                            && apps[i].finished_at.is_none()
                            && jobs[i].profile_ready <= t
                    })
                    .collect();
                if eligible.is_empty() {
                    break;
                }
                let head = eligible
                    .iter()
                    .copied()
                    .min_by(|&a, &b| jobs[a].vft.total_cmp(&jobs[b].vft).then(a.cmp(&b)))
                    .unwrap_or(eligible[0]);
                if eligible.iter().any(|&i| jobs[i].vft < jobs[head].vft) {
                    audit.wfq_order_violations += 1;
                }
                let need = admission_need_gb(&apps[head], &engine, sched);
                let headroom = admission.headroom_frac * online_ram_gb(&engine, &node_ids);
                // Recomputing the committed sum from the live bookings
                // keeps it exactly zero once everything admitted has
                // finished, so the empty-cluster always-admit escape can
                // never be wedged shut by floating-point residue.
                let committed = committed_gb(&jobs);
                if committed > 0.0 && committed + need > headroom {
                    deferrals += eligible.len();
                    break;
                }
                jobs[head].committed_gb = need;
                jobs[head].admitted_at = Some(t);
                apps[head].ready_at = t.max(jobs[head].profile_ready);
                virtual_time = virtual_time.max(jobs[head].vft);

                // Audit the booking just written: the committed sum must
                // stay non-negative, and may exceed headroom only through
                // the single-booking empty-cluster escape.
                let now_committed = committed_gb(&jobs);
                audit.peak_committed_gb = audit.peak_committed_gb.max(now_committed);
                if now_committed < 0.0 {
                    audit.negative_commit_events += 1;
                }
                let in_flight = jobs
                    .iter()
                    .filter(|j| j.admitted_at.is_some() && !j.released)
                    .count();
                if in_flight > 1 && now_committed > headroom {
                    audit.overbook_events += 1;
                }
            }
        }

        // 6. Placement (abstaining while the breaker is open) and OOM
        //    resolution, feeding the distress window.
        monitor.observe(&engine, t);
        let abstain = breaker.is_open();
        abstain_placements += place(
            policy,
            &mut engine,
            &mut apps,
            sched,
            t,
            catalog,
            &monitor,
            &resil,
            &node_ids,
            abstain,
            &mut place_scratch,
        )?;
        engine.hot_nodes_into(&mut hot_nodes);
        let kills = resolve_ooms(&mut engine, &mut apps, sched, t, &mut resil, &hot_nodes)?;
        oom_kills += kills;
        if admission.enabled {
            for _ in 0..kills {
                breaker.note_distress(t);
            }
            breaker.maybe_trip(t);
        }

        let depth = queued_count(&apps, &jobs);
        max_queue_depth = max_queue_depth.max(depth);
        depth_avg.set(SimTime::from_secs(t), depth as f64);

        // 7. Mark finishes again (profiling credit alone can finish an
        //    app) and terminate once the plan is drained and every
        //    surviving job is done.
        for app in &mut apps {
            if app.finished_at.is_none() && engine.app(app.engine_id).is_finished() {
                app.finished_at = Some(t.max(app.ready_at));
            }
        }
        release_finished(&apps, &mut jobs);
        if arrivals.remaining() == 0
            && apps
                .iter()
                .zip(jobs.iter())
                .all(|(a, j)| j.shed || a.finished_at.is_some())
        {
            break;
        }

        // 8. Next externally scheduled instant. Beyond the closed loop's
        //    events this adds: the next arrival, profiling completions of
        //    queued-but-unprofiled jobs (admission waits for the memory
        //    estimate), and the breaker's recovery check.
        let next_ready = apps
            .iter()
            .zip(jobs.iter())
            .filter(|(a, j)| !j.shed && a.finished_at.is_none())
            .map(|(a, _)| a.ready_at.max(a.retry_at))
            .filter(|&r| r > t && r.is_finite())
            .fold(f64::INFINITY, f64::min);
        let next_arrival = arrivals.next_at().unwrap_or(f64::INFINITY);
        let next_profile = if admission.enabled {
            jobs.iter()
                .zip(apps.iter())
                .filter(|(j, a)| {
                    j.arrived && !j.shed && j.admitted_at.is_none() && a.finished_at.is_none()
                })
                .map(|(j, _)| j.profile_ready)
                .filter(|&r| r > t)
                .fold(f64::INFINITY, f64::min)
        } else {
            f64::INFINITY
        };
        let next_breaker = breaker.next_check_after(t).unwrap_or(f64::INFINITY);
        let next_fault = fault_cursor
            .as_ref()
            .and_then(simkit::faults::FaultCursor::next_at)
            .unwrap_or(f64::INFINITY);
        let next_restore = restore_at
            .iter()
            .copied()
            .filter(|&r| r > t)
            .fold(f64::INFINITY, f64::min);
        let next_revoke = revoke_at
            .iter()
            .copied()
            .filter(|&r| r > t)
            .fold(f64::INFINITY, f64::min);
        let next_event = next_ready
            .min(next_arrival)
            .min(next_profile)
            .min(next_breaker)
            .min(next_fault)
            .min(next_restore)
            .min(next_revoke);
        let next_done = engine.next_completion();

        match (next_done, next_event.is_finite()) {
            (Some((dt, _)), true) if t + dt > next_event => {
                engine.advance(next_event - t);
                t = next_event;
            }
            (Some((dt, first)), _) => {
                engine.advance(dt);
                t += dt;
                note_completion(&engine, &mut apps, sched, first);
                engine.complete_executor(first)?;
                while let Some((dt2, id2)) = engine.next_completion() {
                    if dt2 > 1e-9 {
                        break;
                    }
                    engine.advance(dt2);
                    t += dt2;
                    note_completion(&engine, &mut apps, sched, id2);
                    engine.complete_executor(id2)?;
                }
            }
            (None, true) => {
                t = next_event;
            }
            (None, false) => {
                if !force_place(&mut engine, &mut apps, sched, t)? {
                    return Err(ColocateError::Config(format!(
                        "service stuck at t={t:.1}s with unfinished jobs"
                    )));
                }
            }
        }
    }

    let mut out_jobs = Vec::with_capacity(apps.len());
    let mut makespan = 0.0f64;
    for (app, (job, event)) in apps.iter().zip(jobs.iter().zip(plan.events())) {
        let finished_at = if job.shed { None } else { app.finished_at };
        if let Some(f) = finished_at {
            makespan = makespan.max(f);
        } else if !job.shed {
            return Err(ColocateError::Config(
                "service ended with an unfinished, unshed job".into(),
            ));
        }
        out_jobs.push(JobOutcome {
            benchmark: app.benchmark,
            input_gb: app.input_gb,
            tenant: job.tenant,
            arrived_at: event.at_secs,
            admitted_at: job.admitted_at,
            finished_at,
            shed: job.shed,
        });
    }
    audit.quiet_breaker_reopens = breaker.quiet_reopens();
    audit.nonfinite_quarantines = resil
        .quarantined_until
        .iter()
        .filter(|u| !u.is_finite())
        .count();
    audit.final_breaker_open = breaker.is_open();
    Ok(ServiceOutcome {
        jobs: out_jobs,
        makespan_secs: makespan,
        oom_kills,
        shed_jobs,
        deferrals,
        abstain_placements,
        breaker_trips: breaker.trips(),
        max_queue_depth,
        mean_queue_depth: if makespan > 0.0 {
            depth_avg.time_average(SimTime::from_secs(makespan))
        } else {
            0.0
        },
        faults: resil.stats,
        audit,
    })
}

/// Jobs sitting in the admission queue: arrived, not shed, not admitted,
/// not finished (profiling credit alone can finish tiny jobs while they
/// queue; with admission disabled this counts the arrived-but-unfinished
/// backlog instead, since nothing is ever formally admitted).
fn queued_count(apps: &[AppRt], jobs: &[JobState]) -> usize {
    apps.iter()
        .zip(jobs.iter())
        .filter(|(a, j)| j.arrived && !j.shed && j.admitted_at.is_none() && a.finished_at.is_none())
        .count()
}

/// The queued job with the largest WFQ finish tag; exact ties are broken
/// by a seeded draw so overload behaviour stays reproducible rather than
/// depending on scan order.
fn pick_shed_victim(apps: &[AppRt], jobs: &[JobState], rng: Option<&mut SimRng>) -> Option<usize> {
    let queued: Vec<usize> = (0..jobs.len())
        .filter(|&i| {
            jobs[i].arrived
                && !jobs[i].shed
                && jobs[i].admitted_at.is_none()
                && apps[i].finished_at.is_none()
        })
        .collect();
    let max_vft = queued
        .iter()
        .map(|&i| jobs[i].vft)
        .fold(f64::NEG_INFINITY, f64::max);
    let ties: Vec<usize> = queued
        .into_iter()
        .filter(|&i| jobs[i].vft == max_vft)
        .collect();
    match (ties.len(), rng) {
        (0, _) => None,
        (1, _) | (_, None) => ties.first().copied(),
        (n, Some(rng)) => ties.get(rng.uniform_usize(0, n - 1)).copied(),
    }
}

/// Releases the committed headroom of every newly finished admitted job.
fn release_finished(apps: &[AppRt], jobs: &mut [JobState]) {
    for (app, job) in apps.iter().zip(jobs.iter_mut()) {
        if !job.released && job.admitted_at.is_some() && app.finished_at.is_some() {
            job.released = true;
        }
    }
}

/// Predicted footprint currently booked against the headroom budget: the
/// sum over admitted-but-unfinished jobs. Recomputed from scratch so it
/// is exactly `0.0` whenever nothing is in flight.
fn committed_gb(jobs: &[JobState]) -> f64 {
    jobs.iter()
        .filter(|j| j.admitted_at.is_some() && !j.released)
        .map(|j| j.committed_gb)
        .sum()
}

/// One contender in an open-loop campaign: a policy plus its admission
/// and resilience configuration.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopEntry {
    /// Label used in figures and result files.
    pub label: &'static str,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Admission-control configuration.
    pub admission: AdmissionConfig,
    /// Self-healing configuration.
    pub resilience: ResilienceConfig,
}

/// Shape of an open-loop campaign: the arrival process, its horizon, the
/// tenant/job-class universe, and the fault storm replayed alongside.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Arrival process shared by every replication (each draws its own
    /// plan from the replication seed).
    pub process: ArrivalProcess,
    /// Arrival horizon, seconds.
    pub horizon_secs: f64,
    /// Number of tenants.
    pub tenants: usize,
    /// Per-tenant WFQ weights (empty = uniform).
    pub tenant_weights: Vec<f64>,
    /// Job classes arrivals are drawn from.
    pub job_classes: Vec<(usize, f64)>,
    /// Hard cap on arrivals per replication (0 = unbounded).
    pub max_jobs: usize,
    /// Fault storm replayed against each replication (intensity 0 injects
    /// nothing).
    pub chaos: ChaosSpec,
    /// Independent replications folded into the stats.
    pub replications: usize,
}

/// Tail metrics of one open-loop entry, folded across replications.
#[derive(Debug, Clone)]
pub struct OpenLoopEntryStats {
    /// The entry's label.
    pub label: &'static str,
    /// Total arrivals across replications.
    pub arrivals: usize,
    /// Jobs that finished.
    pub finished: usize,
    /// Jobs dropped by load shedding.
    pub shed: usize,
    /// Median job slowdown (turnaround / isolated time).
    pub slowdown_p50: f64,
    /// 95th-percentile job slowdown.
    pub slowdown_p95: f64,
    /// 99th-percentile job slowdown.
    pub slowdown_p99: f64,
    /// Mean job slowdown.
    pub slowdown_mean: f64,
    /// OOM kills across replications.
    pub oom_kills: usize,
    /// Backpressure deferral events across replications.
    pub deferrals: usize,
    /// Breaker-forced isolated placements across replications.
    pub abstain_placements: usize,
    /// Circuit-breaker trips across replications.
    pub breaker_trips: usize,
    /// Largest queue depth seen in any replication.
    pub max_queue_depth: usize,
    /// Mean over replications of the time-averaged queue depth.
    pub mean_queue_depth: f64,
    /// Fault/recovery counters summed over replications.
    pub faults: FaultStats,
}

/// Results of one open-loop campaign.
#[derive(Debug, Clone)]
pub struct OpenLoopStats {
    /// Replications folded in.
    pub replications: usize,
    /// Per-entry stats, parallel to the `entries` argument.
    pub per_entry: Vec<OpenLoopEntryStats>,
}

/// Per-replication fold produced by one entry.
type RepFold = (Vec<f64>, ServiceFold);

/// Scalar counters of one replication.
#[derive(Debug, Clone, Copy)]
struct ServiceFold {
    arrivals: usize,
    finished: usize,
    shed: usize,
    oom_kills: usize,
    deferrals: usize,
    abstain_placements: usize,
    breaker_trips: usize,
    max_queue_depth: usize,
    mean_queue_depth: f64,
    faults: FaultStats,
}

/// Evaluates several `(policy, admission, resilience)` entries on the
/// *same* arrival plans and fault storms — the apples-to-apples open-loop
/// comparison behind Fig. 21.
///
/// Per replication `i`, the schedule seed is `base_seed + i`, the arrival
/// plan is drawn from `(base_seed + i) ^ 0xA441_5EED` and the fault plan
/// from `(base_seed + i) ^ 0xC4A0_5EED`, so arrivals and faults are
/// independent of the schedule stream: changing an entry's admission or
/// resilience config never changes what lands on it. Job slowdowns are
/// turnaround (finish − arrival) over the job's fault-free isolated time
/// (memoized in a [`BaselineCache`]). Replications fan out across
/// [`RunConfig::effective_workers`] threads with results folded in index
/// order, so the returned stats are bit-for-bit identical for every
/// worker count.
///
/// # Errors
///
/// Propagates training and per-replication service failures.
pub fn evaluate_openloop(
    entries: &[OpenLoopEntry],
    catalog: &Catalog,
    config: &RunConfig,
    spec: &OpenLoopSpec,
    base_seed: u64,
) -> Result<OpenLoopStats, ColocateError> {
    let workers = config.effective_workers();

    // Train once per distinct policy; entries share systems read-only.
    let mut by_policy: HashMap<PolicyKind, Option<TrainedSystem>> = HashMap::new();
    for e in entries {
        if let std::collections::hash_map::Entry::Vacant(slot) = by_policy.entry(e.policy) {
            slot.insert(crate::harness::trained_system_for(
                e.policy, catalog, config, base_seed,
            )?);
        }
    }
    let cfgs: Vec<ServiceConfig> = entries
        .iter()
        .map(|e| ServiceConfig {
            scheduler: SchedulerConfig {
                resilience: e.resilience,
                ..config.scheduler.clone()
            },
            admission: e.admission,
            tenant_weights: spec.tenant_weights.clone(),
            job_classes: spec.job_classes.clone(),
        })
        .collect();

    let arrival_cfg = ArrivalPlanConfig {
        process: spec.process,
        horizon_secs: spec.horizon_secs,
        tenants: spec.tenants,
        job_classes: spec.job_classes.len(),
        max_jobs: spec.max_jobs,
    };
    let baselines = BaselineCache::new();
    let reps: Vec<usize> = (0..spec.replications).collect();
    let per_rep = par::par_map_indexed(&reps, workers, |i, _| {
        let seed = base_seed + i as u64;
        let plan = ArrivalPlan::generate(seed ^ 0xA441_5EED, &arrival_cfg);
        if plan.is_empty() {
            // A quiet replication (possible at tiny rates) contributes
            // empty folds instead of tripping run_service's empty check.
            let empty = ServiceFold {
                arrivals: 0,
                finished: 0,
                shed: 0,
                oom_kills: 0,
                deferrals: 0,
                abstain_placements: 0,
                breaker_trips: 0,
                max_queue_depth: 0,
                mean_queue_depth: 0.0,
                faults: FaultStats::default(),
            };
            return Ok(vec![(Vec::new(), empty); entries.len()]);
        }
        let storm = FaultPlan::generate(
            seed ^ 0xC4A0_5EED,
            &FaultPlanConfig {
                intensity: spec.chaos.intensity,
                horizon_secs: spec.horizon_secs,
                nodes: config.scheduler.cluster.nodes,
                apps: plan.len(),
                mean_outage_secs: spec.chaos.mean_outage_secs,
                mean_dropout_secs: spec.chaos.mean_dropout_secs,
                noise_sd: spec.chaos.noise_sd,
                spot_rate: spec.chaos.spot_rate,
                spot_warning_secs: spec.chaos.spot_warning_secs,
                noise_window_frac: spec.chaos.noise_window_frac,
            },
        );
        entries
            .iter()
            .enumerate()
            .map(|(ei, entry)| {
                let outcome = run_service(
                    entry.policy,
                    catalog,
                    &plan,
                    by_policy[&entry.policy].as_ref(),
                    &cfgs[ei],
                    seed,
                    Some(&storm),
                )?;
                let mut slowdowns = Vec::new();
                let mut finished = 0usize;
                for job in &outcome.jobs {
                    let Some(done) = job.finished_at else {
                        continue;
                    };
                    finished += 1;
                    let iso = baselines.isolated_secs(
                        catalog,
                        (job.benchmark, job.input_gb),
                        &config.scheduler,
                        seed,
                    )?;
                    if iso > 0.0 {
                        slowdowns.push((done - job.arrived_at) / iso);
                    }
                }
                Ok((
                    slowdowns,
                    ServiceFold {
                        arrivals: outcome.jobs.len(),
                        finished,
                        shed: outcome.shed_jobs,
                        oom_kills: outcome.oom_kills,
                        deferrals: outcome.deferrals,
                        abstain_placements: outcome.abstain_placements,
                        breaker_trips: outcome.breaker_trips,
                        max_queue_depth: outcome.max_queue_depth,
                        mean_queue_depth: outcome.mean_queue_depth,
                        faults: outcome.faults,
                    },
                ))
            })
            .collect::<Result<Vec<RepFold>, ColocateError>>()
    });

    // Fold strictly in replication order for worker-count independence.
    let mut slowdowns: Vec<Vec<f64>> = vec![Vec::new(); entries.len()];
    let mut folds: Vec<Vec<ServiceFold>> = vec![Vec::new(); entries.len()];
    for result in per_rep {
        for (ei, (s, f)) in result?.into_iter().enumerate() {
            slowdowns[ei].extend(s);
            folds[ei].push(f);
        }
    }

    let per_entry = entries
        .iter()
        .enumerate()
        .map(|(ei, e)| {
            let ps = percentiles(&slowdowns[ei], &[50.0, 95.0, 99.0]);
            let n = slowdowns[ei].len();
            let mean = if n > 0 {
                slowdowns[ei].iter().sum::<f64>() / n as f64
            } else {
                f64::NAN
            };
            let mut agg = ServiceFold {
                arrivals: 0,
                finished: 0,
                shed: 0,
                oom_kills: 0,
                deferrals: 0,
                abstain_placements: 0,
                breaker_trips: 0,
                max_queue_depth: 0,
                mean_queue_depth: 0.0,
                faults: FaultStats::default(),
            };
            let reps = folds[ei].len().max(1);
            for f in &folds[ei] {
                agg.arrivals += f.arrivals;
                agg.finished += f.finished;
                agg.shed += f.shed;
                agg.oom_kills += f.oom_kills;
                agg.deferrals += f.deferrals;
                agg.abstain_placements += f.abstain_placements;
                agg.breaker_trips += f.breaker_trips;
                agg.max_queue_depth = agg.max_queue_depth.max(f.max_queue_depth);
                agg.mean_queue_depth += f.mean_queue_depth;
                agg.faults.node_crashes += f.faults.node_crashes;
                agg.faults.executor_crashes += f.faults.executor_crashes;
                agg.faults.monitor_dropouts += f.faults.monitor_dropouts;
                agg.faults.prediction_noise += f.faults.prediction_noise;
                agg.faults.slices_requeued_gb += f.faults.slices_requeued_gb;
                agg.faults.retries += f.faults.retries;
                agg.faults.quarantines += f.faults.quarantines;
                agg.faults.isolated_fallbacks += f.faults.isolated_fallbacks;
                agg.faults.spot_preemptions += f.faults.spot_preemptions;
                agg.faults.drains += f.faults.drains;
            }
            OpenLoopEntryStats {
                label: e.label,
                arrivals: agg.arrivals,
                finished: agg.finished,
                shed: agg.shed,
                slowdown_p50: ps[0],
                slowdown_p95: ps[1],
                slowdown_p99: ps[2],
                slowdown_mean: mean,
                oom_kills: agg.oom_kills,
                deferrals: agg.deferrals,
                abstain_placements: agg.abstain_placements,
                breaker_trips: agg.breaker_trips,
                max_queue_depth: agg.max_queue_depth,
                mean_queue_depth: agg.mean_queue_depth / reps as f64,
                faults: agg.faults,
            }
        })
        .collect();

    Ok(OpenLoopStats {
        replications: spec.replications,
        per_entry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_schedule_custom;
    use sparklite::cluster::ClusterSpec;

    fn small_sched() -> SchedulerConfig {
        SchedulerConfig {
            cluster: ClusterSpec::small(4),
            ..Default::default()
        }
    }

    fn jobs_of(catalog: &Catalog, names: &[&str]) -> Vec<(usize, f64)> {
        names
            .iter()
            .map(|n| {
                let b = catalog.by_name(n).unwrap();
                (b.index(), workloads::mixes::InputSize::Medium.gb())
            })
            .collect()
    }

    fn service_config(sched: SchedulerConfig, job_classes: Vec<(usize, f64)>) -> ServiceConfig {
        ServiceConfig {
            scheduler: sched,
            admission: AdmissionConfig::default(),
            tenant_weights: Vec::new(),
            job_classes,
        }
    }

    #[test]
    fn deadline_batcher_reproduces_the_whole_plan_predictions() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(11);
        let system = crate::training::train_system(
            &catalog,
            &crate::training::TrainingConfig::default(),
            &mut rng,
        )
        .unwrap();
        let sched = small_sched();
        let mut prof_rng = SimRng::seed_from(5);
        let mut profiles = Vec::new();
        let mut jobs = Vec::new();
        for (k, name) in ["HB.Sort", "HB.PageRank", "BDB.Grep", "SB.Hive"]
            .iter()
            .enumerate()
        {
            let bench = catalog.by_name(name).unwrap();
            let (profile, _cost) = crate::profiling::profile_app(
                bench,
                40.0,
                sched.cluster.nodes,
                sched.cluster.node.ram_gb,
                &sched.profiling,
                &mut prof_rng,
            );
            profiles.push(profile);
            jobs.push(JobState {
                tenant: 0,
                arrived: false,
                admitted_at: None,
                shed: false,
                profile_ready: k as f64 * 0.5,
                vft: 0.0,
                committed_gb: 0.0,
                released: false,
            });
        }
        let refs: Vec<&crate::profiling::AppProfile> = profiles.iter().collect();
        let oracle = build_predictor(PolicyKind::Moe, &catalog, Some(&system), &mut rng)
            .unwrap()
            .unwrap()
            .predict_batch(&refs)
            .unwrap();

        // A 1 µs deadline expires before every next arrival (0.5 s apart),
        // so each request dispatches alone; a 100 s deadline never expires
        // inside the plan's 1.5 s span, so everything rides the end flush.
        for (deadline_us, want_batches) in [(1u64, refs.len()), (100_000_000, 1)] {
            let mut batches = 0usize;
            let mut max_wait = 0.0f64;
            let got = batched_service_predictions(
                &system,
                &refs,
                &jobs,
                deadline_us,
                &mut batches,
                &mut max_wait,
            )
            .unwrap();
            assert_eq!(batches, want_batches);
            assert_eq!(got.len(), oracle.len());
            for (a, b) in got.iter().zip(&oracle) {
                assert_eq!(a.low_confidence, b.low_confidence);
                assert_eq!(a.cpu_estimate, b.cpu_estimate);
                for slice in [1.0, 7.5, 30.0] {
                    assert_eq!(
                        a.model.footprint_gb(slice).to_bits(),
                        b.model.footprint_gb(slice).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_plan_reproduces_the_closed_loop_bitwise() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort", "HB.PageRank", "BDB.Grep"]);
        let sched = small_sched();
        let closed =
            run_schedule_custom(PolicyKind::Oracle, &catalog, &jobs, None, &sched, 7).unwrap();

        let classes: Vec<(usize, usize)> = (0..jobs.len()).map(|i| (0, i)).collect();
        let plan = ArrivalPlan::batch(&classes);
        let config = service_config(sched, jobs);
        let open =
            run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 7, None).unwrap();

        assert_eq!(open.makespan_secs.to_bits(), closed.makespan_secs.to_bits());
        assert_eq!(open.oom_kills, closed.oom_kills);
        for (j, a) in open.jobs.iter().zip(closed.per_app.iter()) {
            assert_eq!(j.finished_at.unwrap().to_bits(), a.finished_at.to_bits());
        }
        assert_eq!(open.shed_jobs, 0);
        assert_eq!(open.deferrals, 0);
        assert_eq!(open.breaker_trips, 0);
    }

    #[test]
    fn non_predictive_policies_and_empty_plans_are_rejected() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort"]);
        let config = service_config(small_sched(), jobs);
        let plan = ArrivalPlan::batch(&[(0, 0)]);
        let err = run_service(
            PolicyKind::Isolated,
            &catalog,
            &plan,
            None,
            &config,
            1,
            None,
        );
        assert!(matches!(err, Err(ColocateError::Config(_))));
        let err = run_service(
            PolicyKind::Oracle,
            &catalog,
            &ArrivalPlan::none(),
            None,
            &config,
            1,
            None,
        );
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn out_of_range_job_classes_are_rejected() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort"]);
        let config = service_config(small_sched(), jobs);
        let plan = ArrivalPlan::batch(&[(0, 5)]);
        let err = run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 1, None);
        assert!(matches!(err, Err(ColocateError::Config(_))));
    }

    #[test]
    fn service_runs_are_deterministic_per_seed() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort", "BDB.Grep"]);
        let cfg = ArrivalPlanConfig {
            process: ArrivalProcess::Poisson {
                rate_per_sec: 0.002,
            },
            horizon_secs: 3_000.0,
            tenants: 2,
            job_classes: jobs.len(),
            max_jobs: 5,
        };
        let plan = ArrivalPlan::generate(3, &cfg);
        let config = ServiceConfig {
            admission: AdmissionConfig::controlled(),
            ..service_config(small_sched(), jobs)
        };
        let a = run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 11, None).unwrap();
        let b = run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 11, None).unwrap();
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.shed_jobs, b.shed_jobs);
        assert_eq!(a.deferrals, b.deferrals);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            assert_eq!(
                x.finished_at.map(f64::to_bits),
                y.finished_at.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn shedding_bounds_the_queue_and_conserves_the_rest() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort"]);
        // A burst of same-instant arrivals against a tiny queue: everything
        // above the watermark is shed, everything kept still finishes.
        let classes: Vec<(usize, usize)> = (0..8).map(|_| (0, 0)).collect();
        let plan = ArrivalPlan::batch(&classes);
        let config = ServiceConfig {
            admission: AdmissionConfig {
                enabled: true,
                queue_capacity: 4,
                shed_watermark: 2,
                ..AdmissionConfig::default()
            },
            ..service_config(small_sched(), jobs)
        };
        let out = run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 5, None).unwrap();
        assert!(out.shed_jobs > 0, "expected shedding under the burst");
        let finished = out.jobs.iter().filter(|j| j.finished_at.is_some()).count();
        assert_eq!(finished + out.shed_jobs, out.jobs.len());
        for j in &out.jobs {
            if j.shed {
                assert!(j.finished_at.is_none() && j.admitted_at.is_none());
            } else {
                assert!(j.finished_at.is_some());
            }
        }
        assert!(out.max_queue_depth <= config.admission.queue_capacity + 1);
    }

    #[test]
    fn admission_control_defers_under_pressure_but_drains() {
        let catalog = Catalog::paper();
        let jobs = jobs_of(&catalog, &["HB.Sort", "HB.PageRank"]);
        let classes: Vec<(usize, usize)> = (0..4).map(|i| (i % 2, i % 2)).collect();
        let plan = ArrivalPlan::batch(&classes);
        let config = ServiceConfig {
            admission: AdmissionConfig {
                enabled: true,
                headroom_frac: 0.01,
                ..AdmissionConfig::default()
            },
            ..service_config(small_sched(), jobs)
        };
        let out = run_service(PolicyKind::Oracle, &catalog, &plan, None, &config, 9, None).unwrap();
        // The tight headroom forces serialisation, but everything drains.
        assert!(out.jobs.iter().all(|j| j.finished_at.is_some()));
        assert!(out.deferrals > 0, "expected backpressure deferrals");
        assert_eq!(out.shed_jobs, 0);
        // Admission order respects arrival: each job admitted no earlier
        // than it arrived and profiled.
        for j in &out.jobs {
            assert!(j.admitted_at.unwrap() >= j.arrived_at);
        }
    }
}
