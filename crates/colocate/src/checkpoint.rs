//! Opt-in journaled checkpointing for campaign runs.
//!
//! A campaign (see [`crate::harness`]) folds per-mix results into Welford
//! accumulators strictly in mix-index order; the final statistics are a
//! pure function of that ordered fold sequence. This module persists the
//! sequence: each committed fold is appended to a [`simkit::journal`]
//! record log, and on restart the harness replays the journaled folds,
//! skips the mixes they cover, and continues — producing **bit-for-bit**
//! the same `ScenarioStats`/`ChaosStats` as an uninterrupted run, at any
//! worker count.
//!
//! The journal header binds the *campaign definition*: base seed, policy
//! set, scenario, mix bounds, a catalog signature, and a signature of the
//! scheduler + training configuration. The worker count is deliberately
//! **excluded** — results are worker-count invariant (the PR 1 guarantee),
//! so a sweep started under `SPARK_MOE_THREADS=4` may be resumed under
//! `SPARK_MOE_THREADS=1` and vice versa. Anything else differing (another
//! seed, another policy list, a changed catalog) is a different campaign,
//! and [`simkit::journal::Journal::open`] refuses to resume it.

use crate::harness::{ChaosEntry, ChaosSpec, RunConfig};
use crate::scheduler::{FaultStats, PolicyKind};
use crate::ColocateError;
use simkit::journal::{fnv64, wire, KillPoint};
use std::path::PathBuf;
use workloads::catalog::Catalog;
use workloads::mixes::MixScenario;

/// Opt-in checkpointing for a campaign run.
///
/// Passed to the `*_checkpointed` harness entry points. `path` is the
/// journal file for this specific campaign (one campaign, one file);
/// `flush_every` is the fsync cadence in committed folds (1 = every fold
/// durable, the default); `kill_point` arms deterministic abort injection
/// and exists for the kill–resume tests — leave it `None` in real runs.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Journal file backing this campaign.
    pub path: PathBuf,
    /// Fsync cadence, in committed folds (clamped to ≥ 1).
    pub flush_every: u32,
    /// Deterministic abort injection (test-only); see [`KillPoint`].
    pub kill_point: Option<KillPoint>,
}

impl CheckpointConfig {
    /// A config journaling to `path`, fsyncing every fold, no kill point.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            flush_every: 1,
            kill_point: None,
        }
    }
}

/// Appends a length-prefixed string (unambiguous concatenation).
fn push_str(buf: &mut Vec<u8>, s: &str) {
    wire::put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// FNV-64 signature of the benchmark catalog: names, CPU utilisations,
/// processing rates and fitted memory curves. A campaign resumed against
/// an edited catalog would silently mix incompatible folds; this makes
/// the journal binding catch it.
#[must_use]
pub fn catalog_signature(catalog: &Catalog) -> u64 {
    let mut buf = Vec::new();
    for b in catalog.all() {
        push_str(&mut buf, &b.name());
        wire::put_f64(&mut buf, b.cpu_util());
        wire::put_f64(&mut buf, b.rate_gb_per_s());
        push_str(&mut buf, &format!("{:?}", b.curve()));
    }
    fnv64(&buf)
}

/// FNV-64 signature of the run configuration — scheduler plus training
/// settings. The worker count is **not** hashed: campaign results are
/// bit-for-bit identical for every worker count, so a journal may be
/// resumed under any `SPARK_MOE_THREADS` (that invariance is the header's
/// "thread-independence guarantee").
#[must_use]
pub fn config_signature(config: &RunConfig) -> u64 {
    let mut buf = Vec::new();
    push_str(&mut buf, &format!("{:?}", config.scheduler));
    push_str(&mut buf, &format!("{:?}", config.training));
    fnv64(&buf)
}

fn binding_common(
    kind: &str,
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    base_seed: u64,
) -> Vec<u8> {
    let mut buf = Vec::new();
    push_str(&mut buf, kind);
    wire::put_u64(&mut buf, base_seed);
    wire::put_u64(&mut buf, scenario.label as u64);
    wire::put_u64(&mut buf, scenario.apps as u64);
    wire::put_u64(&mut buf, catalog_signature(catalog));
    wire::put_u64(&mut buf, config_signature(config));
    buf
}

/// Header binding for an `evaluate_scenario` campaign.
#[must_use]
pub fn scenario_binding(
    policy: PolicyKind,
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    min_mixes: usize,
    max_mixes: usize,
    base_seed: u64,
) -> Vec<u8> {
    let mut buf = binding_common("scenario", scenario, catalog, config, base_seed);
    push_str(&mut buf, policy.display_name());
    wire::put_u64(&mut buf, min_mixes as u64);
    wire::put_u64(&mut buf, max_mixes as u64);
    buf
}

/// Header binding for an `evaluate_scenario_multi` campaign.
#[must_use]
pub fn multi_binding(
    policies: &[PolicyKind],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
) -> Vec<u8> {
    let mut buf = binding_common("multi", scenario, catalog, config, base_seed);
    wire::put_u64(&mut buf, mixes as u64);
    wire::put_u64(&mut buf, policies.len() as u64);
    for p in policies {
        push_str(&mut buf, p.display_name());
    }
    buf
}

/// Header binding for an `evaluate_chaos` campaign.
#[must_use]
pub fn chaos_binding(
    entries: &[ChaosEntry],
    scenario: MixScenario,
    catalog: &Catalog,
    config: &RunConfig,
    mixes: usize,
    base_seed: u64,
    chaos: &ChaosSpec,
) -> Vec<u8> {
    let mut buf = binding_common("chaos", scenario, catalog, config, base_seed);
    wire::put_u64(&mut buf, mixes as u64);
    wire::put_u64(&mut buf, entries.len() as u64);
    for e in entries {
        push_str(&mut buf, e.label);
        push_str(&mut buf, e.policy.display_name());
        push_str(&mut buf, &format!("{:?}", e.resilience));
    }
    wire::put_f64(&mut buf, chaos.intensity);
    wire::put_f64(&mut buf, chaos.mean_outage_secs);
    wire::put_f64(&mut buf, chaos.mean_dropout_secs);
    wire::put_f64(&mut buf, chaos.noise_sd);
    wire::put_f64(&mut buf, chaos.horizon_frac);
    wire::put_f64(&mut buf, chaos.spot_rate);
    wire::put_f64(&mut buf, chaos.spot_warning_secs);
    buf
}

/// One committed fold of a single- or multi-policy campaign: the
/// `(normalized STP, ANTT reduction %)` pair per policy, raw f64 bits.
#[must_use]
pub fn encode_folds(pairs: &[(f64, f64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(pairs.len() * 16);
    for &(stp, antt) in pairs {
        wire::put_f64(&mut buf, stp);
        wire::put_f64(&mut buf, antt);
    }
    buf
}

/// Decodes [`encode_folds`] for `expect` policies.
///
/// # Errors
///
/// [`ColocateError::Checkpoint`] when the payload length does not match.
pub fn decode_folds(payload: &[u8], expect: usize) -> Result<Vec<(f64, f64)>, ColocateError> {
    let mut r = wire::Reader::new(payload);
    let mut pairs = Vec::with_capacity(expect);
    for _ in 0..expect {
        pairs.push((r.f64()?, r.f64()?));
    }
    if !r.exhausted() {
        return Err(ColocateError::Checkpoint(
            simkit::journal::JournalError::Corrupt(
                "campaign record longer than the policy set expects".into(),
            ),
        ));
    }
    Ok(pairs)
}

/// Per-entry fold of one chaos mix: normalized STP, ANTT reduction, OOM
/// kills, and the delivered fault/recovery counters.
pub type ChaosFold = (f64, f64, usize, FaultStats);

/// One committed chaos fold (all entries of one mix), raw bits.
#[must_use]
pub fn encode_chaos_folds(folds: &[ChaosFold]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(folds.len() * 88);
    for (stp, antt, ooms, f) in folds {
        wire::put_f64(&mut buf, *stp);
        wire::put_f64(&mut buf, *antt);
        wire::put_u64(&mut buf, *ooms as u64);
        wire::put_u64(&mut buf, f.node_crashes as u64);
        wire::put_u64(&mut buf, f.executor_crashes as u64);
        wire::put_u64(&mut buf, f.monitor_dropouts as u64);
        wire::put_u64(&mut buf, f.prediction_noise as u64);
        wire::put_f64(&mut buf, f.slices_requeued_gb);
        wire::put_u64(&mut buf, f.retries as u64);
        wire::put_u64(&mut buf, f.quarantines as u64);
        wire::put_u64(&mut buf, f.isolated_fallbacks as u64);
        wire::put_u64(&mut buf, f.spot_preemptions as u64);
        wire::put_u64(&mut buf, f.drains as u64);
    }
    buf
}

/// Decodes [`encode_chaos_folds`] for `expect` entries.
///
/// # Errors
///
/// [`ColocateError::Checkpoint`] when the payload length does not match.
pub fn decode_chaos_folds(payload: &[u8], expect: usize) -> Result<Vec<ChaosFold>, ColocateError> {
    let mut r = wire::Reader::new(payload);
    let mut folds = Vec::with_capacity(expect);
    for _ in 0..expect {
        let stp = r.f64()?;
        let antt = r.f64()?;
        let ooms = r.u64()? as usize;
        let faults = FaultStats {
            node_crashes: r.u64()? as usize,
            executor_crashes: r.u64()? as usize,
            monitor_dropouts: r.u64()? as usize,
            prediction_noise: r.u64()? as usize,
            slices_requeued_gb: r.f64()?,
            retries: r.u64()? as usize,
            quarantines: r.u64()? as usize,
            isolated_fallbacks: r.u64()? as usize,
            spot_preemptions: r.u64()? as usize,
            drains: r.u64()? as usize,
        };
        folds.push((stp, antt, ooms, faults));
    }
    if !r.exhausted() {
        return Err(ColocateError::Checkpoint(
            simkit::journal::JournalError::Corrupt(
                "chaos record longer than the entry set expects".into(),
            ),
        ));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ResilienceConfig;

    #[test]
    fn folds_round_trip_bitwise() {
        let pairs = vec![(1.5, -3.25), (f64::MIN_POSITIVE, 0.1 + 0.2)];
        let back = decode_folds(&encode_folds(&pairs), 2).unwrap();
        for (a, b) in pairs.iter().zip(&back) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert!(decode_folds(&encode_folds(&pairs), 3).is_err());
        assert!(decode_folds(&encode_folds(&pairs), 1).is_err());
    }

    #[test]
    fn chaos_folds_round_trip() {
        let fold: ChaosFold = (
            2.0,
            41.5,
            3,
            FaultStats {
                node_crashes: 1,
                executor_crashes: 2,
                monitor_dropouts: 3,
                prediction_noise: 4,
                slices_requeued_gb: 7.5,
                retries: 5,
                quarantines: 6,
                isolated_fallbacks: 7,
                spot_preemptions: 8,
                drains: 9,
            },
        );
        let back = decode_chaos_folds(&encode_chaos_folds(&[fold]), 1).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].2, 3);
        assert_eq!(back[0].3, fold.3);
    }

    #[test]
    fn bindings_separate_campaign_definitions() {
        let catalog = Catalog::paper();
        let cfg = RunConfig::default();
        let sc = MixScenario { label: 1, apps: 2 };
        let a = scenario_binding(PolicyKind::Moe, sc, &catalog, &cfg, 2, 8, 42);
        let b = scenario_binding(PolicyKind::Moe, sc, &catalog, &cfg, 2, 8, 43);
        let c = scenario_binding(PolicyKind::Oracle, sc, &catalog, &cfg, 2, 8, 42);
        assert_ne!(a, b, "base seed must be bound");
        assert_ne!(a, c, "policy must be bound");
        // Worker count is intentionally NOT bound.
        let mut threaded = cfg.clone();
        threaded.workers = Some(4);
        let d = scenario_binding(PolicyKind::Moe, sc, &catalog, &threaded, 2, 8, 42);
        assert_eq!(a, d, "worker count must not be bound");
        // Chaos bindings see resilience and spec changes.
        let entries = [ChaosEntry {
            label: "plain",
            policy: PolicyKind::Moe,
            resilience: ResilienceConfig::default(),
        }];
        let healed = [ChaosEntry {
            label: "plain",
            policy: PolicyKind::Moe,
            resilience: ResilienceConfig::self_healing(),
        }];
        let spec = ChaosSpec::at_intensity(0.3);
        let e = chaos_binding(&entries, sc, &catalog, &cfg, 4, 42, &spec);
        let f = chaos_binding(&healed, sc, &catalog, &cfg, 4, 42, &spec);
        let g = chaos_binding(
            &entries,
            sc,
            &catalog,
            &cfg,
            4,
            42,
            &ChaosSpec::at_intensity(0.5),
        );
        assert_ne!(e, f, "resilience must be bound");
        assert_ne!(e, g, "intensity must be bound");
    }
}
