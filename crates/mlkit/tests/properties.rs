//! Property-based tests for mlkit invariants.

use mlkit::eval::{accuracy, r_squared};
use mlkit::knn::KnnClassifier;
use mlkit::pca::Pca;
use mlkit::regression::{evaluate, fit_family, solve_two_point, CurveFamily, FittedCurve};
use mlkit::scaling::MinMaxScaler;
use mlkit::Classifier;
use proptest::prelude::*;

proptest! {
    /// Min-max scaling always lands in [0, 1] and inverse-transform
    /// round-trips in-range values.
    #[test]
    fn scaler_bounds_and_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3), 2..50),
        probe_idx in 0usize..50,
    ) {
        let scaler = MinMaxScaler::fit(&rows).unwrap();
        for row in &rows {
            let z = scaler.transform(row).unwrap();
            prop_assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        let probe = &rows[probe_idx % rows.len()];
        let z = scaler.transform(probe).unwrap();
        let back = scaler.inverse_transform(&z).unwrap();
        for (a, b) in probe.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Full-rank PCA is a lossless change of basis.
    #[test]
    fn full_rank_pca_is_lossless(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100f64..100.0, 3), 4..30),
    ) {
        let pca = Pca::fit(&rows, 3).unwrap();
        for row in &rows {
            let z = pca.transform(row).unwrap();
            let back = pca.inverse_transform(&z).unwrap();
            for (a, b) in row.iter().zip(back.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    /// Explained-variance ratios are non-negative, descending and ≤ 1.
    #[test]
    fn pca_variance_ratios_well_formed(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10f64..10.0, 4), 5..40),
    ) {
        let pca = Pca::fit(&rows, 4).unwrap();
        let ratios = pca.explained_variance_ratio();
        let sum: f64 = ratios.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9);
        for w in ratios.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(ratios.iter().all(|&r| r >= -1e-12));
    }

    /// KNN with k = 1 always classifies its own training points correctly
    /// (when exemplars are distinct).
    #[test]
    fn knn_memorises_training_set(
        points in proptest::collection::hash_set((-1000i32..1000, -1000i32..1000), 2..40),
    ) {
        let xs: Vec<Vec<f64>> = points.iter()
            .map(|&(a, b)| vec![f64::from(a), f64::from(b)])
            .collect();
        let ys: Vec<usize> = (0..xs.len()).map(|i| i % 3).collect();
        let knn = KnnClassifier::fit(&xs, &ys, 1).unwrap();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            prop_assert_eq!(knn.predict(x), y);
        }
    }

    /// Two-point calibration exactly reproduces noise-free curves at the
    /// calibration points and closely everywhere else.
    #[test]
    fn calibration_recovers_curves(
        m in 0.5f64..50.0,
        b in 0.1f64..8.0,
        family_idx in 0usize..3,
        x1 in 0.01f64..0.5,
    ) {
        let family = CurveFamily::ALL[family_idx];
        let truth = FittedCurve { family, m, b };
        let x2 = x1 * 2.0;
        let p1 = (x1, truth.eval(x1));
        let p2 = (x2, truth.eval(x2));
        let fitted = solve_two_point(family, p1, p2).unwrap();
        for probe in [x1 * 0.5, x1, x2, x2 * 4.0, x2 * 32.0] {
            let want = truth.eval(probe);
            let got = fitted.eval(probe);
            prop_assert!(
                (want - got).abs() <= 1e-4 * (1.0 + want.abs()),
                "family {:?}: want {} got {} at x={}", family, want, got, probe
            );
        }
    }

    /// Least-squares fitting of a noise-free curve of the same family
    /// yields near-zero residuals.
    #[test]
    fn fit_family_interpolates_noise_free_data(
        m in 0.5f64..20.0,
        b in 0.2f64..4.0,
        family_idx in 0usize..3,
    ) {
        let family = CurveFamily::ALL[family_idx];
        let xs: Vec<f64> = (1..=25).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| evaluate(family, m, b, x)).collect();
        let fit = fit_family(family, &xs, &ys).unwrap();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            prop_assert!((fit.eval(x) - y).abs() < 1e-2 * (1.0 + y.abs()));
        }
    }

    /// Accuracy is always within [0, 1] and equals 1 against itself.
    #[test]
    fn accuracy_bounds(labels in proptest::collection::vec(0usize..5, 1..100)) {
        prop_assert_eq!(accuracy(&labels, &labels), 1.0);
        let zeros = vec![0usize; labels.len()];
        let a = accuracy(&zeros, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// R² of a perfect prediction is 1.
    #[test]
    fn r_squared_perfect(ys in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
        prop_assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-9);
    }
}
