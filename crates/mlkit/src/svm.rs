//! Linear support vector machine trained with the Pegasos sub-gradient
//! method, extended to multi-class via one-vs-rest — a Table 5 alternative
//! expert selector.

use crate::linalg::dot;
use crate::{Classifier, MlError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for SVM training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    /// Seed for sample ordering.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lambda: 1e-3,
            epochs: 200,
            seed: 0x5EED,
        }
    }
}

/// A fitted one-vs-rest linear SVM.
///
/// # Examples
///
/// ```
/// use mlkit::svm::{LinearSvm, SvmParams};
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0, 0.0], vec![0.3, 0.1], vec![4.0, 4.0], vec![4.2, 3.9]];
/// let ys = vec![0, 0, 1, 1];
/// let svm = LinearSvm::fit(&xs, &ys, SvmParams::default())?;
/// assert_eq!(svm.predict(&[0.1, 0.1]), 0);
/// assert_eq!(svm.predict(&[4.1, 4.1]), 1);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    /// One `(weights, bias)` per class.
    hyperplanes: Vec<(Vec<f64>, f64)>,
    dims: usize,
}

impl LinearSvm {
    /// Trains one binary Pegasos SVM per class.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs, a
    /// label mismatch, non-positive λ, or zero epochs.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], params: SvmParams) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        if params.lambda <= 0.0 || params.epochs == 0 {
            return Err(MlError::InvalidTrainingData(
                "lambda must be positive and epochs nonzero".into(),
            ));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut hyperplanes = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            let targets: Vec<f64> = ys
                .iter()
                .map(|&y| if y == class { 1.0 } else { -1.0 })
                .collect();
            hyperplanes.push(train_binary(xs, &targets, params, &mut rng));
        }
        Ok(LinearSvm { hyperplanes, dims })
    }

    /// The signed decision value of `x` for `class` (margin distance scaled
    /// by the weight norm).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range class or wrong dimensionality.
    #[must_use]
    pub fn decision_value(&self, class: usize, x: &[f64]) -> f64 {
        let (w, b) = &self.hyperplanes[class];
        dot(w, x) + b
    }
}

fn train_binary(
    xs: &[Vec<f64>],
    targets: &[f64],
    params: SvmParams,
    rng: &mut StdRng,
) -> (Vec<f64>, f64) {
    let dims = xs[0].len();
    let n = xs.len();
    let mut w = vec![0.0; dims];
    let mut b = 0.0;
    let mut t: u64 = 0;
    // Warm-start the step counter so the first learning rates are bounded
    // by 1 — the textbook 1/(λt) schedule takes an enormous unregularised
    // first step on the bias, which never shrinks back.
    let t0 = 1.0 / params.lambda;
    for _ in 0..params.epochs {
        for _ in 0..n {
            t += 1;
            let i = rng.gen_range(0..n);
            let eta = 1.0 / (params.lambda * (t as f64 + t0));
            let margin = targets[i] * (dot(&w, &xs[i]) + b);
            // Sub-gradient step on the hinge loss + L2 regulariser.
            for wj in w.iter_mut() {
                *wj *= 1.0 - eta * params.lambda;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(xs[i].iter()) {
                    *wj += eta * targets[i] * xj;
                }
                b += eta * targets[i];
            }
        }
    }
    (w, b)
}

impl Classifier for LinearSvm {
    fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dims, "dimension mismatch in SVM predict");
        // `fit` guarantees at least one hyperplane; `total_cmp` matches
        // `partial_cmp` on finite decision values and never panics.
        (0..self.hyperplanes.len())
            .max_by(|&a, &b| {
                self.decision_value(a, x)
                    .total_cmp(&self.decision_value(b, x))
            })
            .unwrap_or(0)
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            xs.push(vec![j, j]);
            ys.push(0);
            xs.push(vec![5.0 + j, 5.0 - j]);
            ys.push(1);
            xs.push(vec![-5.0 + j, 5.0 + j]);
            ys.push(2);
        }
        (xs, ys)
    }

    #[test]
    fn separates_three_classes() {
        let (xs, ys) = blobs();
        let svm = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        assert_eq!(svm.predict(&[0.2, 0.2]), 0);
        assert_eq!(svm.predict(&[5.2, 4.8]), 1);
        assert_eq!(svm.predict(&[-4.8, 5.2]), 2);
    }

    #[test]
    fn training_accuracy_is_high_on_separable_data() {
        let (xs, ys) = blobs();
        let svm = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        let hits = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(hits as f64 / xs.len() as f64 > 0.95);
    }

    #[test]
    fn decision_values_order_correctly() {
        let (xs, ys) = blobs();
        let svm = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        let x = [5.0, 5.0];
        assert!(svm.decision_value(1, &x) > svm.decision_value(0, &x));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (xs, ys) = blobs();
        let a = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        let b = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(LinearSvm::fit(&[], &[], SvmParams::default()).is_err());
        let (xs, ys) = blobs();
        assert!(LinearSvm::fit(
            &xs,
            &ys,
            SvmParams {
                lambda: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LinearSvm::fit(
            &xs,
            &ys,
            SvmParams {
                epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn trait_metadata() {
        let (xs, ys) = blobs();
        let svm = LinearSvm::fit(&xs, &ys, SvmParams::default()).unwrap();
        assert_eq!(svm.dims(), 2);
        assert_eq!(svm.name(), "SVM");
    }
}
