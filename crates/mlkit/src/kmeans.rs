//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used to validate the Fig. 16 claim *unsupervised*: clustering the 44
//! benchmarks' feature vectors into three groups should recover the three
//! memory-function families without ever seeing the labels.

use crate::linalg::{euclidean, euclidean_sq};
use crate::MlError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for k-means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// Seed for k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams {
            k: 3,
            max_iter: 100,
            tol: 1e-9,
            seed: 0xC1A55,
        }
    }
}

/// A fitted k-means model.
///
/// # Examples
///
/// ```
/// use mlkit::kmeans::{KMeans, KMeansParams};
/// let data = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0],
///     vec![5.0, 5.0], vec![5.1, 5.0],
/// ];
/// let km = KMeans::fit(&data, KMeansParams { k: 2, ..Default::default() })?;
/// assert_eq!(km.assign(&[0.05, 0.0]), km.assign(&[0.12, 0.1]));
/// assert_ne!(km.assign(&[0.05, 0.0]), km.assign(&[5.05, 5.0]));
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Final cluster assignment of each training point.
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Clusters `data` into `params.k` groups.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when the data is empty,
    /// ragged, or has fewer points than clusters.
    pub fn fit(data: &[Vec<f64>], params: KMeansParams) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::InvalidTrainingData("empty data".into()));
        }
        let dims = data[0].len();
        if dims == 0 || data.iter().any(|r| r.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        if params.k == 0 || params.k > data.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "k must be in 1..={}, got {}",
                data.len(),
                params.k
            )));
        }
        if data.iter().any(|r| r.iter().any(|v| !v.is_finite())) {
            return Err(MlError::InvalidTrainingData(
                "non-finite value in clustering data".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut centroids = kmeans_plus_plus(data, params.k, &mut rng);
        let mut assignments = vec![0usize; data.len()];
        let mut iterations = 0;

        for _ in 0..params.max_iter {
            iterations += 1;
            // Assignment step.
            for (i, point) in data.iter().enumerate() {
                assignments[i] = nearest_sq(&centroids, point).0;
            }
            // Update step.
            let mut movement = 0.0;
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&Vec<f64>> = data
                    .iter()
                    .zip(assignments.iter())
                    .filter(|(_, &a)| a == c)
                    .map(|(p, _)| p)
                    .collect();
                if members.is_empty() {
                    continue; // keep the old centroid for empty clusters
                }
                let mut new_centroid = vec![0.0; dims];
                for m in &members {
                    for (d, v) in m.iter().enumerate() {
                        new_centroid[d] += v;
                    }
                }
                for v in &mut new_centroid {
                    *v /= members.len() as f64;
                }
                movement += euclidean(centroid, &new_centroid);
                *centroid = new_centroid;
            }
            if movement <= params.tol {
                break;
            }
        }
        for (i, point) in data.iter().enumerate() {
            assignments[i] = nearest_sq(&centroids, point).0;
        }
        let inertia = data
            .iter()
            .zip(assignments.iter())
            .map(|(p, &a)| euclidean(p, &centroids[a]).powi(2))
            .sum();
        Ok(KMeans {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }

    /// Cluster centroids (length `k`).
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Final assignment of each training point.
    #[must_use]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of points to their centroids.
    #[must_use]
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns a new point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics on wrong dimensionality.
    #[must_use]
    pub fn assign(&self, point: &[f64]) -> usize {
        nearest_sq(&self.centroids, point).0
    }
}

/// Nearest centroid by **squared** distance: ranking by `d²` picks the
/// same winner (ties included — `sqrt` is injective on non-negatives) as
/// ranking by `d`, without a `sqrt` per centroid. Callers needing the
/// actual distance take `.1.sqrt()`.
fn nearest_sq(centroids: &[Vec<f64>], point: &[f64]) -> (usize, f64) {
    // `fit` guarantees k >= 1 finite centroids; `total_cmp` keeps the
    // selection panic-free (and identical to `partial_cmp` on finite
    // distances) even if a caller feeds a non-finite point.
    centroids
        .iter()
        .enumerate()
        .map(|(i, c)| (i, euclidean_sq(c, point)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, f64::INFINITY))
}

/// k-means++ seeding: subsequent centroids drawn proportionally to squared
/// distance from the chosen set.
fn kmeans_plus_plus(data: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    while centroids.len() < k {
        // `sqrt().powi(2)` reproduces the historical weight bit for bit
        // (it was computed as `euclidean(..).powi(2)`), while the search
        // itself no longer takes a root per (point, centroid) pair.
        let d2: Vec<f64> = data
            .iter()
            .map(|p| nearest_sq(&centroids, p).1.sqrt().powi(2))
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with centroids; duplicate one.
            centroids.push(data[rng.gen_range(0..data.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = data.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(data[chosen].clone());
    }
    centroids
}

/// Agreement between a clustering and reference labels: the best-matching
/// permutation of cluster ids is found greedily and the fraction of points
/// whose mapped cluster equals the reference label is returned.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn cluster_label_agreement(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len(), "length mismatch");
    assert!(!assignments.is_empty(), "empty clustering");
    let k = assignments.iter().copied().max().unwrap_or(0) + 1;
    let l = labels.iter().copied().max().unwrap_or(0) + 1;
    // Count co-occurrences.
    let mut counts = vec![vec![0usize; l]; k];
    for (&a, &y) in assignments.iter().zip(labels.iter()) {
        counts[a][y] += 1;
    }
    // Greedy matching (k and l are tiny here).
    let mut used = vec![false; l];
    let mut matched = 0usize;
    for _ in 0..k.min(l) {
        let mut best = (0usize, 0usize, 0usize);
        for (c, row) in counts.iter().enumerate() {
            for (y, &n) in row.iter().enumerate() {
                if !used[y] && n >= best.2 {
                    best = (c, y, n);
                }
            }
        }
        used[best.1] = true;
        matched += best.2;
        for row in &mut counts {
            row[best.1] = 0;
        }
        counts[best.0] = vec![0; l];
    }
    matched as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            let j = (i % 4) as f64 * 0.05;
            data.push(vec![j, j]);
            labels.push(0);
            data.push(vec![5.0 + j, -j]);
            labels.push(1);
            data.push(vec![-4.0 - j, 6.0 + j]);
            labels.push(2);
        }
        (data, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (data, labels) = three_blobs();
        let km = KMeans::fit(&data, KMeansParams::default()).unwrap();
        let agreement = cluster_label_agreement(km.assignments(), &labels);
        assert!(agreement > 0.99, "agreement {agreement}");
        assert_eq!(km.centroids().len(), 3);
        assert!(km.inertia() < 1.0);
    }

    #[test]
    fn assign_routes_new_points() {
        let (data, _) = three_blobs();
        let km = KMeans::fit(&data, KMeansParams::default()).unwrap();
        let a = km.assign(&[0.1, 0.1]);
        let b = km.assign(&[5.1, -0.1]);
        let c = km.assign(&[-4.1, 6.1]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (data, _) = three_blobs();
        let a = KMeans::fit(&data, KMeansParams::default()).unwrap();
        let b = KMeans::fit(&data, KMeansParams::default()).unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0]];
        let km = KMeans::fit(
            &data,
            KMeansParams {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(km.inertia() < 1e-18);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(KMeans::fit(&[], KMeansParams::default()).is_err());
        let data = vec![vec![0.0], vec![1.0]];
        assert!(KMeans::fit(
            &data,
            KMeansParams {
                k: 3,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &data,
            KMeansParams {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn agreement_handles_permuted_ids() {
        // Same partition, different ids.
        let assignments = [1, 1, 0, 0, 2, 2];
        let labels = [0, 0, 2, 2, 1, 1];
        assert_eq!(cluster_label_agreement(&assignments, &labels), 1.0);
    }

    #[test]
    fn agreement_of_random_assignment_is_partial() {
        let assignments = [0, 1, 2, 0, 1, 2];
        let labels = [0, 0, 0, 1, 1, 1];
        let a = cluster_label_agreement(&assignments, &labels);
        assert!(a < 0.75, "agreement {a}");
    }
}
