//! Minimal dense linear algebra: a row-major [`Matrix`] with the operations
//! PCA and the classifiers need (multiplication, transpose, covariance,
//! symmetric eigendecomposition via cyclic Jacobi).
//!
//! The arithmetic lives in the flat slice kernels of [`crate::kernels`];
//! this module owns shape checking and the `Matrix` container. Optimized
//! and naive paths are pinned bitwise-equal by the kernel property tests
//! (see the `kernels` module docs for the exact reduction-order
//! argument).

use crate::kernels;
use crate::MlError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let data = rows.into_iter().flatten().collect();
        Matrix {
            rows: 0,
            cols,
            data,
        }
        .with_rows_fixed()
    }

    fn with_rows_fixed(mut self) -> Self {
        self.rows = self.data.len() / self.cols;
        self
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of range");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Borrow of the full row-major backing store.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        kernels::transpose(self.rows, self.cols, &self.data, &mut t.data);
        t
    }

    /// In-place transpose (square matrices only; no reallocation).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Numerical`] if the matrix is not square.
    pub fn transpose_in_place(&mut self) -> Result<(), MlError> {
        if self.rows != self.cols {
            return Err(MlError::Numerical(
                "in-place transpose requires a square matrix".into(),
            ));
        }
        kernels::transpose_in_place_square(self.rows, &mut self.data);
        Ok(())
    }

    /// Matrix product `self × rhs`, computed by the vectorizable broadcast
    /// kernel ([`kernels::matmul_dense`]). Bitwise identical to
    /// [`Matrix::matmul_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != rhs.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        kernels::matmul_dense(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Naive matrix product: the documented oracle [`matmul`]
    /// (`Matrix::matmul`) is property-tested against, kept deliberately
    /// simple. Dense — earlier revisions skipped `a == 0.0` terms, which
    /// silently suppressed `0 × ∞ = NaN` propagation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != rhs.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        kernels::matmul_naive(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MlError> {
        if v.len() != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        kernels::matvec(self.rows, self.cols, &self.data, v, &mut out);
        Ok(out)
    }

    /// Fused centered matrix-vector product `self × (v − sub)` without
    /// materialising the centered temporary (PCA's projection hot path).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `v` or `sub` length
    /// differs from `self.cols()`.
    pub fn matvec_sub(&self, v: &[f64], sub: &[f64]) -> Result<Vec<f64>, MlError> {
        if v.len() != self.cols || sub.len() != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                actual: if v.len() != self.cols {
                    v.len()
                } else {
                    sub.len()
                },
            });
        }
        let mut out = vec![0.0; self.rows];
        kernels::matvec_sub(self.rows, self.cols, &self.data, v, sub, &mut out);
        Ok(out)
    }

    /// Per-column means.
    #[must_use]
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.get(r, c);
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Returns a copy with each column's mean subtracted.
    #[must_use]
    pub fn center_columns(&self) -> Matrix {
        let means = self.column_means();
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, &mean) in means.iter().enumerate() {
                out.set(r, c, self.get(r, c) - mean);
            }
        }
        out
    }

    /// Sample covariance matrix of the rows (dividing by `n − 1`; by `n`
    /// when there is a single row).
    ///
    /// Works on the **transposed** centered data so each `(i, j)` entry is
    /// one contiguous dot product; the reduction still runs over samples
    /// in ascending order, so the result is bitwise identical to the
    /// per-element `get()` double loop it replaced.
    #[must_use]
    pub fn covariance(&self) -> Matrix {
        let centered = self.center_columns();
        let mut ct = vec![0.0; centered.data.len()];
        kernels::transpose(self.rows, self.cols, &centered.data, &mut ct);
        let denom = if self.rows > 1 {
            (self.rows - 1) as f64
        } else {
            1.0
        };
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            let ci = &ct[i * self.rows..(i + 1) * self.rows];
            for j in i..self.cols {
                let cj = &ct[j * self.rows..(j + 1) * self.rows];
                // Manual 0.0-start accumulation: the historical loop's
                // reduction, not `f64::sum` (which folds from the first
                // element and differs on signed zeros).
                let mut s = 0.0;
                for (x, y) in ci.iter().zip(cj.iter()) {
                    s += x * y;
                }
                s /= denom;
                cov.data[i * self.cols + j] = s;
                cov.data[j * self.cols + i] = s;
            }
        }
        cov
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Symmetric eigendecomposition via the cyclic Jacobi method.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; eigenvector `i` is the `i`-th **column** of the returned
    /// matrix.
    ///
    /// The sweep runs over the flat backing store with direct indexing
    /// (no bounds-checked `get`/`set` per rotation element); every
    /// rotation applies the identical formulas in the identical order as
    /// the original per-element version, so eigenvalues and vectors are
    /// bitwise unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Numerical`] if the matrix is not square or the
    /// sweep fails to converge (which for symmetric input it practically
    /// never does).
    pub fn symmetric_eigen(&self) -> Result<(Vec<f64>, Matrix), MlError> {
        if self.rows != self.cols {
            return Err(MlError::Numerical(
                "eigendecomposition requires a square matrix".into(),
            ));
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            v[i * n + i] = 1.0;
        }

        let off_diag = |m: &[f64]| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        s += m[i * n + j].powi(2);
                    }
                }
            }
            s.sqrt()
        };

        let tol = 1e-12 * self.frobenius_norm().max(1e-300);
        let max_sweeps = 100;
        let mut sweeps = 0;
        while off_diag(&a) > tol {
            sweeps += 1;
            if sweeps > max_sweeps {
                return Err(MlError::Numerical("Jacobi sweeps did not converge".into()));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[p * n + q];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[p * n + p];
                    let aqq = a[q * n + q];
                    let theta = 0.5 * (aqq - app) / apq;
                    // Stable computation of tan of the rotation angle.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation A <- JᵀAJ.
                    for k in 0..n {
                        let akp = a[k * n + p];
                        let akq = a[k * n + q];
                        a[k * n + p] = c * akp - s * akq;
                        a[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p * n + k];
                        let aqk = a[q * n + k];
                        a[p * n + k] = c * apk - s * aqk;
                        a[q * n + k] = s * apk + c * aqk;
                    }
                    // Accumulate eigenvectors V <- VJ.
                    for k in 0..n {
                        let vkp = v[k * n + p];
                        let vkq = v[k * n + q];
                        v[k * n + p] = c * vkp - s * vkq;
                        v[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        // `total_cmp` orders exactly as `partial_cmp` on the finite
        // eigenvalues Jacobi produces, and stays panic-free if a caller
        // slips a non-finite entry past the input checks.
        order.sort_by(|&i, &j| a[j * n + j].total_cmp(&a[i * n + i]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i * n + i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                vectors.data[r * n + new_col] = v[r * n + old_col];
            }
        }
        Ok((eigenvalues, vectors))
    }
}

/// Euclidean distance between two equal-length vectors.
///
/// Exactly `euclidean_sq(a, b).sqrt()`; callers that only *rank*
/// distances (KNN neighbour selection, k-means assignment) should use
/// [`euclidean_sq`] and skip the `sqrt`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance between two equal-length vectors. Ranking
/// by this value selects the same winners (including ties) as ranking by
/// [`euclidean`], since `sqrt` is strictly monotone.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    kernels::euclidean_sq(a, b)
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    assert!(!a.is_empty(), "pearson of empty samples");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(MlError::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn matmul_matches_naive_oracle_bitwise() {
        let a = Matrix::from_rows(
            (0..17)
                .map(|r| {
                    (0..23)
                        .map(|c| (((r * 23 + c) as f64) * 0.618_033_988_75).fract() - 0.5)
                        .collect()
                })
                .collect(),
        );
        let b = Matrix::from_rows(
            (0..23)
                .map(|r| {
                    (0..11)
                        .map(|c| (((r * 11 + c + 5) as f64) * 0.618_033_988_75).fract() - 0.5)
                        .collect()
                })
                .collect(),
        );
        let fast = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        for i in 0..17 {
            for j in 0..11 {
                assert_eq!(fast.get(i, j).to_bits(), naive.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn matmul_propagates_non_finite_rhs() {
        // Regression: the historical `a == 0.0` skip suppressed 0 × ∞ and
        // 0 × NaN, silently returning finite results for non-finite input.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![f64::INFINITY], vec![2.0]]);
        assert!(a.matmul(&b).unwrap().get(0, 0).is_nan());
        assert!(a.matmul_naive(&b).unwrap().get(0, 0).is_nan());
        let c = Matrix::from_rows(vec![vec![f64::NAN], vec![3.0]]);
        assert!(a.matmul(&c).unwrap().get(0, 0).is_nan());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_sub_matches_manual_centering() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = [5.0, 7.0];
        let sub = [1.0, 2.0];
        let centered: Vec<f64> = v.iter().zip(sub.iter()).map(|(x, s)| x - s).collect();
        assert_eq!(
            a.matvec_sub(&v, &sub).unwrap(),
            a.matvec(&centered).unwrap()
        );
        assert!(a.matvec_sub(&v, &[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_in_place_matches_transpose() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut inplace = m.clone();
        inplace.transpose_in_place().unwrap();
        assert_eq!(inplace, m.transpose());
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.transpose_in_place().is_err());
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated columns.
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let cov = m.covariance();
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = Matrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let (vals, _) = m.symmetric_eigen().unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 2.0).abs() < 1e-9);
        assert!((vals[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let (vals, vecs) = m.symmetric_eigen().unwrap();
        // Rebuild A = V Λ Vᵀ and compare.
        let mut lambda = Matrix::zeros(3, 3);
        for (i, &val) in vals.iter().enumerate() {
            lambda.set(i, i, val);
        }
        let rebuilt = vecs
            .matmul(&lambda)
            .unwrap()
            .matmul(&vecs.transpose())
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (rebuilt.get(i, j) - m.get(i, j)).abs() < 1e-9,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(vec![
            vec![2.0, 0.5, 0.1],
            vec![0.5, 1.5, 0.3],
            vec![0.1, 0.3, 1.0],
        ]);
        let (_, vecs) = m.symmetric_eigen().unwrap();
        let vtv = vecs.transpose().matmul(&vecs).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(m.symmetric_eigen().is_err());
    }

    #[test]
    fn euclidean_distance() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn euclidean_is_sqrt_of_squared() {
        let a = [0.3, -1.7, 2.9, 0.0];
        let b = [1.1, 0.4, -0.2, 5.5];
        assert_eq!(
            euclidean(&a, &b).to_bits(),
            euclidean_sq(&a, &b).sqrt().to_bits()
        );
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn column_means_and_centering() {
        let m = Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(m.column_means(), vec![2.0, 15.0]);
        let c = m.center_columns();
        assert_eq!(c.column_means(), vec![0.0, 0.0]);
    }
}
