//! Least-squares fitting and two-point solving for the paper's three
//! memory-function families (Table 1):
//!
//! | family | formula |
//! |---|---|
//! | linear | `y = m·x + b` |
//! | exponential (saturating) | `y = m·(1 − e^(−b·x))` |
//! | Napierian logarithmic | `y = m + b·ln(x)` |
//!
//! Each family has two coefficients `(m, b)`. Offline training fits them by
//! least squares over many profiled inputs; online calibration (paper §4.1)
//! solves them exactly from the two profiling runs on 5 % and 10 % of the
//! input.

use crate::MlError;
use serde::{Deserialize, Serialize};

/// The three curve families of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveFamily {
    /// `y = m·x + b` — "(piecewise) linear regression".
    Linear,
    /// `y = m·(1 − e^(−b·x))` — saturating exponential.
    Exponential,
    /// `y = m + b·ln(x)` — Napierian logarithmic.
    NapierianLog,
}

impl CurveFamily {
    /// All families, in Table 1 order.
    pub const ALL: [CurveFamily; 3] = [
        CurveFamily::Linear,
        CurveFamily::Exponential,
        CurveFamily::NapierianLog,
    ];

    /// Human-readable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CurveFamily::Linear => "Linear Regression",
            CurveFamily::Exponential => "Exponential Regression",
            CurveFamily::NapierianLog => "Napierian Logarithmic Regression",
        }
    }

    /// The formula as printed in Table 1.
    #[must_use]
    pub fn formula(self) -> &'static str {
        match self {
            CurveFamily::Linear => "y = m*x + b",
            CurveFamily::Exponential => "y = m*(1 - e^(-b*x))",
            CurveFamily::NapierianLog => "y = m + ln(x)*b",
        }
    }
}

impl std::fmt::Display for CurveFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fitted curve: family plus instantiated coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCurve {
    /// Which formula the coefficients instantiate.
    pub family: CurveFamily,
    /// Coefficient `m`.
    pub m: f64,
    /// Coefficient `b`.
    pub b: f64,
}

impl FittedCurve {
    /// Evaluates the curve at `x`.
    ///
    /// For the logarithmic family, `x` is floored at a tiny positive value
    /// to keep `ln` defined.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        evaluate(self.family, self.m, self.b, x)
    }
}

/// Evaluates `family` with coefficients `(m, b)` at `x`.
#[must_use]
pub fn evaluate(family: CurveFamily, m: f64, b: f64, x: f64) -> f64 {
    match family {
        CurveFamily::Linear => m * x + b,
        CurveFamily::Exponential => m * (1.0 - (-b * x).exp()),
        CurveFamily::NapierianLog => m + b * x.max(1e-12).ln(),
    }
}

/// Root-mean-square error of a fitted curve over observations.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn fit_rmse(curve: &FittedCurve, xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    let mse = xs
        .iter()
        .zip(ys.iter())
        .map(|(&x, &y)| (curve.eval(x) - y).powi(2))
        .sum::<f64>()
        / xs.len() as f64;
    mse.sqrt()
}

fn validate_observations(xs: &[f64], ys: &[f64]) -> Result<(), MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::InvalidTrainingData(format!(
            "{} xs but {} ys",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(MlError::InvalidTrainingData(
            "need at least two observations".into(),
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(MlError::InvalidTrainingData(
            "observations must be finite".into(),
        ));
    }
    Ok(())
}

/// Ordinary-least-squares fit of `y = m·x + b`.
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] for fewer than two points or
/// non-finite values, and [`MlError::Numerical`] when all `x` coincide.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Result<FittedCurve, MlError> {
    validate_observations(xs, ys)?;
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys.iter()).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(MlError::Numerical("degenerate x values".into()));
    }
    let m = (n * sxy - sx * sy) / denom;
    let b = (sy - m * sx) / n;
    Ok(FittedCurve {
        family: CurveFamily::Linear,
        m,
        b,
    })
}

/// OLS fit of `y = m + b·ln(x)` (linear in `ln x`).
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] if any `x ≤ 0`, plus the
/// [`fit_linear`] error conditions on the transformed data.
pub fn fit_napierian_log(xs: &[f64], ys: &[f64]) -> Result<FittedCurve, MlError> {
    validate_observations(xs, ys)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(MlError::InvalidTrainingData(
            "logarithmic family needs positive x".into(),
        ));
    }
    let ln_xs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let lin = fit_linear(&ln_xs, ys)?;
    Ok(FittedCurve {
        family: CurveFamily::NapierianLog,
        m: lin.b, // intercept of the transformed fit
        b: lin.m, // slope of the transformed fit
    })
}

/// Nonlinear least-squares fit of `y = m·(1 − e^(−b·x))`.
///
/// For a fixed rate `b` the optimal amplitude `m` has a closed form, so the
/// search is one-dimensional: a coarse logarithmic grid over `b` followed
/// by golden-section refinement.
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] for degenerate inputs (fewer
/// than two points, non-finite values, all-zero x).
pub fn fit_exponential(xs: &[f64], ys: &[f64]) -> Result<FittedCurve, MlError> {
    validate_observations(xs, ys)?;
    let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if x_max <= 0.0 {
        return Err(MlError::InvalidTrainingData(
            "exponential family needs positive x".into(),
        ));
    }

    // Given b, m* = Σ y·g / Σ g² with g = 1 − e^(−b·x). The g values are
    // cached in a scratch buffer so the residual pass reuses them instead
    // of recomputing the identical `exp` per point — same values, same
    // order, half the transcendental calls of the line search.
    let mut g_buf = vec![0.0; xs.len()];
    let mut sse_for = |b: f64| -> (f64, f64) {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, (&x, &y)) in xs.iter().zip(ys.iter()).enumerate() {
            let g = 1.0 - (-b * x).exp();
            g_buf[i] = g;
            num += y * g;
            den += g * g;
        }
        let m = if den > 0.0 { num / den } else { 0.0 };
        let sse: f64 = g_buf
            .iter()
            .zip(ys.iter())
            .map(|(&g, &y)| (m * g - y).powi(2))
            .sum();
        (sse, m)
    };

    // Coarse log grid centred on scales implied by the data.
    let lo = 1e-6 / x_max.max(1e-12);
    let hi = 1e4 / x_max.clamp(1e-12, 1e12);
    let mut best_b = lo;
    let mut best_sse = f64::INFINITY;
    let grid_points = 200;
    for i in 0..=grid_points {
        let t = i as f64 / grid_points as f64;
        let b = lo * (hi / lo).powf(t);
        let (sse, _) = sse_for(b);
        if sse < best_sse {
            best_sse = sse;
            best_b = b;
        }
    }

    // Golden-section refinement around the best grid cell (in log space).
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let step = (hi / lo).powf(1.0 / grid_points as f64);
    let mut a = (best_b / step).ln();
    let mut c = (best_b * step).ln();
    for _ in 0..80 {
        let d = c - phi * (c - a);
        let e = a + phi * (c - a);
        if sse_for(d.exp()).0 < sse_for(e.exp()).0 {
            c = e;
        } else {
            a = d;
        }
    }
    let b = ((a + c) / 2.0).exp();
    let (_, m) = sse_for(b);
    Ok(FittedCurve {
        family: CurveFamily::Exponential,
        m,
        b,
    })
}

/// Fits one specific family.
///
/// # Errors
///
/// Propagates the family fitter's error conditions.
pub fn fit_family(family: CurveFamily, xs: &[f64], ys: &[f64]) -> Result<FittedCurve, MlError> {
    match family {
        CurveFamily::Linear => fit_linear(xs, ys),
        CurveFamily::Exponential => fit_exponential(xs, ys),
        CurveFamily::NapierianLog => fit_napierian_log(xs, ys),
    }
}

/// Fits every family and returns the one with the lowest RMSE — the
/// offline model-fitting step of the training pipeline (Fig. 2, step 2).
///
/// # Errors
///
/// Returns [`MlError::Numerical`] if no family could be fitted at all.
pub fn best_fit(xs: &[f64], ys: &[f64]) -> Result<(FittedCurve, f64), MlError> {
    let mut best: Option<(FittedCurve, f64)> = None;
    for family in CurveFamily::ALL {
        if let Ok(curve) = fit_family(family, xs, ys) {
            let rmse = fit_rmse(&curve, xs, ys);
            if best.as_ref().is_none_or(|(_, b)| rmse < *b) {
                best = Some((curve, rmse));
            }
        }
    }
    best.ok_or_else(|| MlError::Numerical("no family could be fitted".into()))
}

/// Solves `(m, b)` exactly from two calibration points — the paper's
/// runtime model calibration (§4.1): profile on 5 % and 10 % of the input,
/// then solve the memory-function equation.
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] for coincident or non-finite
/// points, non-positive `x` for log/exponential, or observations
/// incompatible with the family (e.g. a ratio outside the feasible range of
/// the saturating exponential), and [`MlError::Numerical`] if the 1-D root
/// search fails to bracket.
pub fn solve_two_point(
    family: CurveFamily,
    p1: (f64, f64),
    p2: (f64, f64),
) -> Result<FittedCurve, MlError> {
    let ((x1, y1), (x2, y2)) = if p1.0 <= p2.0 { (p1, p2) } else { (p2, p1) };
    if ![x1, y1, x2, y2].iter().all(|v| v.is_finite()) {
        return Err(MlError::InvalidTrainingData(
            "calibration points must be finite".into(),
        ));
    }
    if (x2 - x1).abs() < 1e-15 {
        return Err(MlError::InvalidTrainingData(
            "calibration points must have distinct x".into(),
        ));
    }
    match family {
        CurveFamily::Linear => {
            let m = (y2 - y1) / (x2 - x1);
            let b = y1 - m * x1;
            Ok(FittedCurve { family, m, b })
        }
        CurveFamily::NapierianLog => {
            if x1 <= 0.0 {
                return Err(MlError::InvalidTrainingData(
                    "logarithmic family needs positive x".into(),
                ));
            }
            let b = (y2 - y1) / (x2.ln() - x1.ln());
            let m = y1 - b * x1.ln();
            Ok(FittedCurve { family, m, b })
        }
        CurveFamily::Exponential => {
            if x1 <= 0.0 {
                return Err(MlError::InvalidTrainingData(
                    "exponential family needs positive x".into(),
                ));
            }
            if y1 <= 0.0 || y2 <= 0.0 {
                return Err(MlError::InvalidTrainingData(
                    "exponential family needs positive y".into(),
                ));
            }
            // ratio(b) = (1 − e^(−b·x1)) / (1 − e^(−b·x2)) rises
            // monotonically from x1/x2 (b → 0) to 1 (b → ∞).
            let target = y1 / y2;
            let floor = x1 / x2;
            if target <= floor || target >= 1.0 {
                return Err(MlError::InvalidTrainingData(format!(
                    "observed ratio {target:.4} outside feasible range ({floor:.4}, 1) \
                     for the saturating exponential"
                )));
            }
            let ratio = |b: f64| (1.0 - (-b * x1).exp()) / (1.0 - (-b * x2).exp());
            let mut lo = 1e-12 / x2;
            let mut hi = 1e3 / x1;
            // Expand upward if necessary (ratio(hi) must exceed target).
            let mut guard = 0;
            while ratio(hi) < target {
                hi *= 10.0;
                guard += 1;
                if guard > 60 {
                    return Err(MlError::Numerical(
                        "failed to bracket the exponential rate".into(),
                    ));
                }
            }
            for _ in 0..200 {
                let mid = (lo + hi) / 2.0;
                if ratio(mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let b = (lo + hi) / 2.0;
            let m = y1 / (1.0 - (-b * x1).exp());
            Ok(FittedCurve { family, m, b })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(family: CurveFamily, m: f64, b: f64, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| evaluate(family, m, b, x)).collect()
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys = sample(CurveFamily::Linear, 2.5, -3.0, &xs);
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.m - 2.5).abs() < 1e-9);
        assert!((fit.b + 3.0).abs() < 1e-9);
    }

    #[test]
    fn log_fit_recovers_coefficients() {
        // PageRank's published curve: m = 16.333, b = 1.79 (paper §3.1).
        let xs: Vec<f64> = (1..=30).map(|i| i as f64 * 0.7).collect();
        let ys = sample(CurveFamily::NapierianLog, 16.333, 1.79, &xs);
        let fit = fit_napierian_log(&xs, &ys).unwrap();
        assert!((fit.m - 16.333).abs() < 1e-6);
        assert!((fit.b - 1.79).abs() < 1e-6);
    }

    #[test]
    fn exponential_fit_recovers_coefficients() {
        // Sort's published curve: m = 5.768, b = 4.479 (paper §3.1).
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05).collect();
        let ys = sample(CurveFamily::Exponential, 5.768, 4.479, &xs);
        let fit = fit_exponential(&xs, &ys).unwrap();
        assert!((fit.m - 5.768).abs() < 0.05, "m = {}", fit.m);
        assert!((fit.b - 4.479).abs() < 0.1, "b = {}", fit.b);
    }

    #[test]
    fn best_fit_picks_the_generating_family() {
        let xs: Vec<f64> = (1..=25).map(|i| i as f64 * 0.4).collect();
        for family in CurveFamily::ALL {
            let ys = sample(family, 8.0, 1.2, &xs);
            let (fit, rmse) = best_fit(&xs, &ys).unwrap();
            assert_eq!(fit.family, family, "family mis-identified");
            assert!(rmse < 1e-3, "rmse = {rmse}");
        }
    }

    #[test]
    fn two_point_solve_linear() {
        let fit = solve_two_point(CurveFamily::Linear, (1.0, 5.0), (3.0, 9.0)).unwrap();
        assert!((fit.m - 2.0).abs() < 1e-12);
        assert!((fit.b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_point_solve_log() {
        let truth = FittedCurve {
            family: CurveFamily::NapierianLog,
            m: 16.333,
            b: 1.79,
        };
        let p1 = (0.05, truth.eval(0.05));
        let p2 = (0.10, truth.eval(0.10));
        let fit = solve_two_point(CurveFamily::NapierianLog, p1, p2).unwrap();
        assert!((fit.m - truth.m).abs() < 1e-9);
        assert!((fit.b - truth.b).abs() < 1e-9);
    }

    #[test]
    fn two_point_solve_exponential() {
        let truth = FittedCurve {
            family: CurveFamily::Exponential,
            m: 5.768,
            b: 4.479,
        };
        let p1 = (0.05, truth.eval(0.05));
        let p2 = (0.10, truth.eval(0.10));
        let fit = solve_two_point(CurveFamily::Exponential, p1, p2).unwrap();
        assert!((fit.m - truth.m).abs() < 1e-6, "m = {}", fit.m);
        assert!((fit.b - truth.b).abs() < 1e-6, "b = {}", fit.b);
    }

    #[test]
    fn two_point_solve_argument_order_is_irrelevant() {
        let a = solve_two_point(CurveFamily::Linear, (3.0, 9.0), (1.0, 5.0)).unwrap();
        let b = solve_two_point(CurveFamily::Linear, (1.0, 5.0), (3.0, 9.0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_point_exponential_rejects_infeasible_ratio() {
        // y1/y2 == x1/x2 is the linear limit — not representable.
        let err = solve_two_point(CurveFamily::Exponential, (1.0, 1.0), (2.0, 2.0));
        assert!(err.is_err());
        // Decreasing data can't be a saturating exponential either.
        assert!(solve_two_point(CurveFamily::Exponential, (1.0, 5.0), (2.0, 4.0)).is_err());
    }

    #[test]
    fn two_point_rejects_coincident_points() {
        assert!(solve_two_point(CurveFamily::Linear, (1.0, 2.0), (1.0, 3.0)).is_err());
    }

    #[test]
    fn fitters_reject_bad_data() {
        assert!(fit_linear(&[1.0], &[1.0]).is_err());
        assert!(fit_linear(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(fit_linear(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        assert!(fit_napierian_log(&[-1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(fit_exponential(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn evaluate_log_floors_x() {
        // ln of a floored tiny value, not -inf or NaN.
        let y = evaluate(CurveFamily::NapierianLog, 1.0, 1.0, 0.0);
        assert!(y.is_finite());
    }

    #[test]
    fn names_and_formulas_are_stable() {
        assert_eq!(CurveFamily::Linear.name(), "Linear Regression");
        assert_eq!(CurveFamily::Exponential.formula(), "y = m*(1 - e^(-b*x))");
        assert_eq!(
            CurveFamily::NapierianLog.to_string(),
            "Napierian Logarithmic Regression"
        );
    }

    #[test]
    fn rmse_of_exact_fit_is_zero() {
        let xs = [1.0, 2.0, 3.0];
        let curve = FittedCurve {
            family: CurveFamily::Linear,
            m: 1.0,
            b: 0.0,
        };
        assert_eq!(fit_rmse(&curve, &xs, &xs), 0.0);
    }
}
