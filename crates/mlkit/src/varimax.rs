//! Varimax rotation for factor/feature-importance analysis (paper §3.2,
//! "Feature Analysis", Fig. 4b).
//!
//! The paper applies a Varimax rotation to the PCA space to quantify each
//! raw feature's contribution to the principal components, then ranks the
//! 22 raw features by importance (Table 2's ordering).

use crate::linalg::Matrix;
use crate::MlError;

/// Result of a Varimax rotation.
#[derive(Debug, Clone)]
pub struct VarimaxResult {
    /// Rotated loading matrix, `features × components`.
    pub rotated: Matrix,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Rotates a `features × components` loading matrix with the Varimax
/// criterion (Kaiser, 1958): iteratively applies planar rotations that
/// maximise the variance of squared loadings within each component.
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] if `loadings` has fewer than
/// one column.
pub fn varimax(loadings: &Matrix, max_iter: usize, tol: f64) -> Result<VarimaxResult, MlError> {
    let p = loadings.rows(); // features
    let k = loadings.cols(); // components
    if k == 0 {
        return Err(MlError::InvalidTrainingData(
            "varimax needs at least one component".into(),
        ));
    }
    let mut a = loadings.clone();
    if k == 1 {
        return Ok(VarimaxResult {
            rotated: a,
            iterations: 0,
        });
    }

    let criterion = |m: &Matrix| -> f64 {
        // Sum over components of the variance of squared loadings.
        let mut total = 0.0;
        for c in 0..k {
            let sq: Vec<f64> = (0..p).map(|r| m.get(r, c).powi(2)).collect();
            let mean = sq.iter().sum::<f64>() / p as f64;
            total += sq.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / p as f64;
        }
        total
    };

    let mut last = criterion(&a);
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        for i in 0..k {
            for j in (i + 1)..k {
                // Optimal planar rotation angle for columns i, j (Kaiser).
                let (mut u_sum, mut v_sum, mut uv_sum, mut u2v2_sum) = (0.0, 0.0, 0.0, 0.0);
                for r in 0..p {
                    let x = a.get(r, i);
                    let y = a.get(r, j);
                    let u = x * x - y * y;
                    let v = 2.0 * x * y;
                    u_sum += u;
                    v_sum += v;
                    uv_sum += u * v;
                    u2v2_sum += u * u - v * v;
                }
                let num = 2.0 * (uv_sum - u_sum * v_sum / p as f64);
                let den = u2v2_sum - (u_sum * u_sum - v_sum * v_sum) / p as f64;
                if num.abs() < 1e-15 && den.abs() < 1e-15 {
                    continue;
                }
                let phi = 0.25 * num.atan2(den);
                if phi.abs() < 1e-12 {
                    continue;
                }
                let (s, c) = phi.sin_cos();
                for r in 0..p {
                    let x = a.get(r, i);
                    let y = a.get(r, j);
                    a.set(r, i, c * x + s * y);
                    a.set(r, j, -s * x + c * y);
                }
            }
        }
        let now = criterion(&a);
        if (now - last).abs() <= tol * last.max(1e-300) {
            break;
        }
        last = now;
    }
    Ok(VarimaxResult {
        rotated: a,
        iterations,
    })
}

/// Computes each raw feature's contribution to overall variance in the
/// rotated space: the sum over components of squared rotated loadings,
/// weighted by `component_weights` (typically the explained-variance
/// ratios), normalised to percentages that sum to 100.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] if `component_weights` does not
/// match the number of columns of `rotated`.
pub fn feature_contributions(
    rotated: &Matrix,
    component_weights: &[f64],
) -> Result<Vec<f64>, MlError> {
    if component_weights.len() != rotated.cols() {
        return Err(MlError::DimensionMismatch {
            expected: rotated.cols(),
            actual: component_weights.len(),
        });
    }
    let mut raw: Vec<f64> = (0..rotated.rows())
        .map(|r| {
            (0..rotated.cols())
                .map(|c| rotated.get(r, c).powi(2) * component_weights[c])
                .sum()
        })
        .collect();
    let total: f64 = raw.iter().sum();
    if total > 0.0 {
        for v in &mut raw {
            *v = *v / total * 100.0;
        }
    }
    Ok(raw)
}

/// Returns feature indices sorted by descending contribution.
#[must_use]
pub fn rank_features(contributions: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..contributions.len()).collect();
    idx.sort_by(|&a, &b| contributions[b].total_cmp(&contributions[a]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_preserves_row_norms() {
        // Rotations act within rows of the loading matrix, so each
        // feature's communality (row norm) is invariant.
        let loadings = Matrix::from_rows(vec![
            vec![0.8, 0.3],
            vec![0.7, 0.4],
            vec![0.2, 0.9],
            vec![0.1, 0.85],
        ]);
        let out = varimax(&loadings, 100, 1e-10).unwrap();
        for r in 0..loadings.rows() {
            let before: f64 = (0..2).map(|c| loadings.get(r, c).powi(2)).sum();
            let after: f64 = (0..2).map(|c| out.rotated.get(r, c).powi(2)).sum();
            assert!((before - after).abs() < 1e-9, "row {r} norm changed");
        }
    }

    #[test]
    fn rotation_improves_or_keeps_simplicity() {
        let loadings = Matrix::from_rows(vec![
            vec![0.7, 0.7],
            vec![0.7, -0.7],
            vec![0.6, 0.6],
            vec![0.6, -0.6],
        ]);
        let crit = |m: &Matrix| -> f64 {
            let p = m.rows();
            (0..m.cols())
                .map(|c| {
                    let sq: Vec<f64> = (0..p).map(|r| m.get(r, c).powi(2)).collect();
                    let mean = sq.iter().sum::<f64>() / p as f64;
                    sq.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / p as f64
                })
                .sum()
        };
        let before = crit(&loadings);
        let out = varimax(&loadings, 200, 1e-12).unwrap();
        assert!(crit(&out.rotated) >= before - 1e-12);
    }

    #[test]
    fn single_component_is_identity() {
        let loadings = Matrix::from_rows(vec![vec![0.5], vec![0.7]]);
        let out = varimax(&loadings, 10, 1e-8).unwrap();
        assert_eq!(out.rotated, loadings);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn contributions_sum_to_100() {
        let loadings = Matrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.5, 0.5]]);
        let c = feature_contributions(&loadings, &[0.7, 0.3]).unwrap();
        assert!((c.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn contributions_reject_wrong_weight_count() {
        let loadings = Matrix::from_rows(vec![vec![1.0, 0.0]]);
        assert!(feature_contributions(&loadings, &[1.0]).is_err());
    }

    #[test]
    fn ranking_is_descending() {
        let ranks = rank_features(&[5.0, 50.0, 20.0]);
        assert_eq!(ranks, vec![1, 2, 0]);
    }

    #[test]
    fn dominant_feature_ranks_first() {
        // Feature 0 loads heavily on the dominant component.
        let loadings = Matrix::from_rows(vec![vec![0.95, 0.05], vec![0.3, 0.4], vec![0.1, 0.2]]);
        let out = varimax(&loadings, 100, 1e-10).unwrap();
        let contrib = feature_contributions(&out.rotated, &[0.8, 0.2]).unwrap();
        assert_eq!(rank_features(&contrib)[0], 0);
    }
}
