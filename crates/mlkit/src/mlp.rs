//! A 3-layer perceptron trained with backpropagation.
//!
//! Serves two roles in the reproduction:
//! * as the Table 5 "MLP"/"ANN" alternative expert **selector**
//!   (classification head), and
//! * as the Fig. 9 unified "ANN" memory-footprint **regressor** — the paper
//!   trains a 3-layer backprop network on the same features to predict the
//!   footprint directly with a single model.

use crate::{Classifier, MlError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for MLP training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate for plain SGD.
    pub learning_rate: f64,
    /// Training epochs (full passes).
    pub epochs: usize,
    /// Seed for weight initialisation and sample order.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 16,
            learning_rate: 0.05,
            epochs: 500,
            seed: 0xA11CE,
        }
    }
}

/// A 3-layer (input → tanh hidden → linear output) neural network.
///
/// For classification use [`Mlp::fit_classifier`], which one-hot encodes the
/// labels; for regression use [`Mlp::fit_regressor`] with a single output.
///
/// # Examples
///
/// ```
/// use mlkit::mlp::{Mlp, MlpParams};
/// // Learn y = 2x on [0, 1].
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
/// let net = Mlp::fit_regressor(&xs, &ys, MlpParams::default())?;
/// let pred = net.predict_value(&[0.5])?;
/// assert!((pred - 1.0).abs() < 0.1);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    // Layer 1: hidden × input, plus hidden biases.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    // Layer 2: output × hidden, plus output biases.
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    dims: usize,
    outputs: usize,
    classifier_name: &'static str,
}

impl Mlp {
    /// Trains a classifier head: one output per class, softmax cross-entropy.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs,
    /// label mismatch, or degenerate hyper-parameters.
    pub fn fit_classifier(
        xs: &[Vec<f64>],
        ys: &[usize],
        params: MlpParams,
    ) -> Result<Self, MlError> {
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let targets: Vec<Vec<f64>> = ys
            .iter()
            .map(|&y| {
                let mut t = vec![0.0; n_classes];
                t[y] = 1.0;
                t
            })
            .collect();
        let mut net = Self::fit_multi(xs, &targets, params, true)?;
        net.classifier_name = "ANN";
        Ok(net)
    }

    /// Trains a single-output regressor with squared loss.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::fit_classifier`].
    pub fn fit_regressor(xs: &[Vec<f64>], ys: &[f64], params: MlpParams) -> Result<Self, MlError> {
        let targets: Vec<Vec<f64>> = ys.iter().map(|&y| vec![y]).collect();
        Self::fit_multi(xs, &targets, params, false)
    }

    fn fit_multi(
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        params: MlpParams,
        softmax: bool,
    ) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != targets.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or target mismatch".into(),
            ));
        }
        if params.hidden == 0 || params.epochs == 0 || params.learning_rate <= 0.0 {
            return Err(MlError::InvalidTrainingData(
                "hidden, epochs and learning_rate must be positive".into(),
            ));
        }
        let dims = xs[0].len();
        let outputs = targets[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        if outputs == 0 || targets.iter().any(|t| t.len() != outputs) {
            return Err(MlError::InvalidTrainingData(
                "targets must be non-empty and rectangular".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(params.seed);
        let scale1 = (1.0 / dims as f64).sqrt();
        let scale2 = (1.0 / params.hidden as f64).sqrt();
        let mut net = Mlp {
            w1: (0..params.hidden)
                .map(|_| (0..dims).map(|_| rng.gen_range(-scale1..scale1)).collect())
                .collect(),
            b1: vec![0.0; params.hidden],
            w2: (0..outputs)
                .map(|_| {
                    (0..params.hidden)
                        .map(|_| rng.gen_range(-scale2..scale2))
                        .collect()
                })
                .collect(),
            b2: vec![0.0; outputs],
            dims,
            outputs,
            classifier_name: "MLP",
        };

        let n = xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..params.epochs {
            // Shuffle the visiting order each epoch (Fisher–Yates).
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                net.backprop_step(&xs[i], &targets[i], params.learning_rate, softmax);
            }
        }
        Ok(net)
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(self.b1.iter())
            .map(|(w, b)| (w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi).sum::<f64>() + b).tanh())
            .collect();
        let out: Vec<f64> = self
            .w2
            .iter()
            .zip(self.b2.iter())
            .map(|(w, b)| {
                w.iter()
                    .zip(hidden.iter())
                    .map(|(wi, hi)| wi * hi)
                    .sum::<f64>()
                    + b
            })
            .collect();
        (hidden, out)
    }

    fn backprop_step(&mut self, x: &[f64], target: &[f64], lr: f64, softmax: bool) {
        let (hidden, out) = self.forward(x);

        // Output deltas: softmax+cross-entropy and linear+MSE share the
        // same convenient (prediction − target) form.
        let predictions = if softmax { softmax_vec(&out) } else { out };
        let delta_out: Vec<f64> = predictions
            .iter()
            .zip(target.iter())
            .map(|(p, t)| p - t)
            .collect();

        // Hidden deltas through tanh'.
        let mut delta_hidden = vec![0.0; hidden.len()];
        for (h, dh) in delta_hidden.iter_mut().enumerate() {
            let upstream: f64 = self
                .w2
                .iter()
                .zip(delta_out.iter())
                .map(|(w, d)| w[h] * d)
                .sum();
            *dh = upstream * (1.0 - hidden[h] * hidden[h]);
        }

        // Gradient descent.
        for (o, d) in delta_out.iter().enumerate() {
            for (h, hv) in hidden.iter().enumerate() {
                self.w2[o][h] -= lr * d * hv;
            }
            self.b2[o] -= lr * d;
        }
        for (h, d) in delta_hidden.iter().enumerate() {
            for (i, xv) in x.iter().enumerate() {
                self.w1[h][i] -= lr * d * xv;
            }
            self.b1[h] -= lr * d;
        }
    }

    /// Raw output vector for `x` (post-softmax for classifiers).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn predict_vector(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        Ok(self.forward(x).1)
    }

    /// Scalar prediction (regression). Uses the first output.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn predict_value(&self, x: &[f64]) -> Result<f64, MlError> {
        Ok(self.predict_vector(x)?[0])
    }

    /// Number of outputs.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Renames the classifier for reporting (Table 5 distinguishes "MLP"
    /// and "ANN" configurations).
    #[must_use]
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.classifier_name = name;
        self
    }
}

fn softmax_vec(v: &[f64]) -> Vec<f64> {
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = v.iter().map(|x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for Mlp {
    fn predict(&self, x: &[f64]) -> usize {
        let out = self
            .predict_vector(x)
            .expect("dimension mismatch in MLP predict");
        // The output layer is non-empty by construction; `total_cmp`
        // matches `partial_cmp` on finite softmax outputs and never panics.
        out.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map_or(0, |(i, _)| i)
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        self.classifier_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_regression() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let net = Mlp::fit_regressor(&xs, &ys, MlpParams::default()).unwrap();
        for x in [0.1, 0.5, 0.9] {
            let p = net.predict_value(&[x]).unwrap();
            assert!((p - (3.0 * x + 1.0)).abs() < 0.2, "x={x} p={p}");
        }
    }

    #[test]
    fn learns_nonlinear_regression() {
        // A saturating curve like the paper's exponential memory function.
        let xs: Vec<Vec<f64>> = (1..=40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - (-3.0 * x[0]).exp()).collect();
        let net = Mlp::fit_regressor(
            &xs,
            &ys,
            MlpParams {
                epochs: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        let p = net.predict_value(&[0.5]).unwrap();
        let truth = 1.0 - (-1.5f64).exp();
        assert!((p - truth).abs() < 0.05, "p={p} truth={truth}");
    }

    #[test]
    fn classifies_xor() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        let net = Mlp::fit_classifier(
            &xs,
            &ys,
            MlpParams {
                hidden: 8,
                epochs: 3000,
                learning_rate: 0.1,
                seed: 7,
            },
        )
        .unwrap();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            assert_eq!(net.predict(x), y, "x={x:?}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = Mlp::fit_regressor(&xs, &ys, MlpParams::default()).unwrap();
        let b = Mlp::fit_regressor(&xs, &ys, MlpParams::default()).unwrap();
        assert_eq!(
            a.predict_value(&[5.0]).unwrap(),
            b.predict_value(&[5.0]).unwrap()
        );
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(Mlp::fit_regressor(&[], &[], MlpParams::default()).is_err());
        let xs = vec![vec![0.0]];
        assert!(Mlp::fit_regressor(
            &xs,
            &[1.0],
            MlpParams {
                hidden: 0,
                ..Default::default()
            }
        )
        .is_err());
        let net = Mlp::fit_regressor(&xs, &[1.0], MlpParams::default()).unwrap();
        assert!(net.predict_value(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn naming_and_outputs() {
        let xs = vec![vec![0.0], vec![1.0]];
        let clf = Mlp::fit_classifier(&xs, &[0, 1], MlpParams::default()).unwrap();
        assert_eq!(clf.name(), "ANN");
        assert_eq!(clf.outputs(), 2);
        let renamed = clf.with_name("MLP");
        assert_eq!(renamed.name(), "MLP");
    }
}
