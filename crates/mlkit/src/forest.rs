//! Random forest: bootstrap-aggregated decision trees with per-split
//! feature subsampling — a Table 5 alternative expert selector.

use crate::tree::{simkit_compat::RngAdapter, DecisionTree, TreeParams};
use crate::{Classifier, MlError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for forest construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeParams,
    /// Features considered per split; `None` means `ceil(sqrt(dims))`.
    pub features_per_split: Option<usize>,
    /// Seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            trees: 32,
            tree: TreeParams::default(),
            features_per_split: None,
            seed: 0xF0E57,
        }
    }
}

/// A fitted random-forest classifier (majority vote over trees).
///
/// # Examples
///
/// ```
/// use mlkit::forest::{RandomForest, ForestParams};
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0, 1.0], vec![0.2, 0.9], vec![5.0, -1.0], vec![5.3, -0.8]];
/// let ys = vec![0, 0, 1, 1];
/// let rf = RandomForest::fit(&xs, &ys, ForestParams { trees: 8, ..Default::default() })?;
/// assert_eq!(rf.predict(&[0.1, 1.0]), 0);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dims: usize,
}

impl RandomForest {
    /// Trains `params.trees` trees on bootstrap resamples.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs, a
    /// label mismatch, or zero trees.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], params: ForestParams) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        if params.trees == 0 {
            return Err(MlError::InvalidTrainingData(
                "forest needs at least one tree".into(),
            ));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        let features = params
            .features_per_split
            .unwrap_or_else(|| (dims as f64).sqrt().ceil() as usize)
            .clamp(1, dims);

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.trees);
        for _ in 0..params.trees {
            // Bootstrap resample.
            let (mut bx, mut by) = (Vec::with_capacity(xs.len()), Vec::with_capacity(ys.len()));
            for _ in 0..xs.len() {
                let i = rng.gen_range(0..xs.len());
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            let tree = DecisionTree::fit_with_features(
                &bx,
                &by,
                params.tree,
                Some(features),
                &mut RngAdapter(&mut rng),
            )?;
            trees.push(tree);
        }
        Ok(RandomForest { trees, dims })
    }

    /// Number of trees in the ensemble.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees (never true once fitted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Vote counts per class for a query.
    ///
    /// # Panics
    ///
    /// Panics on wrong dimensionality.
    #[must_use]
    pub fn votes(&self, x: &[f64]) -> std::collections::HashMap<usize, usize> {
        let mut votes = std::collections::HashMap::new();
        for tree in &self.trees {
            *votes.entry(tree.predict(x)).or_insert(0) += 1;
        }
        votes
    }
}

impl Classifier for RandomForest {
    fn predict(&self, x: &[f64]) -> usize {
        // `fit` rejects zero-tree forests, so the vote map always has at
        // least one entry; the fallback keeps this path panic-free anyway.
        self.votes(x)
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map_or(0, |(label, _)| label)
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "Random Forests"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let j = (i % 7) as f64 * 0.05;
            xs.push(vec![j, 1.0 - j]);
            ys.push(0);
            xs.push(vec![4.0 + j, -2.0 + j]);
            ys.push(1);
            xs.push(vec![-3.0 - j, -3.0 + j]);
            ys.push(2);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_three_blobs() {
        let (xs, ys) = blobs(15);
        let rf = RandomForest::fit(
            &xs,
            &ys,
            ForestParams {
                trees: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rf.predict(&[0.1, 0.9]), 0);
        assert_eq!(rf.predict(&[4.1, -1.9]), 1);
        assert_eq!(rf.predict(&[-3.1, -2.9]), 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (xs, ys) = blobs(10);
        let p = ForestParams {
            trees: 8,
            seed: 42,
            ..Default::default()
        };
        let a = RandomForest::fit(&xs, &ys, p).unwrap();
        let b = RandomForest::fit(&xs, &ys, p).unwrap();
        for x in xs.iter() {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn votes_sum_to_tree_count() {
        let (xs, ys) = blobs(10);
        let rf = RandomForest::fit(
            &xs,
            &ys,
            ForestParams {
                trees: 9,
                ..Default::default()
            },
        )
        .unwrap();
        let votes = rf.votes(&[0.0, 1.0]);
        assert_eq!(votes.values().sum::<usize>(), 9);
        assert_eq!(rf.len(), 9);
        assert!(!rf.is_empty());
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(RandomForest::fit(&[], &[], ForestParams::default()).is_err());
        let (xs, ys) = blobs(3);
        assert!(RandomForest::fit(
            &xs,
            &ys,
            ForestParams {
                trees: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn trait_metadata() {
        let (xs, ys) = blobs(5);
        let rf = RandomForest::fit(&xs, &ys, ForestParams::default()).unwrap();
        assert_eq!(rf.dims(), 2);
        assert_eq!(rf.name(), "Random Forests");
    }
}
