//! Flat row-major compute kernels behind [`crate::linalg::Matrix`].
//!
//! Every kernel here operates on plain `&[f64]` slices in row-major order
//! so the hot loops index contiguous memory instead of going through
//! bounds-checked `get`/`set` pairs. The design rule, enforced by the
//! property tests in this module and in `tests/properties.rs`, is:
//!
//! > **An optimized kernel performs exactly the same floating-point
//! > operations, on the same values, in the same order, as the naive
//! > oracle it replaces** — so results are bitwise identical, not merely
//! > close.
//!
//! Concretely:
//!
//! * [`matmul_dense`] keeps the naive oracle's `i-k-j` loop order — each
//!   output element still accumulates in ascending `k` from a zero start,
//!   so results are bitwise identical — but broadcasts one LHS element
//!   across a whole output row via slice iterators. The per-`j`
//!   accumulator chains are independent, so the compiler can vectorize
//!   and pipeline the inner loop, which a per-element dot product (one
//!   serial FP dependency chain) cannot offer.
//! * [`matmul_pretransposed`] pre-transposes the right-hand side once and
//!   walks both operands row-wise in cache-friendly `j`-blocks, but each
//!   output element is still one `k`-ascending multiply-add chain from a
//!   zero accumulator — the identical reduction order the naive
//!   `i-k-j` accumulation produces. Blocking only reorders *which output
//!   elements* are computed when, never the additions *within* one. This
//!   is the dot-product form [`crate::pca`]'s covariance uses (transposed
//!   operand, stride-1 rows); for general products at this pipeline's
//!   sizes the broadcast form above is faster, so [`matmul_dense`] backs
//!   `Matrix::matmul`.
//! * [`matvec`] / [`matvec_sub`] reduce each row with the same
//!   `zip/map/sum` chain the original `Matrix::matvec` used (std's
//!   `f64::sum` folds from the *first element*, so even the `-0.0`
//!   corner matches); `matvec_sub` additionally fuses the
//!   `v[c] - sub[c]` centering into the load so PCA's transform skips
//!   its temporary centered vector.
//! * [`transpose`] / [`transpose_in_place_square`] move values without
//!   arithmetic, so bitwise identity is trivial.
//! * [`euclidean_sq`] is the squared-distance reduction shared by KNN
//!   ranking and k-means assignment; `euclidean_sq(a, b).sqrt()` is
//!   bitwise what the old `euclidean` computed, and because `sqrt` is
//!   strictly monotone (and exact per IEEE-754), ranking by squared
//!   distance selects the same winners as ranking by distance.
//!
//! The naive counterparts ([`matmul_naive`], [`matvec_naive`],
//! [`transpose_naive`]) stay here as documented oracles: slow, obviously
//! correct reference implementations the property tests pin the
//! optimized kernels against.

/// Dense matrix product `out = a × b` with both operands in natural
/// row-major layout (`a` is `m × k`, `b` is `k × n`); `out` is `m × n` and
/// fully overwritten.
///
/// Same `i-k-j` loop order as [`matmul_naive`] — every output element is a
/// `k`-ascending multiply-add chain from `0.0`, so results are **bitwise
/// identical** to the oracle. The difference is purely mechanical: each
/// `a[i][k]` is broadcast across an output-row slice zipped with a `b`-row
/// slice, eliminating bounds checks and leaving `n` independent
/// accumulator chains per inner loop for the compiler to vectorize.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_dense(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        if n <= 16 {
            // SAFETY: the `avx` feature was just verified at runtime.
            unsafe {
                match n / 4 {
                    0 => x86::matmul_dense_avx_smalln::<0, false>(m, k, n, a, &[], b, out),
                    1 => x86::matmul_dense_avx_smalln::<1, false>(m, k, n, a, &[], b, out),
                    2 => x86::matmul_dense_avx_smalln::<2, false>(m, k, n, a, &[], b, out),
                    3 => x86::matmul_dense_avx_smalln::<3, false>(m, k, n, a, &[], b, out),
                    _ => x86::matmul_dense_avx_smalln::<4, false>(m, k, n, a, &[], b, out),
                }
            }
            return;
        }
        // SAFETY: the `avx` feature was just verified at runtime.
        unsafe { x86::matmul_dense_avx(m, k, n, a, b, out) };
        return;
    }
    matmul_dense_scalar(m, k, n, a, b, out);
}

/// Centered dense matrix product `out = (a − 1·subᵀ) × b`: every LHS
/// element is centered by its column's `sub` entry on the fly, so the
/// caller never materialises the centered matrix (`a` is `m × k`, `sub`
/// has length `k`, `b` is `k × n` row-major).
///
/// Bitwise identical to centering into a temporary and then calling
/// [`matmul_dense`]: the fused path computes the same exactly-rounded
/// `a[i][kk] − sub[kk]` difference and feeds it into the same
/// `kk`-ascending multiply-add chain per output element (pinned by the
/// tests). Narrow outputs (`n ≤ 16`, the PCA projection shape) take the
/// register-resident AVX body; anything else falls back to the staged
/// two-pass form.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_dense_sub(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    sub: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(sub.len(), k, "centering shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if n <= 16 && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just verified at runtime.
        unsafe {
            match n / 4 {
                0 => x86::matmul_dense_avx_smalln::<0, true>(m, k, n, a, sub, b, out),
                1 => x86::matmul_dense_avx_smalln::<1, true>(m, k, n, a, sub, b, out),
                2 => x86::matmul_dense_avx_smalln::<2, true>(m, k, n, a, sub, b, out),
                3 => x86::matmul_dense_avx_smalln::<3, true>(m, k, n, a, sub, b, out),
                _ => x86::matmul_dense_avx_smalln::<4, true>(m, k, n, a, sub, b, out),
            }
        }
        return;
    }
    let centered: Vec<f64> = a
        .chunks_exact(k.max(1))
        .flat_map(|row| row.iter().zip(sub.iter()).map(|(&v, &s)| v - s))
        .collect();
    matmul_dense(m, k, n, &centered, b, out);
}

/// Portable body of [`matmul_dense`]: the fallback on targets without AVX
/// and the reference the AVX path reproduces bitwise.
fn matmul_dense_scalar(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        // Eight `k` steps per pass over the output row: the eight additions
        // into each `orow[j]` happen in ascending `k`, exactly as the
        // one-step loop would order them, but the output element is loaded
        // and stored once instead of eight times. The `[..n]` re-slices let
        // the compiler prove every `[j]` below is in bounds.
        let mut kk = 0;
        while kk + 8 <= k {
            let ar = &arow[kk..kk + 8];
            let b0 = &b[kk * n..][..n];
            let b1 = &b[(kk + 1) * n..][..n];
            let b2 = &b[(kk + 2) * n..][..n];
            let b3 = &b[(kk + 3) * n..][..n];
            let b4 = &b[(kk + 4) * n..][..n];
            let b5 = &b[(kk + 5) * n..][..n];
            let b6 = &b[(kk + 6) * n..][..n];
            let b7 = &b[(kk + 7) * n..][..n];
            for j in 0..n {
                let mut o = orow[j];
                o += ar[0] * b0[j];
                o += ar[1] * b1[j];
                o += ar[2] * b2[j];
                o += ar[3] * b3[j];
                o += ar[4] * b4[j];
                o += ar[5] * b5[j];
                o += ar[6] * b6[j];
                o += ar[7] * b7[j];
                orow[j] = o;
            }
            kk += 8;
        }
        while kk < k {
            let av = arow[kk];
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
            kk += 1;
        }
    }
}

/// AVX specialisation of [`matmul_dense`].
///
/// The baseline `x86-64` target only exposes SSE2 (two `f64` lanes), and
/// the scalar kernel already saturates that; these 256-bit loops double
/// the lanes. Crucially they use only `vmulpd` + `vaddpd` — **never FMA**
/// — so every multiply and every add is an individually rounded IEEE-754
/// operation and each lane `j` performs exactly the scalar sequence
/// `o += a[k] * b[k][j]` in ascending `k`. Results are therefore bitwise
/// identical to [`matmul_dense_scalar`] (pinned by the property tests
/// below), and runtime dispatch cannot make output depend on the machine.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256d, __m256i, _mm256_add_epi64, _mm256_add_pd, _mm256_blendv_epi8, _mm256_blendv_pd,
        _mm256_castpd_si256, _mm256_cmp_pd, _mm256_cmpgt_epi64, _mm256_div_pd, _mm256_loadu_pd,
        _mm256_maskload_pd, _mm256_maskstore_pd, _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set1_pd,
        _mm256_set_epi64x, _mm256_setr_epi64x, _mm256_setzero_pd, _mm256_setzero_si256,
        _mm256_srli_epi64, _mm256_storeu_pd, _mm256_storeu_si256, _mm256_sub_pd, _mm256_xor_si256,
        _CMP_EQ_OQ,
    };

    /// Lane mask with the low `rem` 64-bit lanes active (for
    /// `vmaskmovpd`, which suppresses both faults and stores on inactive
    /// lanes).
    #[inline]
    fn tail_mask(rem: usize) -> __m256i {
        let lane = |l: usize| if l < rem { -1i64 } else { 0 };
        // SAFETY: plain integer vector construction, no CPU feature needed
        // beyond AVX which every caller has verified.
        unsafe { _mm256_set_epi64x(lane(3), lane(2), lane(1), lane(0)) }
    }

    /// AVX2 body of [`super::screened_argmin`]: four lanes per iteration,
    /// scalar tail. Each lane computes the scalar screening expression
    /// with one exactly-rounded op per scalar op, maps it to its
    /// total-order integer key (`vpcmpgtq` against zero recovers the sign
    /// mask, `vpsrlq`+`vpxor` apply the same sign-propagating XOR
    /// `f64::total_cmp` uses), and a strict signed compare-and-blend
    /// keeps the per-lane running minimum — strictness preserves the
    /// earliest index on key ties, and lane index streams ascend, so the
    /// final cross-lane fold (with an explicit index tie-break) returns
    /// exactly the serial scan's winner.
    ///
    /// # Safety
    ///
    /// Caller must ensure the `avx2` target feature is available; slice
    /// lengths are asserted equal and non-empty by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn screened_argmin_avx2(nsq: &[f64], g: &[f64], qs: f64) -> usize {
        let len = nsq.len();
        let qsv = _mm256_set1_pd(qs);
        let two = _mm256_set1_pd(2.0);
        // (i64::MAX, lane-0 index) sentinels: nothing compares above MAX,
        // and on an all-MAX tie the fold below still picks index 0.
        let mut bestk = _mm256_set1_epi64x(i64::MAX);
        let mut besti = _mm256_setzero_si256();
        let mut idx = _mm256_setr_epi64x(0, 1, 2, 3);
        let four = _mm256_set1_epi64x(4);
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        // SAFETY: `i + 4 <= len` bounds every 4-lane load.
        while i + 4 <= len {
            let n = _mm256_loadu_pd(nsq.as_ptr().add(i));
            let gv = _mm256_loadu_pd(g.as_ptr().add(i));
            let v = _mm256_add_pd(_mm256_sub_pd(n, _mm256_mul_pd(two, gv)), qsv);
            let b = _mm256_castpd_si256(v);
            let sign = _mm256_cmpgt_epi64(zero, b);
            let key = _mm256_xor_si256(b, _mm256_srli_epi64::<1>(sign));
            let lt = _mm256_cmpgt_epi64(bestk, key);
            bestk = _mm256_blendv_epi8(bestk, key, lt);
            besti = _mm256_blendv_epi8(besti, idx, lt);
            idx = _mm256_add_epi64(idx, four);
            i += 4;
        }
        let mut keys = [0i64; 4];
        let mut idxs = [0i64; 4];
        _mm256_storeu_si256(keys.as_mut_ptr().cast::<__m256i>(), bestk);
        _mm256_storeu_si256(idxs.as_mut_ptr().cast::<__m256i>(), besti);
        let mut best = (i64::MAX, usize::MAX);
        for l in 0..4 {
            best = best.min((keys[l], idxs[l] as usize));
        }
        for j in i..len {
            best = best.min(super::screen_key(nsq[j], g[j], qs, j));
        }
        best.1
    }

    /// Key-mapped argmin over one query's Gram accumulators, still in
    /// registers: `acc[g]` holds lanes `4g..4g+4` of the Gram row, `tail`
    /// its masked remainder. Runs exactly the [`screened_argmin_avx2`]
    /// reduction with the `g` loads replaced by the register values —
    /// same screening expression per lane, same strict compare-and-blend,
    /// same cross-lane fold and scalar tail, so the returned index is
    /// identical.
    ///
    /// # Safety
    ///
    /// Caller must ensure the `avx2` target feature is available and
    /// `nsq.len() == FULL * 4 + rem` with `rem < 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn screen_reduce_regs<const FULL: usize>(
        acc: &[__m256d; FULL],
        tail: __m256d,
        nsq: &[f64],
        qs: f64,
        rem: usize,
    ) -> usize {
        let qsv = _mm256_set1_pd(qs);
        let two = _mm256_set1_pd(2.0);
        let zero = _mm256_setzero_si256();
        let mut bestk = _mm256_set1_epi64x(i64::MAX);
        let mut besti = _mm256_setzero_si256();
        let mut idx = _mm256_setr_epi64x(0, 1, 2, 3);
        let four = _mm256_set1_epi64x(4);
        for (g, accg) in acc.iter().enumerate() {
            // SAFETY: `4 * g + 4 <= nsq.len()` by the FULL contract.
            let n = _mm256_loadu_pd(nsq.as_ptr().add(4 * g));
            let v = _mm256_add_pd(_mm256_sub_pd(n, _mm256_mul_pd(two, *accg)), qsv);
            let b = _mm256_castpd_si256(v);
            let sign = _mm256_cmpgt_epi64(zero, b);
            let key = _mm256_xor_si256(b, _mm256_srli_epi64::<1>(sign));
            let lt = _mm256_cmpgt_epi64(bestk, key);
            bestk = _mm256_blendv_epi8(bestk, key, lt);
            besti = _mm256_blendv_epi8(besti, idx, lt);
            idx = _mm256_add_epi64(idx, four);
        }
        let mut keys = [0i64; 4];
        let mut idxs = [0i64; 4];
        _mm256_storeu_si256(keys.as_mut_ptr().cast::<__m256i>(), bestk);
        _mm256_storeu_si256(idxs.as_mut_ptr().cast::<__m256i>(), besti);
        let mut best = (i64::MAX, usize::MAX);
        for l in 0..4 {
            best = best.min((keys[l], idxs[l] as usize));
        }
        if rem > 0 {
            // Active tail lanes hold the exact masked-accumulated dots;
            // inactive lanes are never read.
            let mut tg = [0.0f64; 4];
            _mm256_storeu_pd(tg.as_mut_ptr(), tail);
            for (j, &dot) in tg.iter().enumerate().take(rem) {
                let i = FULL * 4 + j;
                best = best.min(super::screen_key(nsq[i], dot, qs, i));
            }
        }
        best.1
    }

    /// AVX2 body of [`super::nearest1_rows`]: the two-row register
    /// matmul of [`matmul_dense_avx_smalln`] (same `k`-ascending
    /// multiply-add chains, `vmulpd` + `vaddpd` only) feeding
    /// [`screen_reduce_regs`] before the accumulators ever leave
    /// registers — the Gram row is never stored.
    ///
    /// # Safety
    ///
    /// Caller must ensure the `avx2` target feature is available and
    /// `FULL == len / 4` with `len <= 16`. Shapes are asserted by the
    /// dispatcher.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn nearest1_rows_avx2<const FULL: usize>(
        rows: usize,
        dims: usize,
        len: usize,
        q: &[f64],
        bt: &[f64],
        nsq: &[f64],
        qs: &[f64],
        out: &mut [usize],
    ) {
        debug_assert_eq!(FULL, len / 4);
        let rem = len - FULL * 4;
        let mask = tail_mask(rem);
        let mut r = 0;
        // SAFETY throughout: every pointer offset stays inside the
        // asserted `rows*dims` / `dims*len` slice bounds; tail lanes use
        // masked loads which suppress faults on inactive lanes.
        while r + 2 <= rows {
            let a0 = &q[r * dims..][..dims];
            let a1 = &q[(r + 1) * dims..][..dims];
            let mut acc0 = [_mm256_setzero_pd(); FULL];
            let mut acc1 = [_mm256_setzero_pd(); FULL];
            let mut t0 = _mm256_setzero_pd();
            let mut t1 = _mm256_setzero_pd();
            for kk in 0..dims {
                let bk = bt.as_ptr().add(kk * len);
                let av0 = _mm256_set1_pd(a0[kk]);
                let av1 = _mm256_set1_pd(a1[kk]);
                for (g, (acc0g, acc1g)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                    let bv = _mm256_loadu_pd(bk.add(4 * g));
                    *acc0g = _mm256_add_pd(*acc0g, _mm256_mul_pd(av0, bv));
                    *acc1g = _mm256_add_pd(*acc1g, _mm256_mul_pd(av1, bv));
                }
                if rem > 0 {
                    let bv = _mm256_maskload_pd(bk.add(4 * FULL), mask);
                    t0 = _mm256_add_pd(t0, _mm256_mul_pd(av0, bv));
                    t1 = _mm256_add_pd(t1, _mm256_mul_pd(av1, bv));
                }
            }
            out[r] = screen_reduce_regs::<FULL>(&acc0, t0, nsq, qs[r], rem);
            out[r + 1] = screen_reduce_regs::<FULL>(&acc1, t1, nsq, qs[r + 1], rem);
            r += 2;
        }
        if r < rows {
            let a0 = &q[r * dims..][..dims];
            let mut acc0 = [_mm256_setzero_pd(); FULL];
            let mut t0 = _mm256_setzero_pd();
            for (kk, &a0v) in a0.iter().enumerate() {
                let bk = bt.as_ptr().add(kk * len);
                let av0 = _mm256_set1_pd(a0v);
                for (g, acc0g) in acc0.iter_mut().enumerate() {
                    let bv = _mm256_loadu_pd(bk.add(4 * g));
                    *acc0g = _mm256_add_pd(*acc0g, _mm256_mul_pd(av0, bv));
                }
                if rem > 0 {
                    let bv = _mm256_maskload_pd(bk.add(4 * FULL), mask);
                    t0 = _mm256_add_pd(t0, _mm256_mul_pd(av0, bv));
                }
            }
            out[r] = screen_reduce_regs::<FULL>(&acc0, t0, nsq, qs[r], rem);
        }
    }

    /// AVX body of [`super::scale_minmax`]: four columns per iteration,
    /// masked tail. Each lane performs exactly the scalar
    /// `(v − lo) / (hi − lo)` (one `vsubpd` pair, one `vdivpd` — both
    /// exactly rounded), and constant features are routed to `0.5` by an
    /// `EQ_OQ` compare feeding `vblendvpd`, which matches the scalar
    /// `hi == lo` branch for every input including `±0.0` bounds. Masked
    /// tail lanes compute garbage (`0/0` on the zeroed loads) that the
    /// masked store never writes.
    ///
    /// # Safety
    ///
    /// Caller must ensure the `avx` target feature is available; slice
    /// bounds are asserted by [`super::scale_minmax`] before dispatch.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn scale_minmax_avx(
        rows: usize,
        dims: usize,
        a: &[f64],
        lo: &[f64],
        hi: &[f64],
        out: &mut [f64],
    ) {
        let full = dims / 4 * 4;
        let rem = dims - full;
        let mask = tail_mask(rem);
        let half = _mm256_set1_pd(0.5);
        // SAFETY throughout: offsets stay inside the asserted `rows*dims`
        // and `dims` slice bounds; the tail uses masked load/store.
        for r in 0..rows {
            let arow = a.as_ptr().add(r * dims);
            let orow = out.as_mut_ptr().add(r * dims);
            let mut j = 0;
            while j < full {
                let v = _mm256_loadu_pd(arow.add(j));
                let l = _mm256_loadu_pd(lo.as_ptr().add(j));
                let h = _mm256_loadu_pd(hi.as_ptr().add(j));
                let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(h, l);
                let s = _mm256_div_pd(_mm256_sub_pd(v, l), _mm256_sub_pd(h, l));
                _mm256_storeu_pd(orow.add(j), _mm256_blendv_pd(s, half, eq));
                j += 4;
            }
            if rem > 0 {
                let v = _mm256_maskload_pd(arow.add(full), mask);
                let l = _mm256_maskload_pd(lo.as_ptr().add(full), mask);
                let h = _mm256_maskload_pd(hi.as_ptr().add(full), mask);
                let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(h, l);
                let s = _mm256_div_pd(_mm256_sub_pd(v, l), _mm256_sub_pd(h, l));
                _mm256_maskstore_pd(orow.add(full), mask, _mm256_blendv_pd(s, half, eq));
            }
        }
    }

    /// Register-resident AVX specialisation of [`super::matmul_dense`]
    /// for narrow outputs (`n <= 16`, `FULL = n / 4` whole 256-bit lanes
    /// plus a masked tail).
    ///
    /// Unlike [`matmul_dense_avx`], which streams the output row through
    /// memory once per `k`-block, this body keeps every accumulator in a
    /// ymm register across the entire `k` loop and processes two LHS rows
    /// at once so their independent add chains pipeline. Per output
    /// element the operation sequence is unchanged — one `k`-ascending
    /// `o += a[k] * b[k][j]` chain from `0.0`, `vmulpd` + `vaddpd` only,
    /// never FMA — so results are bitwise identical to
    /// [`super::matmul_dense_scalar`] (pinned by the property tests).
    /// Masked tail lanes compute garbage that is never stored.
    ///
    /// With `CENTER` set, each broadcast LHS element is first centered by
    /// its column's `sub` entry (`a[i][kk] − sub[kk]`), serving
    /// [`super::matmul_dense_sub`] without a materialised centered
    /// matrix. The scalar subtraction happens once before the broadcast,
    /// so it rounds exactly like the staged centering pass and the
    /// multiply-add chain is untouched.
    ///
    /// # Safety
    ///
    /// Caller must ensure the `avx` target feature is available and that
    /// `FULL == n / 4` with `n <= 16` (plus `sub.len() == k` when
    /// `CENTER`). Slice bounds are asserted by the dispatching wrapper.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matmul_dense_avx_smalln<const FULL: usize, const CENTER: bool>(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        sub: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(FULL, n / 4);
        let rem = n - FULL * 4;
        let mask = tail_mask(rem);
        let center = |kk: usize, v: f64| if CENTER { v - sub[kk] } else { v };
        let mut i = 0;
        // SAFETY throughout: every pointer offset below stays inside the
        // asserted `m*k` / `k*n` / `m*n` slice bounds; tail lanes use
        // masked load/store which neither read nor write beyond `n`.
        while i + 2 <= m {
            let a0 = &a[i * k..][..k];
            let a1 = &a[(i + 1) * k..][..k];
            let mut acc0 = [_mm256_setzero_pd(); FULL];
            let mut acc1 = [_mm256_setzero_pd(); FULL];
            let mut t0 = _mm256_setzero_pd();
            let mut t1 = _mm256_setzero_pd();
            for kk in 0..k {
                let bk = b.as_ptr().add(kk * n);
                let av0 = _mm256_set1_pd(center(kk, a0[kk]));
                let av1 = _mm256_set1_pd(center(kk, a1[kk]));
                for (g, (acc0g, acc1g)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                    let bv = _mm256_loadu_pd(bk.add(4 * g));
                    *acc0g = _mm256_add_pd(*acc0g, _mm256_mul_pd(av0, bv));
                    *acc1g = _mm256_add_pd(*acc1g, _mm256_mul_pd(av1, bv));
                }
                if rem > 0 {
                    let bv = _mm256_maskload_pd(bk.add(4 * FULL), mask);
                    t0 = _mm256_add_pd(t0, _mm256_mul_pd(av0, bv));
                    t1 = _mm256_add_pd(t1, _mm256_mul_pd(av1, bv));
                }
            }
            let o0 = out.as_mut_ptr().add(i * n);
            let o1 = out.as_mut_ptr().add((i + 1) * n);
            for (g, (acc0g, acc1g)) in acc0.iter().zip(acc1.iter()).enumerate() {
                _mm256_storeu_pd(o0.add(4 * g), *acc0g);
                _mm256_storeu_pd(o1.add(4 * g), *acc1g);
            }
            if rem > 0 {
                _mm256_maskstore_pd(o0.add(4 * FULL), mask, t0);
                _mm256_maskstore_pd(o1.add(4 * FULL), mask, t1);
            }
            i += 2;
        }
        if i < m {
            let a0 = &a[i * k..][..k];
            let mut acc0 = [_mm256_setzero_pd(); FULL];
            let mut t0 = _mm256_setzero_pd();
            for (kk, &a0v) in a0.iter().enumerate() {
                let bk = b.as_ptr().add(kk * n);
                let av0 = _mm256_set1_pd(center(kk, a0v));
                for (g, acc0g) in acc0.iter_mut().enumerate() {
                    let bv = _mm256_loadu_pd(bk.add(4 * g));
                    *acc0g = _mm256_add_pd(*acc0g, _mm256_mul_pd(av0, bv));
                }
                if rem > 0 {
                    let bv = _mm256_maskload_pd(bk.add(4 * FULL), mask);
                    t0 = _mm256_add_pd(t0, _mm256_mul_pd(av0, bv));
                }
            }
            let o0 = out.as_mut_ptr().add(i * n);
            for (g, acc0g) in acc0.iter().enumerate() {
                _mm256_storeu_pd(o0.add(4 * g), *acc0g);
            }
            if rem > 0 {
                _mm256_maskstore_pd(o0.add(4 * FULL), mask, t0);
            }
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the `avx` target feature is available. Slice
    /// bounds are asserted by [`super::matmul_dense`] before dispatch.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matmul_dense_avx(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        out.fill(0.0);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut kk = 0;
            // Four `k` steps per pass; within a pass each output element
            // receives its four additions in ascending `k`, matching the
            // scalar loop's order exactly.
            while kk + 4 <= k {
                let av = [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]];
                let b0 = &b[kk * n..][..n];
                let b1 = &b[(kk + 1) * n..][..n];
                let b2 = &b[(kk + 2) * n..][..n];
                let b3 = &b[(kk + 3) * n..][..n];
                let (s0, s1, s2, s3) = (
                    _mm256_set1_pd(av[0]),
                    _mm256_set1_pd(av[1]),
                    _mm256_set1_pd(av[2]),
                    _mm256_set1_pd(av[3]),
                );
                let mut j = 0;
                while j + 4 <= n {
                    // SAFETY: `j + 4 <= n` and every slice has length `n`.
                    let mut o = _mm256_loadu_pd(orow.as_ptr().add(j));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s0, _mm256_loadu_pd(b0.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s1, _mm256_loadu_pd(b1.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s2, _mm256_loadu_pd(b2.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s3, _mm256_loadu_pd(b3.as_ptr().add(j))));
                    _mm256_storeu_pd(orow.as_mut_ptr().add(j), o);
                    j += 4;
                }
                while j < n {
                    let mut o = orow[j];
                    o += av[0] * b0[j];
                    o += av[1] * b1[j];
                    o += av[2] * b2[j];
                    o += av[3] * b3[j];
                    orow[j] = o;
                    j += 1;
                }
                kk += 4;
            }
            while kk < k {
                let av = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
                kk += 1;
            }
        }
    }
}

/// Column-block width for [`matmul_pretransposed`]. 32 output columns of
/// `f64` are two pages of accumulator state — small enough to stay in L1
/// alongside one LHS row and the matching RHS-transpose rows.
const MATMUL_BLOCK_J: usize = 32;

/// Dense matrix product `out = a × b` with `b` supplied **pre-transposed**
/// (`bt` is `n × k` row-major, i.e. `bt[j * k + kk] == b[kk * n + j]`).
///
/// `a` is `m × k` row-major, `out` is `m × n` row-major and is fully
/// overwritten. Each output element is the `k`-ascending dot product of an
/// `a` row with a `bt` row, accumulated from `0.0` — bitwise the same
/// reduction the naive `i-k-j` loop performs (see [`matmul_naive`]).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_pretransposed(m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(bt.len(), n * k, "pre-transposed rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for jb in (0..n).step_by(MATMUL_BLOCK_J) {
        let jend = (jb + MATMUL_BLOCK_J).min(n);
        for i in 0..m {
            let arow = &a[i * k..][..k];
            let orow = &mut out[i * n..(i + 1) * n];
            // Four output columns per pass: each accumulator is still its
            // own `k`-ascending chain from `0.0` (bitwise the one-column
            // loop), but the four chains are independent, so the CPU can
            // pipeline them instead of stalling on one serial FP add
            // chain. The `[..k]` re-slices let the compiler prove every
            // `[kk]` below is in bounds.
            let mut j = jb;
            while j + 4 <= jend {
                let b0 = &bt[j * k..][..k];
                let b1 = &bt[(j + 1) * k..][..k];
                let b2 = &bt[(j + 2) * k..][..k];
                let b3 = &bt[(j + 3) * k..][..k];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                for kk in 0..k {
                    let av = arow[kk];
                    a0 += av * b0[kk];
                    a1 += av * b1[kk];
                    a2 += av * b2[kk];
                    a3 += av * b3[kk];
                }
                orow[j] = a0;
                orow[j + 1] = a1;
                orow[j + 2] = a2;
                orow[j + 3] = a3;
                j += 4;
            }
            while j < jend {
                let brow = &bt[j * k..][..k];
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                orow[j] = acc;
                j += 1;
            }
        }
    }
}

/// Naive dense matrix product `out = a × b` (`b` in natural `k × n`
/// row-major layout): the documented oracle for
/// [`matmul_pretransposed`].
///
/// Accumulates `out[i][j] += a[i][k] * b[k][j]` in `i-k-j` order — for
/// each output element the additions arrive in ascending `k`, exactly the
/// reduction order of the optimized kernel's per-element dot product.
/// Unlike the historical `Matrix::matmul` this does **not** skip
/// `a[i][k] == 0.0` terms, so `0 × ∞` and `0 × NaN` propagate as IEEE-754
/// dictates.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    out.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
}

/// Matrix-vector product `out[r] = Σ_c a[r][c] * v[c]`, each row reduced
/// `c`-ascending.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec(rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        let row = &a[r * cols..(r + 1) * cols];
        // The same `zip/map/sum` reduction as the historical
        // `Matrix::matvec` — bitwise identical, including the signed-zero
        // behaviour of `f64::sum` (which folds from the first element).
        *o = row.iter().zip(v.iter()).map(|(x, y)| x * y).sum::<f64>();
    }
}

/// Naive matrix-vector product via the iterator chain the original
/// `Matrix::matvec` used: the documented oracle for [`matvec`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec_naive(rows: usize, cols: usize, a: &[f64], v: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    (0..rows)
        .map(|r| {
            a[r * cols..(r + 1) * cols]
                .iter()
                .zip(v.iter())
                .map(|(x, y)| x * y)
                .sum::<f64>()
        })
        .collect()
}

/// Fused centered matrix-vector product:
/// `out[r] = Σ_c a[r][c] * (v[c] - sub[c])`, reduced `c`-ascending.
///
/// The subtraction per term is bitwise what a caller gets from first
/// materialising `centered[c] = v[c] - sub[c]` and then calling
/// [`matvec`]; fusing merely drops the temporary allocation.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec_sub(rows: usize, cols: usize, a: &[f64], v: &[f64], sub: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    assert_eq!(sub.len(), cols, "subtrahend length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        let row = &a[r * cols..(r + 1) * cols];
        *o = row
            .iter()
            .zip(v.iter().zip(sub.iter()))
            .map(|(x, (y, s))| x * (y - s))
            .sum::<f64>();
    }
}

/// Out-of-place transpose: `out` becomes the `cols × rows` transpose of
/// the `rows × cols` row-major `a`. Pure data movement.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated shape.
pub fn transpose(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "input shape mismatch");
    assert_eq!(out.len(), rows * cols, "output shape mismatch");
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
}

/// Naive transpose via per-element indexing: the documented oracle for
/// [`transpose`] and [`transpose_in_place_square`].
///
/// # Panics
///
/// Panics if the slice length disagrees with the stated shape.
pub fn transpose_naive(rows: usize, cols: usize, a: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "input shape mismatch");
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
    out
}

/// In-place transpose of a square `n × n` row-major matrix by swapping
/// the strictly-upper triangle with the strictly-lower one.
///
/// # Panics
///
/// Panics if the slice length is not `n * n`.
pub fn transpose_in_place_square(n: usize, a: &mut [f64]) {
    assert_eq!(a.len(), n * n, "square shape mismatch");
    for r in 0..n {
        for c in (r + 1)..n {
            a.swap(r * n + c, c * n + r);
        }
    }
}

/// Squared Euclidean distance `Σ (a[i] - b[i])²`, reduced `i`-ascending
/// from `0.0`.
///
/// `euclidean_sq(a, b).sqrt()` is bitwise identical to the historical
/// `euclidean(a, b)` (same reduction, then one exact IEEE-754 `sqrt`),
/// and ranking by squared distance yields exactly the same order as
/// ranking by distance because `sqrt` is strictly monotone.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal dimensions");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Per-row squared norms `Σ_c a[r][c]²` of a `rows × cols` row-major
/// matrix, each reduced `c`-ascending. Used by KNN to expand
/// `‖e − q‖² = ‖e‖² − 2·e·q + ‖q‖²` without touching every exemplar
/// coordinate twice.
///
/// # Panics
///
/// Panics if the slice length disagrees with the stated shape.
#[must_use]
pub fn sq_norms(rows: usize, cols: usize, a: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    (0..rows)
        .map(|r| {
            let row = &a[r * cols..(r + 1) * cols];
            row.iter().map(|&x| x * x).sum::<f64>()
        })
        .collect()
}

/// Dot product via the same `zip/map/sum` chain as the historical
/// `linalg::dot` — bitwise identical, signed zeros included.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal dimensions");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Index of the minimum screening value `nsq[i] − 2·g[i] + qs` under the
/// lexicographic `(f64::total_cmp, index)` order — the k = 1 KNN ranking
/// over one query's Gram row.
///
/// Dispatches to an AVX2 body when the CPU supports it. Each vector lane
/// evaluates exactly the scalar expression (`vmulpd`, `vsubpd`, `vaddpd`
/// — one exactly-rounded op per scalar op), the values are mapped to
/// their IEEE-754 total-order integer keys (a pure bit map, the same one
/// `f64::total_cmp` compares by), and the minimum of a total order is
/// reduction-order independent — so the returned index is identical to a
/// serial scan's, ties and signed zeros included (pinned by the tests).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn screened_argmin(nsq: &[f64], g: &[f64], qs: f64) -> usize {
    assert_eq!(nsq.len(), g.len(), "norm/gram length mismatch");
    assert!(!nsq.is_empty(), "argmin of an empty set");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the `avx2` feature was just verified at runtime.
        return unsafe { x86::screened_argmin_avx2(nsq, g, qs) };
    }
    screened_argmin_scalar(nsq, g, qs)
}

/// The `(total-order key, index)` pair for one screening value: an `i64`
/// whose signed order equals `f64::total_cmp` on the value (the same
/// sign-propagating XOR the standard library uses).
#[inline]
fn screen_key(nsq: f64, g: f64, qs: f64, i: usize) -> (i64, usize) {
    let b = (nsq - 2.0 * g + qs).to_bits() as i64;
    (b ^ (((b >> 63) as u64) >> 1) as i64, i)
}

/// Portable body (and bitwise oracle) of [`screened_argmin`]: four
/// interleaved compare chains over the integer keys (the chains partition
/// the index set, and a total-order minimum is partition-independent).
fn screened_argmin_scalar(nsq: &[f64], g: &[f64], qs: f64) -> usize {
    let len = nsq.len();
    let at = |i: usize| screen_key(nsq[i], g[i], qs, i);
    let mut best = at(0);
    let mut tail = 1;
    if len >= 8 {
        let (mut b0, mut b1, mut b2, mut b3) = (at(0), at(1), at(2), at(3));
        let mut i = 4;
        while i + 4 <= len {
            b0 = b0.min(at(i));
            b1 = b1.min(at(i + 1));
            b2 = b2.min(at(i + 2));
            b3 = b3.min(at(i + 3));
            i += 4;
        }
        best = b0.min(b1).min(b2).min(b3);
        tail = i;
    }
    for i in tail..len {
        best = best.min(at(i));
    }
    best.1
}

/// Fused 1-nearest-neighbour screen: for each of `rows` query rows of
/// `queries` (row-major, `dims` wide) computes the Gram row against the
/// pre-transposed exemplar matrix `bt` (`dims × len`) and returns in
/// `out[r]` the index minimising the screening value
/// `nsq[i] − 2·gram[r][i] + qs[r]` under the lexicographic
/// `(f64::total_cmp, index)` order — i.e. exactly
/// `screened_argmin(nsq, &gram_row, qs[r])` over the row that
/// [`matmul_dense`] would produce, without ever materialising the Gram
/// matrix (pinned bitwise by the tests).
///
/// For narrow exemplar sets (`len ≤ 16`, the deployed KNN store) the AVX2
/// body keeps the dot-product accumulators in registers straight through
/// the key-mapped argmin reduction; otherwise the staged
/// matmul-then-argmin composition runs.
///
/// # Panics
///
/// Panics if `len` is zero or any slice length disagrees with the stated
/// shape.
#[allow(clippy::too_many_arguments)]
pub fn nearest1_rows(
    rows: usize,
    dims: usize,
    len: usize,
    queries: &[f64],
    bt: &[f64],
    nsq: &[f64],
    qs: &[f64],
    out: &mut [usize],
) {
    assert!(len > 0, "argmin of an empty set");
    assert_eq!(queries.len(), rows * dims, "query shape mismatch");
    assert_eq!(bt.len(), dims * len, "exemplar shape mismatch");
    assert_eq!(nsq.len(), len, "norm shape mismatch");
    assert_eq!(qs.len(), rows, "query norm shape mismatch");
    assert_eq!(out.len(), rows, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if len <= 16 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the `avx2` feature was just verified at runtime.
        unsafe {
            match len / 4 {
                0 => x86::nearest1_rows_avx2::<0>(rows, dims, len, queries, bt, nsq, qs, out),
                1 => x86::nearest1_rows_avx2::<1>(rows, dims, len, queries, bt, nsq, qs, out),
                2 => x86::nearest1_rows_avx2::<2>(rows, dims, len, queries, bt, nsq, qs, out),
                3 => x86::nearest1_rows_avx2::<3>(rows, dims, len, queries, bt, nsq, qs, out),
                _ => x86::nearest1_rows_avx2::<4>(rows, dims, len, queries, bt, nsq, qs, out),
            }
        }
        return;
    }
    let mut gram = vec![0.0; rows * len];
    matmul_dense(rows, dims, len, queries, bt, &mut gram);
    for (o, (grow, &q)) in out.iter_mut().zip(gram.chunks_exact(len).zip(qs.iter())) {
        *o = screened_argmin(nsq, grow, q);
    }
}

/// Min-max scales a `rows × dims` row-major matrix **without clamping**:
/// `out[r][d] = (a[r][d] − lo[d]) / (hi[d] − lo[d])`, with constant
/// features (`hi == lo`) mapping to `0.5`.
///
/// Dispatches to an AVX body when the CPU supports it. Subtraction and
/// division are each exactly rounded, so every vector lane produces bit
/// for bit the scalar result; the constant-feature lanes are selected by
/// an IEEE EQ compare-and-blend, which agrees with the scalar `hi == lo`
/// branch including `±0.0` (equal under IEEE comparison in both forms).
/// The division must stay a division — `(v − lo) × (1/(hi − lo))` rounds
/// differently. Pinned against the scalar body by the tests.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated shape.
pub fn scale_minmax(rows: usize, dims: usize, a: &[f64], lo: &[f64], hi: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * dims, "input shape mismatch");
    assert_eq!(out.len(), rows * dims, "output shape mismatch");
    assert_eq!(lo.len(), dims, "lo bound shape mismatch");
    assert_eq!(hi.len(), dims, "hi bound shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just verified at runtime.
        unsafe { x86::scale_minmax_avx(rows, dims, a, lo, hi, out) };
        return;
    }
    scale_minmax_scalar(rows, dims, a, lo, hi, out);
}

/// Portable body (and bitwise oracle) of [`scale_minmax`].
fn scale_minmax_scalar(
    rows: usize,
    dims: usize,
    a: &[f64],
    lo: &[f64],
    hi: &[f64],
    out: &mut [f64],
) {
    let _ = rows;
    for (orow, row) in out
        .chunks_exact_mut(dims.max(1))
        .zip(a.chunks_exact(dims.max(1)))
    {
        for ((o, &v), (&l, &h)) in orow.iter_mut().zip(row).zip(lo.iter().zip(hi.iter())) {
            *o = if h == l { 0.5 } else { (v - l) / (h - l) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic dense test data: golden-ratio fractions spread over
    /// [-1, 1), including exact zeros when `zero_every` divides the index.
    fn fixture(len: usize, salt: usize, zero_every: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    (((i + salt) as f64) * 0.618_033_988_75).fract() * 2.0 - 1.0
                }
            })
            .collect()
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 23, 9), (33, 40, 65)] {
            let a = fixture(m * k, 1, 7);
            let b = fixture(k * n, 2, 5);
            let mut naive = vec![0.0; m * n];
            matmul_naive(m, k, n, &a, &b, &mut naive);
            let mut dense = vec![0.0; m * n];
            matmul_dense(m, k, n, &a, &b, &mut dense);
            assert_eq!(bits(&naive), bits(&dense), "dense shape {m}x{k}x{n}");
            // The scalar body must agree too, so on AVX machines this pins
            // the SIMD path against the portable one as well as the oracle.
            let mut scalar = vec![0.0; m * n];
            matmul_dense_scalar(m, k, n, &a, &b, &mut scalar);
            assert_eq!(bits(&naive), bits(&scalar), "scalar shape {m}x{k}x{n}");
            let bt = transpose_naive(k, n, &b);
            let mut fast = vec![0.0; m * n];
            matmul_pretransposed(m, k, n, &a, &bt, &mut fast);
            assert_eq!(bits(&naive), bits(&fast), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_sub_matches_center_then_naive_bitwise() {
        // Shapes cover the PCA projection (n = 9), every FULL bucket of
        // the small-n kernel, the masked-tail widths, odd m (single-row
        // trailer), and a wide n that takes the staged fallback.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (7, 22, 9),
            (17, 23, 9),
            (8, 10, 12),
            (5, 6, 16),
            (33, 40, 65),
        ] {
            let a = fixture(m * k, 1, 7);
            let b = fixture(k * n, 2, 5);
            let sub = fixture(k, 3, 11);
            // Oracle: materialise the centered matrix, then the naive
            // triple loop — the rounding sequence the fused kernel must
            // reproduce exactly.
            let centered: Vec<f64> = a
                .chunks_exact(k)
                .flat_map(|row| row.iter().zip(sub.iter()).map(|(&v, &s)| v - s))
                .collect();
            let mut naive = vec![0.0; m * n];
            matmul_naive(m, k, n, &centered, &b, &mut naive);
            let mut fused = vec![0.0; m * n];
            matmul_dense_sub(m, k, n, &a, &sub, &b, &mut fused);
            assert_eq!(bits(&naive), bits(&fused), "fused shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn screened_argmin_matches_serial_oracle() {
        // Oracle: serial min over (total_cmp, index) — the ranking the
        // KNN partial select uses.
        let oracle = |nsq: &[f64], g: &[f64], qs: f64| {
            (0..nsq.len())
                .map(|i| (nsq[i] - 2.0 * g[i] + qs, i))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap()
                .1
        };
        for &len in &[1usize, 3, 4, 5, 8, 16, 17, 57] {
            let nsq = fixture(len, 21, 9);
            let g = fixture(len, 22, 4);
            for qs in [0.0, 0.37, -1.5] {
                assert_eq!(
                    screened_argmin(&nsq, &g, qs),
                    oracle(&nsq, &g, qs),
                    "len {len} qs {qs}"
                );
                assert_eq!(
                    screened_argmin_scalar(&nsq, &g, qs),
                    oracle(&nsq, &g, qs),
                    "scalar len {len} qs {qs}"
                );
            }
        }
        // Exact ties resolve to the earliest index, in every lane position.
        for len in [4usize, 9, 16] {
            for t in 0..len {
                let mut nsq = vec![5.0; len];
                let g = vec![1.0; len];
                nsq[t] = 1.0;
                if t + 2 < len {
                    nsq[t + 2] = 1.0; // duplicate minimum later on
                }
                assert_eq!(screened_argmin(&nsq, &g, 0.0), t, "tie len {len} t {t}");
            }
        }
        // Signed zeros: total order ranks -0.0 below +0.0.
        let nsq = [0.0, -0.0, 0.0, 0.0, 0.0];
        let g = [0.0; 5];
        assert_eq!(screened_argmin(&nsq, &g, -0.0), 1);
        assert_eq!(screened_argmin_scalar(&nsq, &g, -0.0), 1);
    }

    #[test]
    fn nearest1_rows_matches_matmul_then_argmin() {
        // Shapes cover every FULL bucket, masked tails, odd rows (the
        // single-row trailer), the deployed KNN store (dims 9, len 16),
        // and a wide exemplar set that takes the staged fallback.
        for &(rows, dims, len) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (7, 9, 16),
            (5, 9, 13),
            (4, 22, 16),
            (6, 9, 33),
        ] {
            let q = fixture(rows * dims, 41, 9);
            let bt = fixture(dims * len, 42, 4);
            let nsq = fixture(len, 43, 6);
            let qs = fixture(rows, 44, 2);
            // Oracle: materialise the Gram matrix, then the per-row
            // screened argmin — the staged composition the fused kernel
            // must reproduce exactly.
            let mut gram = vec![0.0; rows * len];
            matmul_dense(rows, dims, len, &q, &bt, &mut gram);
            let mut got = vec![0usize; rows];
            nearest1_rows(rows, dims, len, &q, &bt, &nsq, &qs, &mut got);
            for r in 0..rows {
                assert_eq!(
                    got[r],
                    screened_argmin(&nsq, &gram[r * len..(r + 1) * len], qs[r]),
                    "rows {rows} dims {dims} len {len} r {r}"
                );
            }
        }
    }

    #[test]
    fn scale_minmax_matches_scalar_bitwise() {
        for &(rows, dims) in &[(1usize, 1usize), (3, 3), (5, 4), (7, 5), (33, 22)] {
            let a = fixture(rows * dims, 9, 6);
            let mut lo = fixture(dims, 10, 0);
            let mut hi: Vec<f64> = lo.iter().map(|v| v + 0.7).collect();
            // Exercise the constant-feature blend, including signed zeros
            // (IEEE equality must still route the lane to 0.5).
            if dims > 1 {
                lo[1] = 0.25;
                hi[1] = 0.25;
            }
            lo[0] = -0.0;
            hi[0] = 0.0;
            let mut scalar = vec![0.0; rows * dims];
            scale_minmax_scalar(rows, dims, &a, &lo, &hi, &mut scalar);
            let mut fast = vec![0.0; rows * dims];
            scale_minmax(rows, dims, &a, &lo, &hi, &mut fast);
            assert_eq!(bits(&scalar), bits(&fast), "shape {rows}x{dims}");
        }
    }

    #[test]
    fn matmul_propagates_non_finite() {
        // 0 * inf = NaN must reach the output; the old zero-skip hid it.
        let a = [0.0, 1.0];
        let b = [f64::INFINITY, 2.0];
        let mut out = vec![0.0; 1];
        matmul_naive(1, 2, 1, &a, &b, &mut out);
        assert!(out[0].is_nan());
        let mut dense = vec![0.0; 1];
        matmul_dense(1, 2, 1, &a, &b, &mut dense);
        assert!(dense[0].is_nan());
        let bt = transpose_naive(2, 1, &b);
        let mut fast = vec![0.0; 1];
        matmul_pretransposed(1, 2, 1, &a, &bt, &mut fast);
        assert!(fast[0].is_nan());
    }

    #[test]
    fn matvec_matches_naive_bitwise() {
        for &(rows, cols) in &[(1, 1), (5, 3), (22, 22), (64, 22)] {
            let a = fixture(rows * cols, 3, 11);
            let v = fixture(cols, 4, 0);
            let naive = matvec_naive(rows, cols, &a, &v);
            let mut fast = vec![0.0; rows];
            matvec(rows, cols, &a, &v, &mut fast);
            assert_eq!(bits(&naive), bits(&fast), "shape {rows}x{cols}");
        }
    }

    #[test]
    fn matvec_sub_matches_center_then_matvec_bitwise() {
        let (rows, cols) = (7, 9);
        let a = fixture(rows * cols, 5, 13);
        let v = fixture(cols, 6, 0);
        let sub = fixture(cols, 7, 0);
        let centered: Vec<f64> = v.iter().zip(sub.iter()).map(|(x, s)| x - s).collect();
        let naive = matvec_naive(rows, cols, &a, &centered);
        let mut fast = vec![0.0; rows];
        matvec_sub(rows, cols, &a, &v, &sub, &mut fast);
        assert_eq!(bits(&naive), bits(&fast));
    }

    #[test]
    fn transpose_matches_naive_and_round_trips() {
        let (rows, cols) = (6, 11);
        let a = fixture(rows * cols, 8, 0);
        let naive = transpose_naive(rows, cols, &a);
        let mut fast = vec![0.0; rows * cols];
        transpose(rows, cols, &a, &mut fast);
        assert_eq!(bits(&naive), bits(&fast));
        let mut back = vec![0.0; rows * cols];
        transpose(cols, rows, &fast, &mut back);
        assert_eq!(bits(&a), bits(&back));
    }

    #[test]
    fn in_place_square_transpose_matches_naive() {
        let n = 13;
        let mut a = fixture(n * n, 9, 0);
        let naive = transpose_naive(n, n, &a);
        transpose_in_place_square(n, &mut a);
        assert_eq!(bits(&naive), bits(&a));
    }

    #[test]
    fn euclidean_sq_sqrt_matches_euclidean_bitwise() {
        let a = fixture(22, 10, 0);
        let b = fixture(22, 11, 0);
        let old: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert_eq!(old.to_bits(), euclidean_sq(&a, &b).sqrt().to_bits());
    }

    #[test]
    fn sq_norms_match_self_distance_to_origin() {
        let (rows, cols) = (5, 22);
        let a = fixture(rows * cols, 12, 0);
        let zeros = vec![0.0; cols];
        let norms = sq_norms(rows, cols, &a);
        for r in 0..rows {
            let row = &a[r * cols..(r + 1) * cols];
            assert_eq!(norms[r].to_bits(), euclidean_sq(row, &zeros).to_bits());
        }
    }

    #[test]
    fn dot_matches_iterator_chain_bitwise() {
        let a = fixture(40, 13, 0);
        let b = fixture(40, 14, 0);
        let old: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert_eq!(old.to_bits(), dot(&a, &b).to_bits());
    }
}
