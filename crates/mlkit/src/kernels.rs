//! Flat row-major compute kernels behind [`crate::linalg::Matrix`].
//!
//! Every kernel here operates on plain `&[f64]` slices in row-major order
//! so the hot loops index contiguous memory instead of going through
//! bounds-checked `get`/`set` pairs. The design rule, enforced by the
//! property tests in this module and in `tests/properties.rs`, is:
//!
//! > **An optimized kernel performs exactly the same floating-point
//! > operations, on the same values, in the same order, as the naive
//! > oracle it replaces** — so results are bitwise identical, not merely
//! > close.
//!
//! Concretely:
//!
//! * [`matmul_dense`] keeps the naive oracle's `i-k-j` loop order — each
//!   output element still accumulates in ascending `k` from a zero start,
//!   so results are bitwise identical — but broadcasts one LHS element
//!   across a whole output row via slice iterators. The per-`j`
//!   accumulator chains are independent, so the compiler can vectorize
//!   and pipeline the inner loop, which a per-element dot product (one
//!   serial FP dependency chain) cannot offer.
//! * [`matmul_pretransposed`] pre-transposes the right-hand side once and
//!   walks both operands row-wise in cache-friendly `j`-blocks, but each
//!   output element is still one `k`-ascending multiply-add chain from a
//!   zero accumulator — the identical reduction order the naive
//!   `i-k-j` accumulation produces. Blocking only reorders *which output
//!   elements* are computed when, never the additions *within* one. This
//!   is the dot-product form [`crate::pca`]'s covariance uses (transposed
//!   operand, stride-1 rows); for general products at this pipeline's
//!   sizes the broadcast form above is faster, so [`matmul_dense`] backs
//!   `Matrix::matmul`.
//! * [`matvec`] / [`matvec_sub`] reduce each row with the same
//!   `zip/map/sum` chain the original `Matrix::matvec` used (std's
//!   `f64::sum` folds from the *first element*, so even the `-0.0`
//!   corner matches); `matvec_sub` additionally fuses the
//!   `v[c] - sub[c]` centering into the load so PCA's transform skips
//!   its temporary centered vector.
//! * [`transpose`] / [`transpose_in_place_square`] move values without
//!   arithmetic, so bitwise identity is trivial.
//! * [`euclidean_sq`] is the squared-distance reduction shared by KNN
//!   ranking and k-means assignment; `euclidean_sq(a, b).sqrt()` is
//!   bitwise what the old `euclidean` computed, and because `sqrt` is
//!   strictly monotone (and exact per IEEE-754), ranking by squared
//!   distance selects the same winners as ranking by distance.
//!
//! The naive counterparts ([`matmul_naive`], [`matvec_naive`],
//! [`transpose_naive`]) stay here as documented oracles: slow, obviously
//! correct reference implementations the property tests pin the
//! optimized kernels against.

/// Dense matrix product `out = a × b` with both operands in natural
/// row-major layout (`a` is `m × k`, `b` is `k × n`); `out` is `m × n` and
/// fully overwritten.
///
/// Same `i-k-j` loop order as [`matmul_naive`] — every output element is a
/// `k`-ascending multiply-add chain from `0.0`, so results are **bitwise
/// identical** to the oracle. The difference is purely mechanical: each
/// `a[i][k]` is broadcast across an output-row slice zipped with a `b`-row
/// slice, eliminating bounds checks and leaving `n` independent
/// accumulator chains per inner loop for the compiler to vectorize.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_dense(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just verified at runtime.
        unsafe { x86::matmul_dense_avx(m, k, n, a, b, out) };
        return;
    }
    matmul_dense_scalar(m, k, n, a, b, out);
}

/// Portable body of [`matmul_dense`]: the fallback on targets without AVX
/// and the reference the AVX path reproduces bitwise.
fn matmul_dense_scalar(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        // Eight `k` steps per pass over the output row: the eight additions
        // into each `orow[j]` happen in ascending `k`, exactly as the
        // one-step loop would order them, but the output element is loaded
        // and stored once instead of eight times. The `[..n]` re-slices let
        // the compiler prove every `[j]` below is in bounds.
        let mut kk = 0;
        while kk + 8 <= k {
            let ar = &arow[kk..kk + 8];
            let b0 = &b[kk * n..][..n];
            let b1 = &b[(kk + 1) * n..][..n];
            let b2 = &b[(kk + 2) * n..][..n];
            let b3 = &b[(kk + 3) * n..][..n];
            let b4 = &b[(kk + 4) * n..][..n];
            let b5 = &b[(kk + 5) * n..][..n];
            let b6 = &b[(kk + 6) * n..][..n];
            let b7 = &b[(kk + 7) * n..][..n];
            for j in 0..n {
                let mut o = orow[j];
                o += ar[0] * b0[j];
                o += ar[1] * b1[j];
                o += ar[2] * b2[j];
                o += ar[3] * b3[j];
                o += ar[4] * b4[j];
                o += ar[5] * b5[j];
                o += ar[6] * b6[j];
                o += ar[7] * b7[j];
                orow[j] = o;
            }
            kk += 8;
        }
        while kk < k {
            let av = arow[kk];
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
            kk += 1;
        }
    }
}

/// AVX specialisation of [`matmul_dense`].
///
/// The baseline `x86-64` target only exposes SSE2 (two `f64` lanes), and
/// the scalar kernel already saturates that; these 256-bit loops double
/// the lanes. Crucially they use only `vmulpd` + `vaddpd` — **never FMA**
/// — so every multiply and every add is an individually rounded IEEE-754
/// operation and each lane `j` performs exactly the scalar sequence
/// `o += a[k] * b[k][j]` in ascending `k`. Results are therefore bitwise
/// identical to [`matmul_dense_scalar`] (pinned by the property tests
/// below), and runtime dispatch cannot make output depend on the machine.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };

    /// # Safety
    ///
    /// Caller must ensure the `avx` target feature is available. Slice
    /// bounds are asserted by [`super::matmul_dense`] before dispatch.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matmul_dense_avx(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        out.fill(0.0);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut kk = 0;
            // Four `k` steps per pass; within a pass each output element
            // receives its four additions in ascending `k`, matching the
            // scalar loop's order exactly.
            while kk + 4 <= k {
                let av = [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]];
                let b0 = &b[kk * n..][..n];
                let b1 = &b[(kk + 1) * n..][..n];
                let b2 = &b[(kk + 2) * n..][..n];
                let b3 = &b[(kk + 3) * n..][..n];
                let (s0, s1, s2, s3) = (
                    _mm256_set1_pd(av[0]),
                    _mm256_set1_pd(av[1]),
                    _mm256_set1_pd(av[2]),
                    _mm256_set1_pd(av[3]),
                );
                let mut j = 0;
                while j + 4 <= n {
                    // SAFETY: `j + 4 <= n` and every slice has length `n`.
                    let mut o = _mm256_loadu_pd(orow.as_ptr().add(j));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s0, _mm256_loadu_pd(b0.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s1, _mm256_loadu_pd(b1.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s2, _mm256_loadu_pd(b2.as_ptr().add(j))));
                    o = _mm256_add_pd(o, _mm256_mul_pd(s3, _mm256_loadu_pd(b3.as_ptr().add(j))));
                    _mm256_storeu_pd(orow.as_mut_ptr().add(j), o);
                    j += 4;
                }
                while j < n {
                    let mut o = orow[j];
                    o += av[0] * b0[j];
                    o += av[1] * b1[j];
                    o += av[2] * b2[j];
                    o += av[3] * b3[j];
                    orow[j] = o;
                    j += 1;
                }
                kk += 4;
            }
            while kk < k {
                let av = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
                kk += 1;
            }
        }
    }
}

/// Column-block width for [`matmul_pretransposed`]. 32 output columns of
/// `f64` are two pages of accumulator state — small enough to stay in L1
/// alongside one LHS row and the matching RHS-transpose rows.
const MATMUL_BLOCK_J: usize = 32;

/// Dense matrix product `out = a × b` with `b` supplied **pre-transposed**
/// (`bt` is `n × k` row-major, i.e. `bt[j * k + kk] == b[kk * n + j]`).
///
/// `a` is `m × k` row-major, `out` is `m × n` row-major and is fully
/// overwritten. Each output element is the `k`-ascending dot product of an
/// `a` row with a `bt` row, accumulated from `0.0` — bitwise the same
/// reduction the naive `i-k-j` loop performs (see [`matmul_naive`]).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_pretransposed(m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(bt.len(), n * k, "pre-transposed rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for jb in (0..n).step_by(MATMUL_BLOCK_J) {
        let jend = (jb + MATMUL_BLOCK_J).min(n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in jb..jend {
                let brow = &bt[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                orow[j] = acc;
            }
        }
    }
}

/// Naive dense matrix product `out = a × b` (`b` in natural `k × n`
/// row-major layout): the documented oracle for
/// [`matmul_pretransposed`].
///
/// Accumulates `out[i][j] += a[i][k] * b[k][j]` in `i-k-j` order — for
/// each output element the additions arrive in ascending `k`, exactly the
/// reduction order of the optimized kernel's per-element dot product.
/// Unlike the historical `Matrix::matmul` this does **not** skip
/// `a[i][k] == 0.0` terms, so `0 × ∞` and `0 × NaN` propagate as IEEE-754
/// dictates.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matmul_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    out.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
}

/// Matrix-vector product `out[r] = Σ_c a[r][c] * v[c]`, each row reduced
/// `c`-ascending.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec(rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        let row = &a[r * cols..(r + 1) * cols];
        // The same `zip/map/sum` reduction as the historical
        // `Matrix::matvec` — bitwise identical, including the signed-zero
        // behaviour of `f64::sum` (which folds from the first element).
        *o = row.iter().zip(v.iter()).map(|(x, y)| x * y).sum::<f64>();
    }
}

/// Naive matrix-vector product via the iterator chain the original
/// `Matrix::matvec` used: the documented oracle for [`matvec`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec_naive(rows: usize, cols: usize, a: &[f64], v: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    (0..rows)
        .map(|r| {
            a[r * cols..(r + 1) * cols]
                .iter()
                .zip(v.iter())
                .map(|(x, y)| x * y)
                .sum::<f64>()
        })
        .collect()
}

/// Fused centered matrix-vector product:
/// `out[r] = Σ_c a[r][c] * (v[c] - sub[c])`, reduced `c`-ascending.
///
/// The subtraction per term is bitwise what a caller gets from first
/// materialising `centered[c] = v[c] - sub[c]` and then calling
/// [`matvec`]; fusing merely drops the temporary allocation.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shape.
pub fn matvec_sub(rows: usize, cols: usize, a: &[f64], v: &[f64], sub: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(v.len(), cols, "vector length mismatch");
    assert_eq!(sub.len(), cols, "subtrahend length mismatch");
    assert_eq!(out.len(), rows, "output length mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        let row = &a[r * cols..(r + 1) * cols];
        *o = row
            .iter()
            .zip(v.iter().zip(sub.iter()))
            .map(|(x, (y, s))| x * (y - s))
            .sum::<f64>();
    }
}

/// Out-of-place transpose: `out` becomes the `cols × rows` transpose of
/// the `rows × cols` row-major `a`. Pure data movement.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated shape.
pub fn transpose(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "input shape mismatch");
    assert_eq!(out.len(), rows * cols, "output shape mismatch");
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
}

/// Naive transpose via per-element indexing: the documented oracle for
/// [`transpose`] and [`transpose_in_place_square`].
///
/// # Panics
///
/// Panics if the slice length disagrees with the stated shape.
pub fn transpose_naive(rows: usize, cols: usize, a: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "input shape mismatch");
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
    out
}

/// In-place transpose of a square `n × n` row-major matrix by swapping
/// the strictly-upper triangle with the strictly-lower one.
///
/// # Panics
///
/// Panics if the slice length is not `n * n`.
pub fn transpose_in_place_square(n: usize, a: &mut [f64]) {
    assert_eq!(a.len(), n * n, "square shape mismatch");
    for r in 0..n {
        for c in (r + 1)..n {
            a.swap(r * n + c, c * n + r);
        }
    }
}

/// Squared Euclidean distance `Σ (a[i] - b[i])²`, reduced `i`-ascending
/// from `0.0`.
///
/// `euclidean_sq(a, b).sqrt()` is bitwise identical to the historical
/// `euclidean(a, b)` (same reduction, then one exact IEEE-754 `sqrt`),
/// and ranking by squared distance yields exactly the same order as
/// ranking by distance because `sqrt` is strictly monotone.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal dimensions");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Per-row squared norms `Σ_c a[r][c]²` of a `rows × cols` row-major
/// matrix, each reduced `c`-ascending. Used by KNN to expand
/// `‖e − q‖² = ‖e‖² − 2·e·q + ‖q‖²` without touching every exemplar
/// coordinate twice.
///
/// # Panics
///
/// Panics if the slice length disagrees with the stated shape.
#[must_use]
pub fn sq_norms(rows: usize, cols: usize, a: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    (0..rows)
        .map(|r| {
            let row = &a[r * cols..(r + 1) * cols];
            row.iter().map(|&x| x * x).sum::<f64>()
        })
        .collect()
}

/// Dot product via the same `zip/map/sum` chain as the historical
/// `linalg::dot` — bitwise identical, signed zeros included.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal dimensions");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic dense test data: golden-ratio fractions spread over
    /// [-1, 1), including exact zeros when `zero_every` divides the index.
    fn fixture(len: usize, salt: usize, zero_every: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    (((i + salt) as f64) * 0.618_033_988_75).fract() * 2.0 - 1.0
                }
            })
            .collect()
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 23, 9), (33, 40, 65)] {
            let a = fixture(m * k, 1, 7);
            let b = fixture(k * n, 2, 5);
            let mut naive = vec![0.0; m * n];
            matmul_naive(m, k, n, &a, &b, &mut naive);
            let mut dense = vec![0.0; m * n];
            matmul_dense(m, k, n, &a, &b, &mut dense);
            assert_eq!(bits(&naive), bits(&dense), "dense shape {m}x{k}x{n}");
            // The scalar body must agree too, so on AVX machines this pins
            // the SIMD path against the portable one as well as the oracle.
            let mut scalar = vec![0.0; m * n];
            matmul_dense_scalar(m, k, n, &a, &b, &mut scalar);
            assert_eq!(bits(&naive), bits(&scalar), "scalar shape {m}x{k}x{n}");
            let bt = transpose_naive(k, n, &b);
            let mut fast = vec![0.0; m * n];
            matmul_pretransposed(m, k, n, &a, &bt, &mut fast);
            assert_eq!(bits(&naive), bits(&fast), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_propagates_non_finite() {
        // 0 * inf = NaN must reach the output; the old zero-skip hid it.
        let a = [0.0, 1.0];
        let b = [f64::INFINITY, 2.0];
        let mut out = vec![0.0; 1];
        matmul_naive(1, 2, 1, &a, &b, &mut out);
        assert!(out[0].is_nan());
        let mut dense = vec![0.0; 1];
        matmul_dense(1, 2, 1, &a, &b, &mut dense);
        assert!(dense[0].is_nan());
        let bt = transpose_naive(2, 1, &b);
        let mut fast = vec![0.0; 1];
        matmul_pretransposed(1, 2, 1, &a, &bt, &mut fast);
        assert!(fast[0].is_nan());
    }

    #[test]
    fn matvec_matches_naive_bitwise() {
        for &(rows, cols) in &[(1, 1), (5, 3), (22, 22), (64, 22)] {
            let a = fixture(rows * cols, 3, 11);
            let v = fixture(cols, 4, 0);
            let naive = matvec_naive(rows, cols, &a, &v);
            let mut fast = vec![0.0; rows];
            matvec(rows, cols, &a, &v, &mut fast);
            assert_eq!(bits(&naive), bits(&fast), "shape {rows}x{cols}");
        }
    }

    #[test]
    fn matvec_sub_matches_center_then_matvec_bitwise() {
        let (rows, cols) = (7, 9);
        let a = fixture(rows * cols, 5, 13);
        let v = fixture(cols, 6, 0);
        let sub = fixture(cols, 7, 0);
        let centered: Vec<f64> = v.iter().zip(sub.iter()).map(|(x, s)| x - s).collect();
        let naive = matvec_naive(rows, cols, &a, &centered);
        let mut fast = vec![0.0; rows];
        matvec_sub(rows, cols, &a, &v, &sub, &mut fast);
        assert_eq!(bits(&naive), bits(&fast));
    }

    #[test]
    fn transpose_matches_naive_and_round_trips() {
        let (rows, cols) = (6, 11);
        let a = fixture(rows * cols, 8, 0);
        let naive = transpose_naive(rows, cols, &a);
        let mut fast = vec![0.0; rows * cols];
        transpose(rows, cols, &a, &mut fast);
        assert_eq!(bits(&naive), bits(&fast));
        let mut back = vec![0.0; rows * cols];
        transpose(cols, rows, &fast, &mut back);
        assert_eq!(bits(&a), bits(&back));
    }

    #[test]
    fn in_place_square_transpose_matches_naive() {
        let n = 13;
        let mut a = fixture(n * n, 9, 0);
        let naive = transpose_naive(n, n, &a);
        transpose_in_place_square(n, &mut a);
        assert_eq!(bits(&naive), bits(&a));
    }

    #[test]
    fn euclidean_sq_sqrt_matches_euclidean_bitwise() {
        let a = fixture(22, 10, 0);
        let b = fixture(22, 11, 0);
        let old: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert_eq!(old.to_bits(), euclidean_sq(&a, &b).sqrt().to_bits());
    }

    #[test]
    fn sq_norms_match_self_distance_to_origin() {
        let (rows, cols) = (5, 22);
        let a = fixture(rows * cols, 12, 0);
        let zeros = vec![0.0; cols];
        let norms = sq_norms(rows, cols, &a);
        for r in 0..rows {
            let row = &a[r * cols..(r + 1) * cols];
            assert_eq!(norms[r].to_bits(), euclidean_sq(row, &zeros).to_bits());
        }
    }

    #[test]
    fn dot_matches_iterator_chain_bitwise() {
        let a = fixture(40, 13, 0);
        let b = fixture(40, 14, 0);
        let old: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert_eq!(old.to_bits(), dot(&a, &b).to_bits());
    }
}
