//! K-nearest-neighbour classification — the paper's expert selector (§3, §4.1).
//!
//! The paper picks KNN because (a) its accuracy matches the alternatives
//! (Table 5) and (b) it needs **no retraining when a new memory function is
//! added** — new exemplars are simply inserted. The Euclidean distance to
//! the nearest neighbour doubles as a *confidence* measure: if an incoming
//! application is far from every training program, the runtime falls back
//! to a conservative policy (§6.9).

use crate::kernels;
use crate::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// A prediction together with its distance-based confidence evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnPrediction {
    /// The winning class label.
    pub label: usize,
    /// Distance to the single nearest neighbour.
    pub nearest_distance: f64,
    /// Index (into the training set) of the nearest neighbour.
    pub nearest_index: usize,
}

/// A fitted K-nearest-neighbour classifier.
///
/// # Examples
///
/// ```
/// use mlkit::knn::KnnClassifier;
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0], vec![1.0], vec![10.0]];
/// let ys = vec![0, 0, 1];
/// let knn = KnnClassifier::fit(&xs, &ys, 3)?;
/// assert_eq!(knn.predict(&[0.4]), 0);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    /// Exemplars stored flat, row-major (`len × dims`), so the distance
    /// pass walks contiguous memory.
    exemplars: Vec<f64>,
    /// The exemplar store transposed (`dims × len`), maintained alongside
    /// `exemplars` so [`KnnClassifier::predict_batch`] can feed the
    /// vectorized [`kernels::matmul_dense`] without a per-call transpose.
    /// Pure data movement — no arithmetic, so nothing to drift.
    exemplars_t: Vec<f64>,
    /// Precomputed squared norm `‖e‖²` per exemplar, maintained by
    /// [`KnnClassifier::fit`] and [`KnnClassifier::insert`].
    norms_sq: Vec<f64>,
    labels: Vec<usize>,
    k: usize,
    dims: usize,
}

/// Reusable buffers for the rank-and-vote tail: `screened` holds the
/// per-exemplar `(screening value, index)` pairs, `votes` the per-label
/// `(label, count, cumulative distance)` tallies. The batched path keeps
/// one scratch across rows so serving a row allocates nothing.
#[derive(Debug, Default)]
struct RankScratch {
    screened: Vec<(f64, usize)>,
    votes: Vec<(usize, usize, f64)>,
}

impl KnnClassifier {
    /// Stores the training set for lazy classification with parameter `k`.
    /// `k` is clipped to the training-set size.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if the training set is
    /// empty, ragged, mismatched with labels, or `k == 0`.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], k: usize) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        if k == 0 {
            return Err(MlError::InvalidTrainingData("k must be positive".into()));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        if xs.iter().any(|x| x.iter().any(|v| !v.is_finite())) {
            return Err(MlError::InvalidTrainingData(
                "non-finite feature value in training set".into(),
            ));
        }
        let flat: Vec<f64> = xs.iter().flat_map(|r| r.iter().copied()).collect();
        let norms_sq = kernels::sq_norms(xs.len(), dims, &flat);
        let mut exemplars_t = vec![0.0; flat.len()];
        kernels::transpose(xs.len(), dims, &flat, &mut exemplars_t);
        Ok(KnnClassifier {
            exemplars: flat,
            exemplars_t,
            norms_sq,
            labels: ys.to_vec(),
            k: k.min(ys.len()),
            dims,
        })
    }

    /// Adds a new exemplar without retraining — the property the paper
    /// highlights for extending the expert set over time.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong dimensionality.
    pub fn insert(&mut self, x: Vec<f64>, y: usize) -> Result<(), MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidTrainingData(
                "non-finite feature value in exemplar".into(),
            ));
        }
        self.norms_sq.push(kernels::dot(&x, &x));
        self.exemplars.extend_from_slice(&x);
        self.labels.push(y);
        // Appending a row to the row-major store appends a *column* to the
        // transpose, which shifts every row of it — rebuild. Insertion is
        // a rare training-time event; prediction stays allocation-free.
        self.exemplars_t.resize(self.exemplars.len(), 0.0);
        kernels::transpose(
            self.labels.len(),
            self.dims,
            &self.exemplars,
            &mut self.exemplars_t,
        );
        Ok(())
    }

    /// Number of stored exemplars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the classifier holds no exemplars (never true once fitted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Exemplar `i` as a slice of the flat store.
    fn exemplar(&self, i: usize) -> &[f64] {
        &self.exemplars[i * self.dims..(i + 1) * self.dims]
    }

    /// The `k` in use.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The exemplar store, flat row-major (`len × dims`).
    #[must_use]
    pub fn exemplars_flat(&self) -> &[f64] {
        &self.exemplars
    }

    /// Precomputed squared norm `‖e‖²` per exemplar.
    #[must_use]
    pub fn norms_sq(&self) -> &[f64] {
        &self.norms_sq
    }

    /// The class label of each exemplar.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Reassembles a classifier from its serialized fields (the model
    /// artifact load path).
    ///
    /// The stored squared norms are verified bit-for-bit against a
    /// recomputation from the exemplar store: both [`KnnClassifier::fit`]
    /// and [`KnnClassifier::insert`] derive them with the same
    /// `c`-ascending `x·x` reduction, so any disagreement means the fields
    /// were not produced together.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] on inconsistent shapes,
    /// non-finite exemplars, an out-of-range `k`, or norms that do not
    /// reproduce from the exemplars.
    pub fn from_parts(
        exemplars: Vec<f64>,
        norms_sq: Vec<f64>,
        labels: Vec<usize>,
        k: usize,
        dims: usize,
    ) -> Result<Self, MlError> {
        if labels.is_empty() || dims == 0 {
            return Err(MlError::InvalidTrainingData(
                "empty exemplar set or zero dims".into(),
            ));
        }
        if exemplars.len() != labels.len() * dims || norms_sq.len() != labels.len() {
            return Err(MlError::InvalidTrainingData(
                "exemplar/norm/label shapes disagree".into(),
            ));
        }
        if k == 0 || k > labels.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "k must be in 1..={}, got {k}",
                labels.len()
            )));
        }
        if exemplars.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidTrainingData(
                "non-finite feature value in exemplar store".into(),
            ));
        }
        let recomputed = kernels::sq_norms(labels.len(), dims, &exemplars);
        if recomputed
            .iter()
            .zip(norms_sq.iter())
            .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err(MlError::InvalidTrainingData(
                "stored squared norms disagree with the exemplar store".into(),
            ));
        }
        let mut exemplars_t = vec![0.0; exemplars.len()];
        kernels::transpose(labels.len(), dims, &exemplars, &mut exemplars_t);
        Ok(KnnClassifier {
            exemplars,
            exemplars_t,
            norms_sq,
            labels,
            k,
            dims,
        })
    }

    /// Predicts with full evidence: majority vote over the `k` nearest
    /// exemplars (ties broken toward the closer class), plus the nearest
    /// distance for confidence thresholds.
    ///
    /// Neighbour search is two-stage: a screening pass ranks all
    /// exemplars by the norm expansion `‖e‖² − 2·e·q + ‖q‖²` (using the
    /// precomputed squared norms) and partial-selects the `k` smallest
    /// via `select_nth_unstable_by` — no full sort over the store. The
    /// selected `k` are then re-scored with the exact squared distance
    /// and sorted with the historical `total_cmp`-then-index tie-break,
    /// and the reported distances are `sqrt` of the exact values — bit
    /// for bit what the full-sort implementation returned. The screening
    /// expansion agrees with the exact distance to within ~1 ULP, so the
    /// candidate set can only differ from the exact top-`k` when two
    /// exemplars straddle the boundary within that rounding margin.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong dimensionality and
    /// [`MlError::Numerical`] when the query contains a non-finite value
    /// (a NaN query has no meaningful nearest neighbour).
    pub fn predict_with_evidence(&self, x: &[f64]) -> Result<KnnPrediction, MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(MlError::Numerical(
                "non-finite value in KNN query vector".into(),
            ));
        }
        // Exemplars and the query are validated finite, so every distance
        // is finite and `total_cmp` orders exactly as `partial_cmp` would.
        let q_sq = kernels::dot(x, x);
        if self.k == 1 {
            // Fused fast path for the paper's deployed configuration: the
            // single nearest neighbour is the minimum screening value, so
            // the screened buffer never needs to exist.
            let best_i = Self::nearest1_by(self.len(), |i| {
                self.norms_sq[i] - 2.0 * kernels::dot(self.exemplar(i), x) + q_sq
            });
            return Ok(self.evidence_for(best_i, x));
        }
        let mut scratch = RankScratch::default();
        scratch.screened.extend((0..self.len()).map(|i| {
            let approx = self.norms_sq[i] - 2.0 * kernels::dot(self.exemplar(i), x) + q_sq;
            (approx, i)
        }));
        self.rank_and_vote(&mut scratch, x)
    }

    /// Index of the exemplar minimising `val(i)` under the same
    /// `(value, index)` total order [`KnnClassifier::rank_and_vote`] ranks
    /// by — the k = 1 winner — computed without materialising the screened
    /// buffer. Four interleaved compare chains keep the FP compare latency
    /// off the critical path; the minimum of a total order is
    /// reduction-order independent (the chains partition the index set),
    /// so the winner is exactly the candidate the general partial-select
    /// path would retain.
    fn nearest1_by(len: usize, val: impl Fn(usize) -> f64) -> usize {
        // Pack each (value, index) pair into one u128 whose *unsigned*
        // order equals the lexicographic (total_cmp, index) order: the
        // high 64 bits hold the value under the IEEE-754 total-order
        // mapping `f64::total_cmp` itself uses (sign-propagating XOR of
        // the payload bits), shifted into unsigned range by flipping the
        // top bit; the low 64 bits hold the index. The minimum is then a
        // single branchless integer `min` per element.
        let key = |i: usize| {
            let b = val(i).to_bits() as i64;
            let m = (b ^ (((b >> 63) as u64) >> 1) as i64) as u64 ^ (1u64 << 63);
            ((m as u128) << 64) | i as u128
        };
        let mut best = key(0);
        let mut tail = 1;
        if len >= 8 {
            let (mut b0, mut b1, mut b2, mut b3) = (key(0), key(1), key(2), key(3));
            let mut i = 4;
            while i + 4 <= len {
                b0 = b0.min(key(i));
                b1 = b1.min(key(i + 1));
                b2 = b2.min(key(i + 2));
                b3 = b3.min(key(i + 3));
                i += 4;
            }
            best = b0.min(b1).min(b2).min(b3);
            tail = i;
        }
        for i in tail..len {
            best = best.min(key(i));
        }
        best as u64 as usize
    }

    /// Exact re-score and evidence assembly for a k = 1 winner: the same
    /// `euclidean_sq` + `sqrt` the general path applies to the top-ranked
    /// candidate, so the fused and general paths report bitwise-equal
    /// distances.
    fn evidence_for(&self, best_i: usize, x: &[f64]) -> KnnPrediction {
        let d_sq = kernels::euclidean_sq(self.exemplar(best_i), x);
        KnnPrediction {
            label: self.labels[best_i],
            nearest_distance: d_sq.sqrt(),
            nearest_index: best_i,
        }
    }

    /// The shared tail of [`KnnClassifier::predict_with_evidence`] and
    /// [`KnnClassifier::predict_batch`]: partial-select the `k` smallest
    /// screening values from `scratch.screened`, re-score exactly, vote.
    /// One code path, so the scalar and batched entry points cannot
    /// drift; the scratch buffers let the batched path serve every row
    /// without per-row allocations.
    ///
    /// The vote accumulates per label in first-neighbour order. A tie
    /// (two labels with equal counts *and* bitwise-equal cumulative
    /// distances) resolves to the later entry; ranking is by count then
    /// distance, so ties can only involve distinct labels with identical
    /// evidence, which the distance sums make unreachable in practice.
    fn rank_and_vote(
        &self,
        scratch: &mut RankScratch,
        x: &[f64],
    ) -> Result<KnnPrediction, MlError> {
        let cmp = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        let screened = &mut scratch.screened;
        if self.k < screened.len() {
            screened.select_nth_unstable_by(self.k - 1, cmp);
            screened.truncate(self.k);
        }
        // Re-score the k candidates exactly and restore the historical
        // neighbour order (sqrt is monotone: ranking by d² == by d).
        for entry in screened.iter_mut() {
            entry.0 = kernels::euclidean_sq(self.exemplar(entry.1), x);
        }
        screened.sort_by(cmp);

        // Majority vote, ties resolved by smallest cumulative distance.
        // Each label's sum starts from its first `d.sqrt()` (never `-0.0`),
        // which is bitwise the old `0.0 + d` fold.
        let votes = &mut scratch.votes;
        votes.clear();
        for &(d_sq, idx) in screened.iter() {
            let label = self.labels[idx];
            match votes.iter_mut().find(|v| v.0 == label) {
                Some(v) => {
                    v.1 += 1;
                    v.2 += d_sq.sqrt();
                }
                None => votes.push((label, 1, d_sq.sqrt())),
            }
        }
        let &(label, _, _) = votes
            .iter()
            .max_by(|(_, ca, da), (_, cb, db)| ca.cmp(cb).then_with(|| db.total_cmp(da)))
            .ok_or_else(|| MlError::InvalidTrainingData("no neighbours to vote".into()))?;
        let &(nearest_sq, nearest_index) = screened
            .first()
            .ok_or_else(|| MlError::InvalidTrainingData("no neighbours to vote".into()))?;

        Ok(KnnPrediction {
            label,
            nearest_distance: nearest_sq.sqrt(),
            nearest_index,
        })
    }

    /// Classifies `n` queries supplied flat row-major (`n × dims`) in one
    /// pass: per-query squared norms via [`kernels::sq_norms`] and the
    /// whole `n × len` query-exemplar inner-product matrix via the
    /// vectorized [`kernels::matmul_dense`] over the precomputed
    /// transposed exemplar store, then one partial-select + exact
    /// re-score + vote per row through the same code path as
    /// [`KnnClassifier::predict_with_evidence`].
    ///
    /// **Bitwise identical to `n` scalar calls.** `sq_norms` reduces each
    /// query row with the same `c`-ascending `x·x` chain as `dot(x, x)`,
    /// and each Gram element is the same `c`-ascending multiply-add chain
    /// as `dot(exemplar, query)`. The kernel's accumulator starts at
    /// `+0.0` where `f64::sum` folds from `-0.0`, which can only differ
    /// when *every* product in a chain is `-0.0` — and even then the
    /// screening expression `‖e‖² − 2·g + ‖q‖²` absorbs the zero-sign
    /// difference (`x − (±0.0)` is `x` for nonzero `x` and `+0.0` for
    /// zero `x`, and `‖·‖²` is never `-0.0`), so the screened values, the
    /// selected candidates, and the exact re-scored result are identical
    /// in all cases. The property tests in `tests/properties.rs` pin this
    /// against the scalar oracle.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `queries.len()` is not
    /// `n × dims` and [`MlError::Numerical`] if any query value is
    /// non-finite.
    pub fn predict_batch(&self, n: usize, queries: &[f64]) -> Result<Vec<KnnPrediction>, MlError> {
        if queries.len() != n * self.dims {
            return Err(MlError::DimensionMismatch {
                expected: n * self.dims,
                actual: queries.len(),
            });
        }
        // Branch-free conjunction instead of a short-circuit scan: valid
        // inputs never exit early anyway, and this form vectorizes.
        if !queries.iter().fold(true, |ok, v| ok & v.is_finite()) {
            return Err(MlError::Numerical(
                "non-finite value in KNN query matrix".into(),
            ));
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let q_sq = kernels::sq_norms(n, self.dims, queries);
        let len = self.len();
        if self.k == 1 {
            // Fused fast path mirroring the scalar one: one
            // [`kernels::nearest1_rows`] call computes every query's
            // screening argmin with the Gram row still in registers — no
            // Gram matrix, no screened buffer.
            let mut best = vec![0usize; n];
            kernels::nearest1_rows(
                n,
                self.dims,
                len,
                queries,
                &self.exemplars_t,
                &self.norms_sq,
                &q_sq,
                &mut best,
            );
            return Ok(best
                .iter()
                .enumerate()
                .map(|(r, &best_i)| {
                    self.evidence_for(best_i, &queries[r * self.dims..(r + 1) * self.dims])
                })
                .collect());
        }
        let mut gram = vec![0.0; n * len];
        kernels::matmul_dense(n, self.dims, len, queries, &self.exemplars_t, &mut gram);
        // One scratch for the whole batch: after the warm-up row, serving
        // a row performs no allocations at all.
        let mut scratch = RankScratch::default();
        (0..n)
            .map(|r| {
                let grow = &gram[r * self.len()..(r + 1) * self.len()];
                let qs = q_sq[r];
                scratch.screened.clear();
                scratch.screened.extend(
                    self.norms_sq
                        .iter()
                        .zip(grow)
                        .enumerate()
                        .map(|(i, (&nsq, &g))| (nsq - 2.0 * g + qs, i)),
                );
                self.rank_and_vote(&mut scratch, &queries[r * self.dims..(r + 1) * self.dims])
            })
            .collect()
    }
}

impl Classifier for KnnClassifier {
    fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_evidence(x)
            .expect("dimension mismatch in KNN predict")
            .label
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            xs.push(vec![i as f64 * 0.01, 0.0]);
            ys.push(0);
            xs.push(vec![5.0 + i as f64 * 0.01, 5.0]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_blobs() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert_eq!(knn.predict(&[0.0, 0.1]), 0);
        assert_eq!(knn.predict(&[5.0, 4.9]), 1);
    }

    #[test]
    fn nearest_distance_reflects_confidence() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 1).unwrap();
        let near = knn.predict_with_evidence(&[0.0, 0.0]).unwrap();
        let far = knn.predict_with_evidence(&[100.0, 100.0]).unwrap();
        assert!(near.nearest_distance < 0.1);
        assert!(far.nearest_distance > 50.0);
    }

    #[test]
    fn insert_extends_without_refit() {
        let (xs, ys) = two_blobs();
        let mut knn = KnnClassifier::fit(&xs, &ys, 1).unwrap();
        assert_eq!(knn.predict(&[-20.0, -20.0]), 0);
        knn.insert(vec![-20.0, -20.0], 7).unwrap();
        assert_eq!(knn.predict(&[-20.0, -20.0]), 7);
        assert_eq!(knn.len(), 21);
    }

    #[test]
    fn k_is_clipped_to_training_size() {
        let knn = KnnClassifier::fit(&[vec![0.0]], &[0], 10).unwrap();
        assert_eq!(knn.k(), 1);
        assert_eq!(knn.predict(&[3.0]), 0);
    }

    #[test]
    fn majority_vote_with_k3() {
        let xs = vec![vec![0.0], vec![0.2], vec![0.3], vec![10.0]];
        let ys = vec![1, 1, 0, 0];
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        // Neighbours of 0.1: labels {1, 1, 0} -> majority 1.
        assert_eq!(knn.predict(&[0.1]), 1);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(KnnClassifier::fit(&[], &[], 1).is_err());
        assert!(KnnClassifier::fit(&[vec![1.0]], &[0], 0).is_err());
        assert!(KnnClassifier::fit(&[vec![1.0]], &[0, 1], 1).is_err());
        let knn = KnnClassifier::fit(&[vec![1.0, 2.0]], &[0], 1).unwrap();
        assert!(knn.predict_with_evidence(&[1.0]).is_err());
        let mut knn = knn;
        assert!(knn.insert(vec![1.0], 0).is_err());
    }

    #[test]
    fn rejects_non_finite_inputs_with_typed_errors() {
        assert!(matches!(
            KnnClassifier::fit(&[vec![f64::NAN]], &[0], 1),
            Err(MlError::InvalidTrainingData(_))
        ));
        let (xs, ys) = two_blobs();
        let mut knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert!(matches!(
            knn.insert(vec![1.0, f64::INFINITY], 0),
            Err(MlError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            knn.predict_with_evidence(&[f64::NAN, 0.0]),
            Err(MlError::Numerical(_))
        ));
    }

    #[test]
    fn partial_select_matches_full_sort_oracle() {
        // Oracle: the historical implementation — full sort of exact
        // euclidean distances with the (distance, index) tie-break.
        let dims = 22;
        let n = 257;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dims)
                    .map(|d| {
                        let jitter = (((i * 31 + d * 7) % 97) as f64 / 97.0 - 0.5) * 0.4;
                        (i % 3) as f64 * 2.0 + (d % 5) as f64 * 0.1 + jitter
                    })
                    .collect()
            })
            .collect();
        let ys: Vec<usize> = (0..n).map(|i| i % 3).collect();
        for k in [1, 3, 7] {
            let knn = KnnClassifier::fit(&xs, &ys, k).unwrap();
            for qi in 0..8 {
                let q: Vec<f64> = (0..dims)
                    .map(|d| (qi % 3) as f64 * 2.0 + (d % 5) as f64 * 0.1 + 0.03 * qi as f64)
                    .collect();
                let got = knn.predict_with_evidence(&q).unwrap();

                let mut dists: Vec<(f64, usize)> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (crate::linalg::euclidean(e, &q), i))
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let neighbours = &dists[..k];
                let mut votes: std::collections::HashMap<usize, (usize, f64)> =
                    std::collections::HashMap::new();
                for &(d, idx) in neighbours {
                    let entry = votes.entry(ys[idx]).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += d;
                }
                let (&label, _) = votes
                    .iter()
                    .max_by(|(_, (ca, da)), (_, (cb, db))| {
                        ca.cmp(cb).then_with(|| db.total_cmp(da))
                    })
                    .unwrap();

                assert_eq!(got.label, label, "winner k={k} q={qi}");
                assert_eq!(got.nearest_index, neighbours[0].1, "index k={k} q={qi}");
                assert_eq!(
                    got.nearest_distance.to_bits(),
                    neighbours[0].0.to_bits(),
                    "distance bits k={k} q={qi}"
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_scalar_bitwise() {
        let dims = 22;
        let n_ex = 57;
        let xs: Vec<Vec<f64>> = (0..n_ex)
            .map(|i| {
                (0..dims)
                    .map(|d| {
                        let jitter = (((i * 13 + d * 5) % 89) as f64 / 89.0 - 0.5) * 0.7;
                        (i % 3) as f64 * 1.5 + (d % 7) as f64 * 0.2 + jitter
                    })
                    .collect()
            })
            .collect();
        let ys: Vec<usize> = (0..n_ex).map(|i| i % 3).collect();
        for k in [1, 3] {
            let knn = KnnClassifier::fit(&xs, &ys, k).unwrap();
            for n in [1usize, 7, 256] {
                let queries: Vec<f64> = (0..n * dims)
                    .map(|j| ((j * 29 + 11) % 101) as f64 / 101.0 * 4.0 - 1.0)
                    .collect();
                let batched = knn.predict_batch(n, &queries).unwrap();
                assert_eq!(batched.len(), n);
                for (r, got) in batched.iter().enumerate() {
                    let want = knn
                        .predict_with_evidence(&queries[r * dims..(r + 1) * dims])
                        .unwrap();
                    assert_eq!(got.label, want.label, "label n={n} k={k} r={r}");
                    assert_eq!(
                        got.nearest_index, want.nearest_index,
                        "index n={n} k={k} r={r}"
                    );
                    assert_eq!(
                        got.nearest_distance.to_bits(),
                        want.nearest_distance.to_bits(),
                        "distance bits n={n} k={k} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_tampering() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        let rebuilt = KnnClassifier::from_parts(
            knn.exemplars_flat().to_vec(),
            knn.norms_sq().to_vec(),
            knn.labels().to_vec(),
            knn.k(),
            knn.dims(),
        )
        .unwrap();
        let got = rebuilt.predict_with_evidence(&[0.05, 0.02]).unwrap();
        let want = knn.predict_with_evidence(&[0.05, 0.02]).unwrap();
        assert_eq!(got, want);

        // Norms that did not come from the exemplar store are rejected.
        let mut bad_norms = knn.norms_sq().to_vec();
        bad_norms[0] += 1.0;
        assert!(KnnClassifier::from_parts(
            knn.exemplars_flat().to_vec(),
            bad_norms,
            knn.labels().to_vec(),
            knn.k(),
            knn.dims(),
        )
        .is_err());
        // Shape and range violations are rejected.
        assert!(
            KnnClassifier::from_parts(vec![1.0], vec![1.0], vec![0], 1, 2).is_err(),
            "flat store shorter than labels × dims"
        );
        assert!(KnnClassifier::from_parts(vec![1.0], vec![1.0], vec![0], 2, 1).is_err());
    }

    #[test]
    fn classifier_trait_metadata() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert_eq!(knn.dims(), 2);
        assert_eq!(knn.name(), "KNN");
    }
}
