//! K-nearest-neighbour classification — the paper's expert selector (§3, §4.1).
//!
//! The paper picks KNN because (a) its accuracy matches the alternatives
//! (Table 5) and (b) it needs **no retraining when a new memory function is
//! added** — new exemplars are simply inserted. The Euclidean distance to
//! the nearest neighbour doubles as a *confidence* measure: if an incoming
//! application is far from every training program, the runtime falls back
//! to a conservative policy (§6.9).

use crate::kernels;
use crate::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// A prediction together with its distance-based confidence evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnPrediction {
    /// The winning class label.
    pub label: usize,
    /// Distance to the single nearest neighbour.
    pub nearest_distance: f64,
    /// Index (into the training set) of the nearest neighbour.
    pub nearest_index: usize,
}

/// A fitted K-nearest-neighbour classifier.
///
/// # Examples
///
/// ```
/// use mlkit::knn::KnnClassifier;
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0], vec![1.0], vec![10.0]];
/// let ys = vec![0, 0, 1];
/// let knn = KnnClassifier::fit(&xs, &ys, 3)?;
/// assert_eq!(knn.predict(&[0.4]), 0);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    /// Exemplars stored flat, row-major (`len × dims`), so the distance
    /// pass walks contiguous memory.
    exemplars: Vec<f64>,
    /// Precomputed squared norm `‖e‖²` per exemplar, maintained by
    /// [`KnnClassifier::fit`] and [`KnnClassifier::insert`].
    norms_sq: Vec<f64>,
    labels: Vec<usize>,
    k: usize,
    dims: usize,
}

impl KnnClassifier {
    /// Stores the training set for lazy classification with parameter `k`.
    /// `k` is clipped to the training-set size.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if the training set is
    /// empty, ragged, mismatched with labels, or `k == 0`.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], k: usize) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        if k == 0 {
            return Err(MlError::InvalidTrainingData("k must be positive".into()));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        if xs.iter().any(|x| x.iter().any(|v| !v.is_finite())) {
            return Err(MlError::InvalidTrainingData(
                "non-finite feature value in training set".into(),
            ));
        }
        let flat: Vec<f64> = xs.iter().flat_map(|r| r.iter().copied()).collect();
        let norms_sq = kernels::sq_norms(xs.len(), dims, &flat);
        Ok(KnnClassifier {
            exemplars: flat,
            norms_sq,
            labels: ys.to_vec(),
            k: k.min(ys.len()),
            dims,
        })
    }

    /// Adds a new exemplar without retraining — the property the paper
    /// highlights for extending the expert set over time.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong dimensionality.
    pub fn insert(&mut self, x: Vec<f64>, y: usize) -> Result<(), MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidTrainingData(
                "non-finite feature value in exemplar".into(),
            ));
        }
        self.norms_sq.push(kernels::dot(&x, &x));
        self.exemplars.extend_from_slice(&x);
        self.labels.push(y);
        Ok(())
    }

    /// Number of stored exemplars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the classifier holds no exemplars (never true once fitted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Exemplar `i` as a slice of the flat store.
    fn exemplar(&self, i: usize) -> &[f64] {
        &self.exemplars[i * self.dims..(i + 1) * self.dims]
    }

    /// The `k` in use.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predicts with full evidence: majority vote over the `k` nearest
    /// exemplars (ties broken toward the closer class), plus the nearest
    /// distance for confidence thresholds.
    ///
    /// Neighbour search is two-stage: a screening pass ranks all
    /// exemplars by the norm expansion `‖e‖² − 2·e·q + ‖q‖²` (using the
    /// precomputed squared norms) and partial-selects the `k` smallest
    /// via `select_nth_unstable_by` — no full sort over the store. The
    /// selected `k` are then re-scored with the exact squared distance
    /// and sorted with the historical `total_cmp`-then-index tie-break,
    /// and the reported distances are `sqrt` of the exact values — bit
    /// for bit what the full-sort implementation returned. The screening
    /// expansion agrees with the exact distance to within ~1 ULP, so the
    /// candidate set can only differ from the exact top-`k` when two
    /// exemplars straddle the boundary within that rounding margin.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong dimensionality and
    /// [`MlError::Numerical`] when the query contains a non-finite value
    /// (a NaN query has no meaningful nearest neighbour).
    pub fn predict_with_evidence(&self, x: &[f64]) -> Result<KnnPrediction, MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(MlError::Numerical(
                "non-finite value in KNN query vector".into(),
            ));
        }
        // Exemplars and the query are validated finite, so every distance
        // is finite and `total_cmp` orders exactly as `partial_cmp` would.
        let q_sq = kernels::dot(x, x);
        let mut screened: Vec<(f64, usize)> = (0..self.len())
            .map(|i| {
                let approx = self.norms_sq[i] - 2.0 * kernels::dot(self.exemplar(i), x) + q_sq;
                (approx, i)
            })
            .collect();
        let cmp = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if self.k < screened.len() {
            screened.select_nth_unstable_by(self.k - 1, cmp);
            screened.truncate(self.k);
        }
        // Re-score the k candidates exactly and restore the historical
        // neighbour order (sqrt is monotone: ranking by d² == by d).
        let mut neighbours: Vec<(f64, usize)> = screened
            .into_iter()
            .map(|(_, i)| (kernels::euclidean_sq(self.exemplar(i), x), i))
            .collect();
        neighbours.sort_by(cmp);

        // Majority vote, ties resolved by smallest cumulative distance.
        let mut votes: std::collections::HashMap<usize, (usize, f64)> =
            std::collections::HashMap::new();
        for &(d_sq, idx) in &neighbours {
            let entry = votes.entry(self.labels[idx]).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += d_sq.sqrt();
        }
        let (&label, _) = votes
            .iter()
            .max_by(|(_, (ca, da)), (_, (cb, db))| ca.cmp(cb).then_with(|| db.total_cmp(da)))
            .ok_or_else(|| MlError::InvalidTrainingData("no neighbours to vote".into()))?;

        Ok(KnnPrediction {
            label,
            nearest_distance: neighbours[0].0.sqrt(),
            nearest_index: neighbours[0].1,
        })
    }
}

impl Classifier for KnnClassifier {
    fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_evidence(x)
            .expect("dimension mismatch in KNN predict")
            .label
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            xs.push(vec![i as f64 * 0.01, 0.0]);
            ys.push(0);
            xs.push(vec![5.0 + i as f64 * 0.01, 5.0]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_blobs() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert_eq!(knn.predict(&[0.0, 0.1]), 0);
        assert_eq!(knn.predict(&[5.0, 4.9]), 1);
    }

    #[test]
    fn nearest_distance_reflects_confidence() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 1).unwrap();
        let near = knn.predict_with_evidence(&[0.0, 0.0]).unwrap();
        let far = knn.predict_with_evidence(&[100.0, 100.0]).unwrap();
        assert!(near.nearest_distance < 0.1);
        assert!(far.nearest_distance > 50.0);
    }

    #[test]
    fn insert_extends_without_refit() {
        let (xs, ys) = two_blobs();
        let mut knn = KnnClassifier::fit(&xs, &ys, 1).unwrap();
        assert_eq!(knn.predict(&[-20.0, -20.0]), 0);
        knn.insert(vec![-20.0, -20.0], 7).unwrap();
        assert_eq!(knn.predict(&[-20.0, -20.0]), 7);
        assert_eq!(knn.len(), 21);
    }

    #[test]
    fn k_is_clipped_to_training_size() {
        let knn = KnnClassifier::fit(&[vec![0.0]], &[0], 10).unwrap();
        assert_eq!(knn.k(), 1);
        assert_eq!(knn.predict(&[3.0]), 0);
    }

    #[test]
    fn majority_vote_with_k3() {
        let xs = vec![vec![0.0], vec![0.2], vec![0.3], vec![10.0]];
        let ys = vec![1, 1, 0, 0];
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        // Neighbours of 0.1: labels {1, 1, 0} -> majority 1.
        assert_eq!(knn.predict(&[0.1]), 1);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(KnnClassifier::fit(&[], &[], 1).is_err());
        assert!(KnnClassifier::fit(&[vec![1.0]], &[0], 0).is_err());
        assert!(KnnClassifier::fit(&[vec![1.0]], &[0, 1], 1).is_err());
        let knn = KnnClassifier::fit(&[vec![1.0, 2.0]], &[0], 1).unwrap();
        assert!(knn.predict_with_evidence(&[1.0]).is_err());
        let mut knn = knn;
        assert!(knn.insert(vec![1.0], 0).is_err());
    }

    #[test]
    fn rejects_non_finite_inputs_with_typed_errors() {
        assert!(matches!(
            KnnClassifier::fit(&[vec![f64::NAN]], &[0], 1),
            Err(MlError::InvalidTrainingData(_))
        ));
        let (xs, ys) = two_blobs();
        let mut knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert!(matches!(
            knn.insert(vec![1.0, f64::INFINITY], 0),
            Err(MlError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            knn.predict_with_evidence(&[f64::NAN, 0.0]),
            Err(MlError::Numerical(_))
        ));
    }

    #[test]
    fn partial_select_matches_full_sort_oracle() {
        // Oracle: the historical implementation — full sort of exact
        // euclidean distances with the (distance, index) tie-break.
        let dims = 22;
        let n = 257;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dims)
                    .map(|d| {
                        let jitter = (((i * 31 + d * 7) % 97) as f64 / 97.0 - 0.5) * 0.4;
                        (i % 3) as f64 * 2.0 + (d % 5) as f64 * 0.1 + jitter
                    })
                    .collect()
            })
            .collect();
        let ys: Vec<usize> = (0..n).map(|i| i % 3).collect();
        for k in [1, 3, 7] {
            let knn = KnnClassifier::fit(&xs, &ys, k).unwrap();
            for qi in 0..8 {
                let q: Vec<f64> = (0..dims)
                    .map(|d| (qi % 3) as f64 * 2.0 + (d % 5) as f64 * 0.1 + 0.03 * qi as f64)
                    .collect();
                let got = knn.predict_with_evidence(&q).unwrap();

                let mut dists: Vec<(f64, usize)> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (crate::linalg::euclidean(e, &q), i))
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let neighbours = &dists[..k];
                let mut votes: std::collections::HashMap<usize, (usize, f64)> =
                    std::collections::HashMap::new();
                for &(d, idx) in neighbours {
                    let entry = votes.entry(ys[idx]).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += d;
                }
                let (&label, _) = votes
                    .iter()
                    .max_by(|(_, (ca, da)), (_, (cb, db))| {
                        ca.cmp(cb).then_with(|| db.total_cmp(da))
                    })
                    .unwrap();

                assert_eq!(got.label, label, "winner k={k} q={qi}");
                assert_eq!(got.nearest_index, neighbours[0].1, "index k={k} q={qi}");
                assert_eq!(
                    got.nearest_distance.to_bits(),
                    neighbours[0].0.to_bits(),
                    "distance bits k={k} q={qi}"
                );
            }
        }
    }

    #[test]
    fn classifier_trait_metadata() {
        let (xs, ys) = two_blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3).unwrap();
        assert_eq!(knn.dims(), 2);
        assert_eq!(knn.name(), "KNN");
    }
}
