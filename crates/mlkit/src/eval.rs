//! Classifier and regressor evaluation: accuracy, confusion matrices and
//! error metrics used throughout the reproduction (Table 5, Fig. 17).

use serde::{Deserialize, Serialize};

/// Classification accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "accuracy of empty predictions");
    let hits = predicted
        .iter()
        .zip(actual.iter())
        .filter(|(p, a)| p == a)
        .count();
    hits as f64 / predicted.len() as f64
}

/// Mean absolute percentage error of predictions against observations,
/// in percent. Observations of zero are skipped.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "MAPE of empty predictions");
    let mut total = 0.0;
    let mut n = 0;
    for (&p, &a) in predicted.iter().zip(actual.iter()) {
        if a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64 * 100.0
    }
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "RMSE of empty predictions");
    let mse = predicted
        .iter()
        .zip(actual.iter())
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R². Returns 1 for a perfect fit, and can be
/// negative for fits worse than the mean. When the observations have zero
/// variance, returns 1 if the predictions are exact and 0 otherwise.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "R² of empty predictions");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Per-class F1 score: the harmonic mean of precision and recall, zero
/// when both are zero.
///
/// # Panics
///
/// Panics if lengths differ or labels exceed `classes`.
#[must_use]
pub fn f1_score(predicted: &[usize], actual: &[usize], classes: usize, class: usize) -> f64 {
    let cm = ConfusionMatrix::from_predictions(predicted, actual, classes);
    let p = cm.precision(class);
    let r = cm.recall(class);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Macro-averaged F1 over all classes (unweighted mean of per-class F1).
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or labels exceed `classes`.
#[must_use]
pub fn macro_f1(predicted: &[usize], actual: &[usize], classes: usize) -> f64 {
    assert!(classes > 0, "need at least one class");
    (0..classes)
        .map(|c| f1_score(predicted, actual, classes, c))
        .sum::<f64>()
        / classes as f64
}

/// A square confusion matrix for multi-class classification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix over `classes` classes from parallel
    /// prediction/actual slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is `>= classes`.
    #[must_use]
    pub fn from_predictions(predicted: &[usize], actual: &[usize], classes: usize) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut counts = vec![0u64; classes * classes];
        for (&p, &a) in predicted.iter().zip(actual.iter()) {
            assert!(p < classes && a < classes, "label out of range");
            counts[a * classes + p] += 1;
        }
        ConfusionMatrix { classes, counts }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range labels.
    #[must_use]
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        assert!(actual < self.classes && predicted < self.classes);
        self.counts[actual * self.classes + predicted]
    }

    /// Overall accuracy (trace over total). Zero for an empty matrix.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let trace: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        trace as f64 / total as f64
    }

    /// Recall of a single class; zero when the class has no samples.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn recall(&self, class: usize) -> f64 {
        assert!(class < self.classes);
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / row as f64
        }
    }

    /// Precision of a single class; zero when nothing was predicted as it.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn precision(&self, class: usize) -> f64 {
        assert!(class < self.classes);
        let col: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if col == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / col as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 0], &[0, 1, 1, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn mape_known_value() {
        // |10-8|/8 = 25 %, |20-25|/25 = 20 % -> mean 22.5 %.
        let m = mape(&[10.0, 20.0], &[8.0, 25.0]);
        assert!((m - 22.5).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        assert_eq!(mape(&[1.0, 5.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let e = rmse(&[1.0, 2.0], &[1.0, 4.0]);
        assert!((e - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean_fit() {
        let actual = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&actual, &actual), 1.0);
        assert_eq!(r_squared(&[2.0, 2.0, 2.0], &actual), 0.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts_and_metrics() {
        let predicted = [0, 0, 1, 1, 2, 1];
        let actual = [0, 1, 1, 1, 2, 2];
        let cm = ConfusionMatrix::from_predictions(&predicted, &actual, 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(2, 1), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(0), 1.0);
    }

    #[test]
    fn f1_harmonic_mean_of_precision_recall() {
        // Class 1: precision 2/3, recall 2/3 → F1 = 2/3.
        let predicted = [0, 0, 1, 1, 2, 1];
        let actual = [0, 1, 1, 1, 2, 2];
        let f1 = f1_score(&predicted, &actual, 3, 1);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
        // Perfect prediction → macro F1 = 1.
        assert_eq!(macro_f1(&actual, &actual, 3), 1.0);
    }

    #[test]
    fn f1_of_never_predicted_class_is_zero() {
        let predicted = [0, 0, 0];
        let actual = [0, 1, 1];
        assert_eq!(f1_score(&predicted, &actual, 2, 1), 0.0);
        assert!(macro_f1(&predicted, &actual, 2) < 0.5);
    }

    #[test]
    fn empty_confusion_matrix_accuracy_zero() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(0), 0.0);
        assert_eq!(cm.precision(2), 0.0);
    }
}
