//! Principal Component Analysis (paper §3.2, "Feature Reduction").
//!
//! The paper reduces 22 scaled raw features with PCA and keeps the top
//! principal components that explain 95 % of the variance (five, in their
//! setting — Fig. 4a). The fitted transformation matrix is stored and used
//! to project features of unseen applications at runtime.

use crate::kernels;
use crate::linalg::Matrix;
use crate::MlError;
use serde::{Deserialize, Serialize};

/// A fitted PCA transform.
///
/// # Examples
///
/// ```
/// use mlkit::pca::Pca;
/// // Data that varies almost entirely along the (1, 1) direction.
/// let data: Vec<Vec<f64>> = (0..32)
///     .map(|i| {
///         let t = i as f64 / 4.0;
///         vec![t + 0.01 * (i % 3) as f64, t]
///     })
///     .collect();
/// let pca = Pca::fit(&data, 1)?;
/// assert_eq!(pca.components(), 1);
/// assert!(pca.explained_variance_ratio()[0] > 0.99);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    means: Vec<f64>,
    /// Row `i` is the i-th principal axis (unit vector in feature space).
    axes: Matrix,
    /// `axes` transposed (`input_dims × components`), precomputed at
    /// construction so [`Pca::transform_matrix`] can feed the vectorized
    /// [`kernels::matmul_dense`] without a per-call transpose. Pure data
    /// movement from `axes` — no arithmetic, so nothing to drift.
    axes_t: Matrix,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

/// Builds the final struct, deriving the transposed projection from
/// `axes`: the one place the `axes`/`axes_t` pair is assembled.
fn assemble(means: Vec<f64>, axes: Matrix, eigenvalues: Vec<f64>, total_variance: f64) -> Pca {
    let axes_t = axes.transpose();
    Pca {
        means,
        axes,
        axes_t,
        eigenvalues,
        total_variance,
    }
}

impl Pca {
    /// Fits a PCA keeping `components` principal axes.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if `data` is empty, ragged,
    /// or `components` is zero or exceeds the feature count, and
    /// [`MlError::Numerical`] if the eigensolver fails.
    pub fn fit(data: &[Vec<f64>], components: usize) -> Result<Self, MlError> {
        let first = data
            .first()
            .ok_or_else(|| MlError::InvalidTrainingData("empty training set".into()))?;
        let dims = first.len();
        if components == 0 || components > dims {
            return Err(MlError::InvalidTrainingData(format!(
                "components must be in 1..={dims}, got {components}"
            )));
        }
        if data.iter().any(|r| r.len() != dims) {
            return Err(MlError::InvalidTrainingData("ragged rows".into()));
        }
        let m = Matrix::from_rows(data.to_vec());
        let means = m.column_means();
        let cov = m.covariance();
        let (eigenvalues, vectors) = cov.symmetric_eigen()?;
        let total_variance: f64 = eigenvalues.iter().map(|&v| v.max(0.0)).sum();

        // Keep the top `components` eigenvectors as rows of the projection.
        let mut axes = Matrix::zeros(components, dims);
        for pc in 0..components {
            for d in 0..dims {
                axes.set(pc, d, vectors.get(d, pc));
            }
        }
        Ok(assemble(
            means,
            axes,
            eigenvalues.into_iter().take(components).collect(),
            total_variance,
        ))
    }

    /// Fits a PCA keeping the smallest number of components whose
    /// cumulative explained variance reaches `target` (e.g. `0.95`), the
    /// paper's selection rule.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit`]; additionally rejects targets
    /// outside `(0, 1]`.
    pub fn fit_for_variance(data: &[Vec<f64>], target: f64) -> Result<Self, MlError> {
        if !(0.0..=1.0).contains(&target) || target == 0.0 {
            return Err(MlError::InvalidTrainingData(format!(
                "variance target must be in (0, 1], got {target}"
            )));
        }
        let dims = data
            .first()
            .ok_or_else(|| MlError::InvalidTrainingData("empty training set".into()))?
            .len();
        let full = Pca::fit(data, dims)?;
        let ratios = full.explained_variance_ratio();
        let mut cumulative = 0.0;
        let mut k = dims;
        for (i, r) in ratios.iter().enumerate() {
            cumulative += r;
            if cumulative >= target {
                k = i + 1;
                break;
            }
        }
        // Truncate the full fit rather than refitting: a `Pca::fit(data, k)`
        // would recompute the identical covariance and eigendecomposition
        // and keep the first `k` axes — so slicing the full fit's fields is
        // bitwise the same result at half the cost.
        Ok(full.truncated(k))
    }

    /// Keeps only the first `k` principal axes of an already-fitted PCA.
    /// Equivalent, bit for bit, to refitting with `components = k`.
    fn truncated(self, k: usize) -> Self {
        if k >= self.components() {
            return self;
        }
        let axes = Matrix::from_rows((0..k).map(|pc| self.axes.row(pc).to_vec()).collect());
        assemble(
            self.means,
            axes,
            self.eigenvalues.into_iter().take(k).collect(),
            self.total_variance,
        )
    }

    /// Number of principal components kept.
    #[must_use]
    pub fn components(&self) -> usize {
        self.axes.rows()
    }

    /// Per-feature training means subtracted before projection.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Total variance of the training data (sum of all non-negative
    /// eigenvalues, kept and discarded alike).
    #[must_use]
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Reassembles a fitted PCA from its serialized fields (the model
    /// artifact load path).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] on inconsistent shapes or
    /// non-finite values.
    pub fn from_parts(
        means: Vec<f64>,
        axes: Matrix,
        eigenvalues: Vec<f64>,
        total_variance: f64,
    ) -> Result<Self, MlError> {
        if axes.rows() == 0 || axes.cols() == 0 {
            return Err(MlError::InvalidTrainingData(
                "projection matrix must be non-empty".into(),
            ));
        }
        if means.len() != axes.cols() || eigenvalues.len() != axes.rows() {
            return Err(MlError::InvalidTrainingData(
                "means/axes/eigenvalue shapes disagree".into(),
            ));
        }
        if means.iter().any(|v| !v.is_finite())
            || axes.data().iter().any(|v| !v.is_finite())
            || eigenvalues.iter().any(|v| !v.is_finite())
            || !total_variance.is_finite()
        {
            return Err(MlError::InvalidTrainingData(
                "non-finite value in PCA fields".into(),
            ));
        }
        Ok(assemble(means, axes, eigenvalues, total_variance))
    }

    /// Dimensionality of the original feature space.
    #[must_use]
    pub fn input_dims(&self) -> usize {
        self.axes.cols()
    }

    /// The projection matrix entries, components × input dims, row-major
    /// (the model artifact save path).
    #[must_use]
    pub fn axes_data(&self) -> &[f64] {
        self.axes.data()
    }

    /// Eigenvalues (variances) of the kept components, descending.
    #[must_use]
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each kept component.
    #[must_use]
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.components()];
        }
        self.eigenvalues
            .iter()
            .map(|&v| v.max(0.0) / self.total_variance)
            .collect()
    }

    /// The loading of raw feature `feature` on component `pc`
    /// (the entry of the principal axis).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn loading(&self, pc: usize, feature: usize) -> f64 {
        self.axes.get(pc, feature)
    }

    /// The loading matrix: `components × input_dims`, each row a unit
    /// principal axis.
    #[must_use]
    pub fn loadings(&self) -> &Matrix {
        &self.axes
    }

    /// Projects one sample into PC space.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.input_dims() {
            return Err(MlError::DimensionMismatch {
                expected: self.input_dims(),
                actual: x.len(),
            });
        }
        // Fused centering + projection: bitwise what materialising the
        // centered temporary and calling `matvec` produced.
        self.axes.matvec_sub(x, &self.means)
    }

    /// Projects a batch of samples.
    ///
    /// # Errors
    ///
    /// Returns the first per-row error encountered.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        data.iter().map(|row| self.transform(row)).collect()
    }

    /// Projects `rows` samples supplied flat row-major
    /// (`rows × input_dims`) in one whole-matrix call, returning the
    /// `rows × components` projections flat row-major.
    ///
    /// The samples are centered (`v − mean`, the same subtraction
    /// [`kernels::matvec_sub`] fuses) and multiplied against the
    /// precomputed transposed loading matrix in one fused call to the
    /// vectorized [`kernels::matmul_dense_sub`]. Each output element is the same
    /// `c`-ascending multiply-add chain as the scalar [`Pca::transform`]
    /// (matmul_dense and matmul_pretransposed are pinned bitwise equal by
    /// the kernel property tests); the kernel accumulates from `+0.0`
    /// where `f64::sum` folds from `-0.0`, so a projected value can
    /// differ from the scalar path only in the sign of an exact zero, and
    /// only when every product in its chain is `-0.0`. Downstream
    /// consumers that square or subtract the projection (the KNN selector
    /// does both) are bitwise unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data.len()` is not
    /// `rows × input_dims`.
    pub fn transform_matrix(&self, rows: usize, data: &[f64]) -> Result<Vec<f64>, MlError> {
        let dims = self.input_dims();
        if data.len() != rows * dims {
            return Err(MlError::DimensionMismatch {
                expected: rows * dims,
                actual: data.len(),
            });
        }
        let comps = self.components();
        let mut out = vec![0.0; rows * comps];
        // The fused kernel centers each sample by `means` on the fly, so
        // no `rows × dims` centered intermediate is ever written — one
        // less allocation plus a full write+read pass saved per call.
        kernels::matmul_dense_sub(
            rows,
            dims,
            comps,
            data,
            &self.means,
            self.axes_t.data(),
            &mut out,
        );
        Ok(out)
    }

    /// Maps a PC-space vector back into (approximate) feature space.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn inverse_transform(&self, z: &[f64]) -> Result<Vec<f64>, MlError> {
        if z.len() != self.components() {
            return Err(MlError::DimensionMismatch {
                expected: self.components(),
                actual: z.len(),
            });
        }
        let back = self.axes.transpose().matvec(z)?;
        Ok(back
            .iter()
            .zip(self.means.iter())
            .map(|(v, m)| v + m)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 3-feature data where feature 0 dominates variance,
    /// feature 1 is correlated with it and feature 2 is nearly constant.
    fn sample_data() -> Vec<Vec<f64>> {
        (0..40)
            .map(|i| {
                let t = i as f64;
                vec![
                    t,
                    0.5 * t + ((i * 7) % 5) as f64 * 0.1,
                    0.01 * ((i * 3) % 4) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn components_ordered_by_variance() {
        let pca = Pca::fit(&sample_data(), 3).unwrap();
        let e = pca.eigenvalues();
        assert!(e[0] >= e[1] && e[1] >= e[2]);
    }

    #[test]
    fn explained_variance_sums_to_one_when_full_rank() {
        let pca = Pca::fit(&sample_data(), 3).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variance_target_selects_few_components() {
        let pca = Pca::fit_for_variance(&sample_data(), 0.95).unwrap();
        assert!(pca.components() <= 2, "strongly correlated data compresses");
    }

    #[test]
    fn transform_then_inverse_approximates_input() {
        let data = sample_data();
        let pca = Pca::fit(&data, 3).unwrap();
        for row in data.iter().take(5) {
            let z = pca.transform(row).unwrap();
            let back = pca.inverse_transform(&z).unwrap();
            for (a, b) in row.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-9, "full-rank PCA is lossless");
            }
        }
    }

    #[test]
    fn transform_centers_training_mean_to_origin() {
        let data = sample_data();
        let pca = Pca::fit(&data, 2).unwrap();
        let n = data.len() as f64;
        let dims = data[0].len();
        let mean: Vec<f64> = (0..dims)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n)
            .collect();
        let z = pca.transform(&mean).unwrap();
        assert!(z.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn variance_fit_matches_direct_fit_bitwise() {
        // fit_for_variance truncates the full-rank fit; the result must be
        // bit-identical to refitting at the selected component count.
        let data = sample_data();
        let auto = Pca::fit_for_variance(&data, 0.95).unwrap();
        let direct = Pca::fit(&data, auto.components()).unwrap();
        assert_eq!(auto.components(), direct.components());
        for (a, b) in auto.eigenvalues().iter().zip(direct.eigenvalues()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for pc in 0..auto.components() {
            for d in 0..data[0].len() {
                assert_eq!(
                    auto.loading(pc, d).to_bits(),
                    direct.loading(pc, d).to_bits()
                );
            }
        }
        let z_auto = auto.transform(&data[3]).unwrap();
        let z_direct = direct.transform(&data[3]).unwrap();
        for (a, b) in z_auto.iter().zip(z_direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transform_matrix_matches_scalar_bitwise() {
        let data = sample_data();
        let pca = Pca::fit(&data, 2).unwrap();
        for rows in [1usize, 7, 40] {
            let flat: Vec<f64> = data.iter().take(rows).flatten().copied().collect();
            let got = pca.transform_matrix(rows, &flat).unwrap();
            for (r, row) in data.iter().take(rows).enumerate() {
                let want = pca.transform(row).unwrap();
                for (c, w) in want.iter().enumerate() {
                    assert_eq!(
                        got[r * pca.components() + c].to_bits(),
                        w.to_bits(),
                        "rows={rows} r={r} c={c}"
                    );
                }
            }
        }
        assert!(pca.transform_matrix(2, &[1.0]).is_err());
    }

    #[test]
    fn from_parts_round_trips_bitwise() {
        let data = sample_data();
        let pca = Pca::fit(&data, 2).unwrap();
        let rebuilt = Pca::from_parts(
            pca.means().to_vec(),
            pca.loadings().clone(),
            pca.eigenvalues().to_vec(),
            pca.total_variance(),
        )
        .unwrap();
        let a = pca.transform(&data[5]).unwrap();
        let b = rebuilt.transform(&data[5]).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(Pca::from_parts(vec![0.0], pca.loadings().clone(), vec![1.0, 1.0], 2.0).is_err());
        assert!(Pca::from_parts(
            pca.means().to_vec(),
            pca.loadings().clone(),
            vec![f64::NAN, 1.0],
            2.0
        )
        .is_err());
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(Pca::fit(&[], 1).is_err());
        assert!(Pca::fit(&sample_data(), 0).is_err());
        assert!(Pca::fit(&sample_data(), 4).is_err());
        assert!(Pca::fit_for_variance(&sample_data(), 0.0).is_err());
        assert!(Pca::fit_for_variance(&sample_data(), 1.5).is_err());
    }

    #[test]
    fn transform_rejects_wrong_dims() {
        let pca = Pca::fit(&sample_data(), 2).unwrap();
        assert!(matches!(
            pca.transform(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            pca.inverse_transform(&[1.0, 2.0, 3.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
