//! Gaussian naive Bayes — one of the Table 5 alternative expert selectors.

use crate::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// Per-class Gaussian parameters for each feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassModel {
    prior_ln: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

/// A fitted Gaussian naive Bayes classifier.
///
/// Features are modelled as independent normals per class; variances are
/// floored at a small epsilon so constant features do not produce
/// degenerate likelihoods.
///
/// # Examples
///
/// ```
/// use mlkit::naive_bayes::GaussianNb;
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0], vec![0.2], vec![4.0], vec![4.1]];
/// let ys = vec![0, 0, 1, 1];
/// let nb = GaussianNb::fit(&xs, &ys)?;
/// assert_eq!(nb.predict(&[0.1]), 0);
/// assert_eq!(nb.predict(&[4.3]), 1);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNb {
    classes: Vec<ClassModel>,
    dims: usize,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fits class priors and per-feature Gaussians.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs or
    /// a label/feature length mismatch.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize]) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let n = xs.len() as f64;

        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let members: Vec<&Vec<f64>> = xs
                .iter()
                .zip(ys.iter())
                .filter(|(_, &y)| y == c)
                .map(|(x, _)| x)
                .collect();
            if members.is_empty() {
                // A class index with no samples: give it a vanishing prior
                // so it can never win, but keep indices aligned.
                classes.push(ClassModel {
                    prior_ln: f64::NEG_INFINITY,
                    means: vec![0.0; dims],
                    variances: vec![1.0; dims],
                });
                continue;
            }
            let m = members.len() as f64;
            let mut means = vec![0.0; dims];
            for x in &members {
                for (d, v) in x.iter().enumerate() {
                    means[d] += v;
                }
            }
            for mu in &mut means {
                *mu /= m;
            }
            let mut variances = vec![0.0; dims];
            for x in &members {
                for (d, v) in x.iter().enumerate() {
                    variances[d] += (v - means[d]) * (v - means[d]);
                }
            }
            for var in &mut variances {
                *var = (*var / m).max(VAR_FLOOR);
            }
            classes.push(ClassModel {
                prior_ln: (m / n).ln(),
                means,
                variances,
            });
        }
        Ok(GaussianNb { classes, dims })
    }

    /// Log joint likelihood of `x` under class `c` (up to a constant).
    fn log_likelihood(&self, c: usize, x: &[f64]) -> f64 {
        let model = &self.classes[c];
        let mut ll = model.prior_ln;
        for ((&xi, &mean), &var) in x.iter().zip(&model.means).zip(&model.variances) {
            let diff = xi - mean;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        ll
    }

    /// Predicts a label, returning an error rather than panicking on bad
    /// dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn try_predict(&self, x: &[f64]) -> Result<usize, MlError> {
        if x.len() != self.dims {
            return Err(MlError::DimensionMismatch {
                expected: self.dims,
                actual: x.len(),
            });
        }
        // `fit` guarantees at least one class; `total_cmp` matches
        // `partial_cmp` on finite log-likelihoods and never panics.
        Ok((0..self.classes.len())
            .max_by(|&a, &b| {
                self.log_likelihood(a, x)
                    .total_cmp(&self.log_likelihood(b, x))
            })
            .unwrap_or(0))
    }
}

impl Classifier for GaussianNb {
    fn predict(&self, x: &[f64]) -> usize {
        self.try_predict(x)
            .expect("dimension mismatch in GaussianNb predict")
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "Naive Bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_blobs_classified() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.05;
            xs.push(vec![jitter, -jitter]);
            ys.push(0);
            xs.push(vec![3.0 + jitter, 3.0 - jitter]);
            ys.push(1);
        }
        let nb = GaussianNb::fit(&xs, &ys).unwrap();
        assert_eq!(nb.predict(&[0.1, 0.0]), 0);
        assert_eq!(nb.predict(&[3.1, 2.9]), 1);
    }

    #[test]
    fn priors_break_ties_in_overlap() {
        // Class 1 has 3x the samples at the same location.
        let xs = vec![vec![0.0], vec![0.0], vec![0.0], vec![0.0]];
        let ys = vec![0, 1, 1, 1];
        let nb = GaussianNb::fit(&xs, &ys).unwrap();
        assert_eq!(nb.predict(&[0.0]), 1);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let xs = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 10.0],
            vec![1.0, 11.0],
        ];
        let ys = vec![0, 0, 1, 1];
        let nb = GaussianNb::fit(&xs, &ys).unwrap();
        assert_eq!(nb.predict(&[1.0, 0.5]), 0);
        assert_eq!(nb.predict(&[1.0, 10.5]), 1);
    }

    #[test]
    fn missing_class_index_never_wins() {
        // Labels 0 and 2 only; class 1 has no samples.
        let xs = vec![vec![0.0], vec![5.0]];
        let ys = vec![0, 2];
        let nb = GaussianNb::fit(&xs, &ys).unwrap();
        assert_ne!(nb.predict(&[2.5]), 1);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(GaussianNb::fit(&[], &[]).is_err());
        assert!(GaussianNb::fit(&[vec![1.0]], &[0, 1]).is_err());
        let nb = GaussianNb::fit(&[vec![1.0, 2.0]], &[0]).unwrap();
        assert!(nb.try_predict(&[1.0]).is_err());
    }

    #[test]
    fn trait_metadata() {
        let nb = GaussianNb::fit(&[vec![0.0], vec![1.0]], &[0, 1]).unwrap();
        assert_eq!(nb.dims(), 1);
        assert_eq!(nb.name(), "Naive Bayes");
    }
}
