//! Truncated singular value decomposition via power iteration with
//! deflation — the machinery behind Quasar-style collaborative filtering:
//! reconstruct an application's full resource profile from a few observed
//! entries using a low-rank basis learned from historical workloads.

use crate::linalg::Matrix;
use crate::MlError;

/// A truncated SVD: `A ≈ U · diag(S) · Vᵀ` with `k` components.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `rows × k` (one row per data row).
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors, `cols × k` (one row per data column).
    pub v: Matrix,
}

/// Computes the top-`k` singular triplets of `a` (power iteration on
/// `AᵀA` with Gram–Schmidt deflation; suitable for the small dense
/// matrices of this crate).
///
/// # Errors
///
/// Returns [`MlError::InvalidTrainingData`] when `k` is zero or exceeds
/// `min(rows, cols)`, and [`MlError::Numerical`] if iteration collapses
/// (e.g. a zero matrix).
pub fn truncated_svd(a: &Matrix, k: usize, iterations: usize) -> Result<TruncatedSvd, MlError> {
    let (n, m) = (a.rows(), a.cols());
    if k == 0 || k > n.min(m) {
        return Err(MlError::InvalidTrainingData(format!(
            "k must be in 1..={}, got {k}",
            n.min(m)
        )));
    }

    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut sigmas = Vec::with_capacity(k);
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(k);

    for comp in 0..k {
        // Deterministic start vector, decorrelated per component.
        let mut v: Vec<f64> = (0..m)
            .map(|j| 1.0 + ((j * 31 + comp * 17) % 7) as f64 * 0.1)
            .collect();
        orthogonalize(&mut v, &vs);
        if normalize(&mut v) < 1e-300 {
            return Err(MlError::Numerical("degenerate start vector".into()));
        }

        for _ in 0..iterations {
            // w = Aᵀ (A v), accumulated row-wise over the flat backing
            // store. The `avi == 0.0` skip is kept deliberately: dropping
            // it would change this reduction's float sequence (and with it
            // committed Quasar outputs) — unlike `matmul`, `Av` entries
            // are finite here, so the skip has no NaN/∞ hazard.
            let av = a.matvec(&v)?;
            let mut w = vec![0.0; m];
            for (i, &avi) in av.iter().enumerate() {
                if avi == 0.0 {
                    continue;
                }
                let arow = a.row(i);
                for (wj, &aij) in w.iter_mut().zip(arow.iter()) {
                    *wj += aij * avi;
                }
            }
            orthogonalize(&mut w, &vs);
            if normalize(&mut w) < 1e-300 {
                break;
            }
            v = w;
        }

        let av = a.matvec(&v)?;
        let sigma = av.iter().map(|x| x * x).sum::<f64>().sqrt();
        if sigma < 1e-12 {
            // Remaining spectrum is numerically zero; truncate here.
            break;
        }
        let u: Vec<f64> = av.iter().map(|x| x / sigma).collect();
        vs.push(v.clone());
        sigmas.push(sigma);
        us.push(u);
    }

    if sigmas.is_empty() {
        return Err(MlError::Numerical(
            "matrix has no numerically nonzero singular values".into(),
        ));
    }
    let kept = sigmas.len();
    let mut u = Matrix::zeros(n, kept);
    let mut v = Matrix::zeros(m, kept);
    for c in 0..kept {
        for (i, &ui) in us[c].iter().enumerate() {
            u.set(i, c, ui);
        }
        for (j, &vj) in vs[c].iter().enumerate() {
            v.set(j, c, vj);
        }
    }
    Ok(TruncatedSvd { u, s: sigmas, v })
}

impl TruncatedSvd {
    /// Number of components kept.
    #[must_use]
    pub fn components(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs a full row from a few observed entries: finds the
    /// least-squares coefficients over the observed columns of the
    /// `V·diag(S)` basis, then expands to every column. This is the
    /// collaborative-filtering step: the basis encodes how historical
    /// rows co-vary, so a handful of measurements pins down the rest.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when no observations are
    /// given or a column index is out of range, and [`MlError::Numerical`]
    /// when the observed columns cannot determine the coefficients.
    pub fn complete_row(&self, observed: &[(usize, f64)]) -> Result<Vec<f64>, MlError> {
        if observed.is_empty() {
            return Err(MlError::InvalidTrainingData(
                "need at least one observed entry".into(),
            ));
        }
        let m = self.v.rows();
        if observed.iter().any(|&(j, _)| j >= m) {
            return Err(MlError::InvalidTrainingData(
                "observed column out of range".into(),
            ));
        }
        // Use at most as many components as observations so the system is
        // determined.
        let k = self.components().min(observed.len());

        // Normal equations over the observed rows of B = V·diag(S).
        let mut ata = Matrix::zeros(k, k);
        let mut aty = vec![0.0; k];
        for &(j, y) in observed {
            let row: Vec<f64> = (0..k).map(|c| self.v.get(j, c) * self.s[c]).collect();
            for p in 0..k {
                for q in 0..k {
                    ata.set(p, q, ata.get(p, q) + row[p] * row[q]);
                }
                aty[p] += row[p] * y;
            }
        }
        // Ridge for stability.
        for p in 0..k {
            ata.set(p, p, ata.get(p, p) + 1e-9);
        }
        let coeffs = solve_small(&ata, &aty)?;

        Ok((0..m)
            .map(|j| {
                (0..k)
                    .map(|c| self.v.get(j, c) * self.s[c] * coeffs[c])
                    .sum()
            })
            .collect())
    }
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        for (vi, bi) in v.iter_mut().zip(b.iter()) {
            *vi -= dot * bi;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Gaussian elimination with partial pivoting for tiny systems.
fn solve_small(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MlError> {
    let n = a.rows();
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot. `col..n` is non-empty (col < n) and `total_cmp` keeps the
        // selection panic-free even when elimination produced a NaN.
        let pivot = (col..n)
            .max_by(|&r1, &r2| m.get(r1, col).abs().total_cmp(&m.get(r2, col).abs()))
            .unwrap_or(col);
        let pivot_mag = m.get(pivot, col).abs();
        if !pivot_mag.is_finite() {
            return Err(MlError::Numerical("non-finite pivot".into()));
        }
        if pivot_mag < 1e-300 {
            return Err(MlError::Numerical("singular system".into()));
        }
        if pivot != col {
            for j in 0..n {
                let tmp = m.get(col, j);
                m.set(col, j, m.get(pivot, j));
                m.set(pivot, j, tmp);
            }
            rhs.swap(col, pivot);
        }
        for row in (col + 1)..n {
            let factor = m.get(row, col) / m.get(col, col);
            for j in col..n {
                m.set(row, j, m.get(row, j) - factor * m.get(col, j));
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for (j, &xj) in x.iter().enumerate().skip(row + 1) {
            acc -= m.get(row, j) * xj;
        }
        x[row] = acc / m.get(row, row);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_rank_one_structure() {
        // A = u vᵀ exactly.
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_rows(
            u.iter()
                .map(|&ui| v.iter().map(|&vj| ui * vj).collect())
                .collect(),
        );
        let svd = truncated_svd(&a, 1, 100).unwrap();
        assert_eq!(svd.components(), 1);
        // σ = |u| · |v|
        let expected = (14.0f64).sqrt() * (41.0f64).sqrt();
        assert!((svd.s[0] - expected).abs() < 1e-9, "sigma {}", svd.s[0]);
    }

    #[test]
    fn singular_values_are_descending() {
        let a = Matrix::from_rows(vec![
            vec![3.0, 1.0, 0.5],
            vec![1.0, 2.0, 0.2],
            vec![0.5, 0.2, 1.0],
            vec![2.0, 0.1, 0.9],
        ]);
        let svd = truncated_svd(&a, 3, 200).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn low_rank_reconstruction_is_accurate() {
        // Rank-2 matrix: rows are combinations of two patterns.
        let p1 = [1.0, 2.0, 3.0, 4.0];
        let p2 = [1.0, 0.5, 0.25, 0.125];
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let (a, b) = (1.0 + i as f64 * 0.5, 2.0 - i as f64 * 0.25);
                p1.iter()
                    .zip(p2.iter())
                    .map(|(x, y)| a * x + b * y)
                    .collect()
            })
            .collect();
        let a = Matrix::from_rows(rows.clone());
        let svd = truncated_svd(&a, 2, 300).unwrap();
        // Reconstruct A from the decomposition and compare.
        for (i, row) in rows.iter().enumerate() {
            for (j, &val) in row.iter().enumerate() {
                let approx: f64 = (0..2)
                    .map(|c| svd.u.get(i, c) * svd.s[c] * svd.v.get(j, c))
                    .sum();
                assert!((approx - val).abs() < 1e-6, "({i},{j}): {approx} vs {val}");
            }
        }
    }

    #[test]
    fn completes_rows_from_two_observations() {
        // Same rank-2 family; a new row with only 2 observed entries.
        let p1 = [1.0, 2.0, 3.0, 4.0];
        let p2 = [1.0, 0.5, 0.25, 0.125];
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let (a, b) = (1.0 + i as f64 * 0.5, 2.0 - i as f64 * 0.25);
                p1.iter()
                    .zip(p2.iter())
                    .map(|(x, y)| a * x + b * y)
                    .collect()
            })
            .collect();
        let svd = truncated_svd(&Matrix::from_rows(rows), 2, 300).unwrap();
        // The unseen row uses (a, b) = (2.2, 0.7).
        let truth: Vec<f64> = p1
            .iter()
            .zip(p2.iter())
            .map(|(x, y)| 2.2 * x + 0.7 * y)
            .collect();
        let completed = svd.complete_row(&[(0, truth[0]), (3, truth[3])]).unwrap();
        for (got, want) in completed.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(truncated_svd(&a, 0, 10).is_err());
        assert!(truncated_svd(&a, 3, 10).is_err());
        let svd = truncated_svd(&a, 1, 50).unwrap();
        assert!(svd.complete_row(&[]).is_err());
        assert!(svd.complete_row(&[(9, 1.0)]).is_err());
    }

    #[test]
    fn zero_matrix_is_an_error() {
        let a = Matrix::zeros(3, 3);
        assert!(truncated_svd(&a, 1, 20).is_err());
    }
}
