//! Labeled datasets and cross-validation splits.
//!
//! The paper validates its expert selector with leave-one-out
//! cross-validation over the training benchmarks (§5.2), additionally
//! excluding equivalent implementations of the held-out benchmark from
//! other suites. [`Dataset`] provides the plumbing: index-based splits so
//! callers can implement arbitrary exclusion rules.

use crate::MlError;

/// A labeled dataset: dense feature rows plus integer class labels.
///
/// # Examples
///
/// ```
/// use mlkit::dataset::Dataset;
/// let ds = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 1, 0])?;
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds.classes(), 2);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    dims: usize,
}

impl Dataset {
    /// Builds a dataset from parallel feature and label vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if the inputs are empty,
    /// lengths differ, or rows are ragged.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Self, MlError> {
        if features.is_empty() {
            return Err(MlError::InvalidTrainingData("empty dataset".into()));
        }
        if features.len() != labels.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let dims = features[0].len();
        if dims == 0 || features.iter().any(|r| r.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        Ok(Dataset {
            features,
            labels,
            dims,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples (never true for a
    /// constructed `Dataset`, but part of the conventional pair with
    /// [`Dataset::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of distinct classes (`max label + 1`).
    #[must_use]
    pub fn classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// The feature rows.
    #[must_use]
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns `(features, labels)` for the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs = indices.iter().map(|&i| self.features[i].clone()).collect();
        let ys = indices.iter().map(|&i| self.labels[i]).collect();
        (xs, ys)
    }

    /// Yields `(train_indices, test_index)` pairs for leave-one-out
    /// cross-validation, optionally excluding extra indices from each
    /// training fold via `also_exclude(test_index)` (the paper removes
    /// equivalent benchmarks from other suites, §5.2).
    pub fn leave_one_out<F>(&self, mut also_exclude: F) -> Vec<(Vec<usize>, usize)>
    where
        F: FnMut(usize) -> Vec<usize>,
    {
        // A reused boolean mask instead of a per-fold hash set: the train
        // list is built by one ascending scan, so fold contents and order
        // are unchanged.
        let mut excluded = vec![false; self.len()];
        (0..self.len())
            .map(|test| {
                excluded.fill(false);
                for i in also_exclude(test) {
                    if i < excluded.len() {
                        excluded[i] = true;
                    }
                }
                excluded[test] = true;
                let train: Vec<usize> = (0..self.len()).filter(|&i| !excluded[i]).collect();
                (train, test)
            })
            .collect()
    }

    /// Yields `(train_indices, test_indices)` pairs for k-fold
    /// cross-validation with contiguous folds (callers shuffle first if
    /// they need randomised folds).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or greater than the number of samples.
    #[must_use]
    pub fn k_fold(&self, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(
            k > 0 && k <= self.len(),
            "k must be in 1..={}, got {k}",
            self.len()
        );
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut folds = Vec::with_capacity(k);
        let mut start = 0;
        for f in 0..k {
            let size = base + usize::from(f < extra);
            let test: Vec<usize> = (start..start + size).collect();
            // Test indices are one contiguous range, so the complement is
            // two ranges — no per-index membership scan needed.
            let train: Vec<usize> = (0..start).chain(start + size..n).collect();
            folds.push((train, test));
            start += size;
        }
        folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 1, 2],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        assert_eq!(ds.dims(), 1);
        assert_eq!(ds.classes(), 3);
    }

    #[test]
    fn construction_validates() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![0, 1]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![0]).is_err());
    }

    #[test]
    fn subset_extracts_rows() {
        let ds = toy();
        let (xs, ys) = ds.subset(&[4, 0]);
        assert_eq!(xs, vec![vec![4.0], vec![0.0]]);
        assert_eq!(ys, vec![2, 0]);
    }

    #[test]
    fn loocv_excludes_test_sample() {
        let ds = toy();
        let folds = ds.leave_one_out(|_| vec![]);
        assert_eq!(folds.len(), 5);
        for (train, test) in &folds {
            assert_eq!(train.len(), 4);
            assert!(!train.contains(test));
        }
    }

    #[test]
    fn loocv_honours_extra_exclusions() {
        let ds = toy();
        // Pretend sample 0 and 1 are equivalent implementations.
        let folds = ds.leave_one_out(|t| if t == 0 { vec![1] } else { vec![] });
        let (train0, _) = &folds[0];
        assert!(!train0.contains(&1), "equivalent benchmark excluded");
        assert_eq!(train0.len(), 3);
    }

    #[test]
    fn k_fold_partitions_all_samples() {
        let ds = toy();
        let folds = ds.k_fold(2);
        assert_eq!(folds.len(), 2);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn k_fold_rejects_oversized_k() {
        let _ = toy().k_fold(6);
    }
}
