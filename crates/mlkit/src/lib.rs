//! # mlkit — a from-scratch machine-learning toolkit
//!
//! Every model the Middleware '17 paper evaluates is implemented here with
//! no external ML dependencies:
//!
//! * preprocessing — [`scaling::MinMaxScaler`] (paper §3.2 "Feature
//!   Scaling"), [`pca::Pca`] with a Jacobi eigensolver (feature reduction to
//!   the top components covering 95 % of variance), and
//!   [`varimax::varimax`] rotation for feature-importance analysis
//!   (Fig. 4b);
//! * classifiers — [`knn::KnnClassifier`] (the paper's expert selector),
//!   plus the Table 5 alternatives: [`naive_bayes::GaussianNb`],
//!   [`tree::DecisionTree`], [`forest::RandomForest`], [`svm::LinearSvm`]
//!   and [`mlp::Mlp`] (serving as both "MLP" and "ANN");
//! * regression — [`regression`] fits the paper's three memory-function
//!   families (Table 1) by least squares and solves their coefficients
//!   exactly from two calibration points (§4.1 "Model Calibration");
//! * evaluation — [`dataset::Dataset`] splits, k-fold and leave-one-out
//!   cross-validation, accuracy and confusion matrices ([`eval`]).
//!
//! All classifiers implement the common [`Classifier`] trait so the
//! benchmark harness can sweep them uniformly (Table 5).
//!
//! ```
//! use mlkit::knn::KnnClassifier;
//! use mlkit::Classifier;
//!
//! let xs = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0]];
//! let ys = vec![0, 0, 1];
//! let knn = KnnClassifier::fit(&xs, &ys, 1)?;
//! assert_eq!(knn.predict(&[0.05, 0.02]), 0);
//! assert_eq!(knn.predict(&[4.0, 4.5]), 1);
//! # Ok::<(), mlkit::MlError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod eval;
pub mod forest;
pub mod kernels;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod mlp;
pub mod naive_bayes;
pub mod pca;
pub mod regression;
pub mod scaling;
pub mod svd;
pub mod svm;
pub mod tree;
pub mod varimax;

use std::fmt;

/// Errors produced by model fitting or application.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training set was empty or labels/features were inconsistent.
    InvalidTrainingData(String),
    /// A query vector's dimensionality did not match the model's.
    DimensionMismatch {
        /// Dimensionality the model was trained with.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },
    /// Numerical failure (singular system, no convergence).
    Numerical(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MlError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// A trained multi-class classifier over dense `f64` feature vectors.
///
/// Labels are small unsigned integers (class indices). Implementations are
/// trained via an inherent `fit` constructor; this trait only covers
/// prediction so that heterogeneous models can be swept uniformly.
pub trait Classifier: fmt::Debug {
    /// Predicts the class label of `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x` has the wrong dimensionality; use
    /// the same feature pipeline as during training.
    fn predict(&self, x: &[f64]) -> usize;

    /// The dimensionality of feature vectors this model accepts.
    fn dims(&self) -> usize;

    /// A short human-readable name ("KNN", "Decision Tree", ...).
    fn name(&self) -> &'static str;
}
