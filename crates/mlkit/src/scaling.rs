//! Min-max feature scaling (paper §3.2, "Feature Scaling").
//!
//! The paper scales every raw feature into `[0, 1]` using the minimum and
//! maximum observed during training, and reuses those bounds to scale
//! features of unseen applications at deployment time. Values outside the
//! training range are clamped.

use crate::kernels;
use crate::MlError;
use serde::{Deserialize, Serialize};

/// A fitted min-max scaler.
///
/// # Examples
///
/// ```
/// use mlkit::scaling::MinMaxScaler;
/// let data = vec![vec![0.0, 100.0], vec![10.0, 200.0]];
/// let scaler = MinMaxScaler::fit(&data)?;
/// assert_eq!(scaler.transform(&[5.0, 150.0])?, vec![0.5, 0.5]);
/// // Unseen values are clamped into [0, 1]:
/// assert_eq!(scaler.transform(&[-5.0, 500.0])?, vec![0.0, 1.0]);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-feature minima and maxima from `data` (rows = samples).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if `data` is empty or rows
    /// have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>]) -> Result<Self, MlError> {
        let first = data
            .first()
            .ok_or_else(|| MlError::InvalidTrainingData("empty training set".into()))?;
        let dims = first.len();
        if dims == 0 {
            return Err(MlError::InvalidTrainingData("zero-dimensional data".into()));
        }
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        for row in data {
            if row.len() != dims {
                return Err(MlError::DimensionMismatch {
                    expected: dims,
                    actual: row.len(),
                });
            }
            for (d, &x) in row.iter().enumerate() {
                mins[d] = mins[d].min(x);
                maxs[d] = maxs[d].max(x);
            }
        }
        Ok(MinMaxScaler { mins, maxs })
    }

    /// Number of features the scaler was fitted on.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Scales one sample into `[0, 1]` per feature, clamping out-of-range
    /// values. Constant features (min == max) map to 0.5.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.dims() {
            return Err(MlError::DimensionMismatch {
                expected: self.dims(),
                actual: x.len(),
            });
        }
        Ok(x.iter()
            .enumerate()
            .map(|(d, &v)| {
                let (lo, hi) = (self.mins[d], self.maxs[d]);
                if hi == lo {
                    0.5
                } else {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                }
            })
            .collect())
    }

    /// Scales a batch of samples.
    ///
    /// # Errors
    ///
    /// Returns the first per-row error encountered.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        data.iter().map(|row| self.transform(row)).collect()
    }

    /// Scales one sample **without clamping**: training-range values land
    /// in `[0, 1]`, but out-of-range values keep going. Use this when the
    /// scaled distance itself is a signal — e.g. novelty detection, where
    /// clamping would collapse an alien input onto the range corners.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn transform_unclamped(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.dims() {
            return Err(MlError::DimensionMismatch {
                expected: self.dims(),
                actual: x.len(),
            });
        }
        Ok(x.iter()
            .enumerate()
            .map(|(d, &v)| {
                let (lo, hi) = (self.mins[d], self.maxs[d]);
                if hi == lo {
                    0.5
                } else {
                    (v - lo) / (hi - lo)
                }
            })
            .collect())
    }

    /// Maps a scaled value back to the original feature range.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on wrong input length.
    pub fn inverse_transform(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.dims() {
            return Err(MlError::DimensionMismatch {
                expected: self.dims(),
                actual: x.len(),
            });
        }
        Ok(x.iter()
            .enumerate()
            .map(|(d, &v)| self.mins[d] + v * (self.maxs[d] - self.mins[d]))
            .collect())
    }

    /// Scales `rows` samples supplied flat row-major (`rows × dims`)
    /// **without clamping**, returning the scaled matrix flat row-major.
    /// Delegates to the vectorized [`kernels::scale_minmax`], whose
    /// per-element arithmetic is exactly
    /// [`MinMaxScaler::transform_unclamped`] — results are bitwise
    /// identical to the scalar path (pinned by the kernel tests).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data.len()` is not
    /// `rows × dims`.
    pub fn transform_unclamped_matrix(
        &self,
        rows: usize,
        data: &[f64],
    ) -> Result<Vec<f64>, MlError> {
        let dims = self.dims();
        if data.len() != rows * dims {
            return Err(MlError::DimensionMismatch {
                expected: rows * dims,
                actual: data.len(),
            });
        }
        let mut out = vec![0.0; data.len()];
        kernels::scale_minmax(rows, dims, data, &self.mins, &self.maxs, &mut out);
        Ok(out)
    }

    /// Scales one sample **without clamping** into a caller-provided
    /// output slice — [`MinMaxScaler::transform_unclamped`] without the
    /// per-call allocation, via the same vectorized
    /// [`kernels::scale_minmax`] the matrix path uses (bitwise identical
    /// by the kernel tests). Lets a batch caller gather non-contiguous
    /// sample rows straight into a scaled matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `x` or `out` has the
    /// wrong length.
    pub fn transform_unclamped_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), MlError> {
        if x.len() != self.dims() || out.len() != self.dims() {
            return Err(MlError::DimensionMismatch {
                expected: self.dims(),
                actual: if x.len() != self.dims() {
                    x.len()
                } else {
                    out.len()
                },
            });
        }
        kernels::scale_minmax(1, self.dims(), x, &self.mins, &self.maxs, out);
        Ok(())
    }

    /// Reassembles a fitted scaler from its serialized bounds (the model
    /// artifact load path).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] on mismatched or empty
    /// bounds, non-finite values, or any `max < min`.
    pub fn from_parts(mins: Vec<f64>, maxs: Vec<f64>) -> Result<Self, MlError> {
        if mins.is_empty() || mins.len() != maxs.len() {
            return Err(MlError::InvalidTrainingData(
                "scaler bounds empty or mismatched".into(),
            ));
        }
        if mins.iter().chain(maxs.iter()).any(|v| !v.is_finite()) {
            return Err(MlError::InvalidTrainingData(
                "non-finite scaler bound".into(),
            ));
        }
        if mins.iter().zip(maxs.iter()).any(|(lo, hi)| hi < lo) {
            return Err(MlError::InvalidTrainingData("scaler max below min".into()));
        }
        Ok(MinMaxScaler { mins, maxs })
    }

    /// The per-feature minima observed at fit time.
    #[must_use]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The per-feature maxima observed at fit time.
    #[must_use]
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_extremes_to_unit_interval() {
        let data = vec![vec![2.0, -1.0], vec![4.0, 3.0], vec![3.0, 1.0]];
        let s = MinMaxScaler::fit(&data).unwrap();
        assert_eq!(s.transform(&[2.0, -1.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[4.0, 3.0]).unwrap(), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[3.0, 1.0]).unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn clamps_out_of_range_at_deployment() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]).unwrap();
        assert_eq!(s.transform(&[-100.0]).unwrap(), vec![0.0]);
        assert_eq!(s.transform(&[100.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn constant_feature_maps_to_half() {
        let s = MinMaxScaler::fit(&[vec![7.0], vec![7.0]]).unwrap();
        assert_eq!(s.transform(&[7.0]).unwrap(), vec![0.5]);
        assert_eq!(s.transform(&[123.0]).unwrap(), vec![0.5]);
    }

    #[test]
    fn inverse_round_trips_in_range() {
        let s = MinMaxScaler::fit(&[vec![10.0, 0.0], vec![20.0, 5.0]]).unwrap();
        let x = [14.0, 2.5];
        let scaled = s.transform(&x).unwrap();
        let back = s.inverse_transform(&scaled).unwrap();
        assert!((back[0] - x[0]).abs() < 1e-12);
        assert!((back[1] - x[1]).abs() < 1e-12);
    }

    #[test]
    fn empty_training_set_rejected() {
        assert!(matches!(
            MinMaxScaler::fit(&[]),
            Err(MlError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let s = MinMaxScaler::fit(&[vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            s.transform(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            MinMaxScaler::fit(&[vec![0.0], vec![0.0, 1.0]]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unclamped_transform_extends_beyond_unit_interval() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]).unwrap();
        assert_eq!(s.transform_unclamped(&[5.0]).unwrap(), vec![0.5]);
        assert_eq!(s.transform_unclamped(&[20.0]).unwrap(), vec![2.0]);
        assert_eq!(s.transform_unclamped(&[-10.0]).unwrap(), vec![-1.0]);
    }

    #[test]
    fn batch_transform_matches_single() {
        let data = vec![vec![0.0], vec![4.0]];
        let s = MinMaxScaler::fit(&data).unwrap();
        let batch = s.transform_batch(&data).unwrap();
        assert_eq!(batch, vec![vec![0.0], vec![1.0]]);
    }

    #[test]
    fn unclamped_matrix_matches_scalar_bitwise() {
        let data = vec![
            vec![2.0, -1.0, 7.0],
            vec![4.0, 3.0, 7.0],
            vec![3.0, 1.0, 7.0],
        ];
        let s = MinMaxScaler::fit(&data).unwrap();
        let rows = [
            vec![2.5, 9.0, 7.0],
            vec![-3.0, 0.0, 1.0],
            vec![4.0, -1.0, 7.0],
        ];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let got = s.transform_unclamped_matrix(rows.len(), &flat).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let want = s.transform_unclamped(row).unwrap();
            for (d, w) in want.iter().enumerate() {
                assert_eq!(got[r * 3 + d].to_bits(), w.to_bits(), "r={r} d={d}");
            }
        }
        assert!(s.transform_unclamped_matrix(2, &flat).is_err());
    }

    #[test]
    fn unclamped_into_matches_allocating_path_bitwise() {
        let data = vec![
            vec![2.0, -1.0, 7.0],
            vec![4.0, 3.0, 7.0],
            vec![3.0, 1.0, 7.0],
        ];
        let s = MinMaxScaler::fit(&data).unwrap();
        let probe = [2.5, 9.0, 7.0];
        let want = s.transform_unclamped(&probe).unwrap();
        let mut got = [0.0; 3];
        s.transform_unclamped_into(&probe, &mut got).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert!(s.transform_unclamped_into(&probe[..2], &mut got).is_err());
        assert!(s.transform_unclamped_into(&probe, &mut got[..2]).is_err());
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let s = MinMaxScaler::fit(&[vec![0.0, 5.0], vec![10.0, 5.0]]).unwrap();
        let rebuilt = MinMaxScaler::from_parts(s.mins().to_vec(), s.maxs().to_vec()).unwrap();
        assert_eq!(rebuilt, s);
        assert!(MinMaxScaler::from_parts(vec![], vec![]).is_err());
        assert!(MinMaxScaler::from_parts(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(MinMaxScaler::from_parts(vec![1.0], vec![0.0]).is_err());
        assert!(MinMaxScaler::from_parts(vec![f64::NAN], vec![1.0]).is_err());
    }
}
