//! CART-style decision tree with Gini impurity — a Table 5 alternative
//! expert selector and the base learner of [`crate::forest::RandomForest`].

use crate::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters controlling tree growth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0). `usize::MAX` for unlimited.
    pub max_depth: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 2,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted decision tree classifier.
///
/// # Examples
///
/// ```
/// use mlkit::tree::{DecisionTree, TreeParams};
/// use mlkit::Classifier;
/// let xs = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let ys = vec![0, 0, 1, 1];
/// let tree = DecisionTree::fit(&xs, &ys, TreeParams::default())?;
/// assert_eq!(tree.predict(&[0.5]), 0);
/// assert_eq!(tree.predict(&[10.5]), 1);
/// # Ok::<(), mlkit::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    dims: usize,
}

impl DecisionTree {
    /// Grows a tree on the full feature set.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs or
    /// a label/feature length mismatch.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], params: TreeParams) -> Result<Self, MlError> {
        Self::fit_with_features(xs, ys, params, None, &mut NoRng)
    }

    /// Grows a tree considering only a random subset of `feature_subset`
    /// features at each split (used by random forests). Pass `None` to use
    /// every feature.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty/ragged inputs or
    /// a label/feature length mismatch.
    pub fn fit_with_features<R: FeatureSampler>(
        xs: &[Vec<f64>],
        ys: &[usize],
        params: TreeParams,
        feature_subset: Option<usize>,
        rng: &mut R,
    ) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty training set or label mismatch".into(),
            ));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(MlError::InvalidTrainingData(
                "rows must be non-empty and rectangular".into(),
            ));
        }
        let indices: Vec<usize> = (0..xs.len()).collect();
        let root = grow(xs, ys, &indices, params, 0, dims, feature_subset, rng);
        Ok(DecisionTree { root, dims })
    }

    /// Depth of the tree (a single leaf has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

/// Supplies random feature subsets for split search; abstracted so the
/// plain `fit` path stays deterministic without a generator.
pub trait FeatureSampler {
    /// Chooses `k` distinct feature indices out of `dims`.
    fn sample(&mut self, dims: usize, k: usize) -> Vec<usize>;
}

/// Trivial sampler that always returns every feature (used by plain trees).
#[derive(Debug)]
pub struct NoRng;

impl FeatureSampler for NoRng {
    fn sample(&mut self, dims: usize, _k: usize) -> Vec<usize> {
        (0..dims).collect()
    }
}

impl FeatureSampler for simkit_compat::RngAdapter<'_> {
    fn sample(&mut self, dims: usize, k: usize) -> Vec<usize> {
        self.sample_indices(dims, k.min(dims))
    }
}

/// Adapter so callers with a `rand`-based generator can drive feature
/// sampling (kept in a private-ish module to avoid a hard simkit
/// dependency).
pub mod simkit_compat {
    use rand::Rng;

    /// Wraps any `rand::Rng` as a [`super::FeatureSampler`].
    #[derive(Debug)]
    pub struct RngAdapter<'a>(pub &'a mut dyn RngBox);

    /// Object-safe subset of `rand::Rng` needed here.
    pub trait RngBox {
        /// Uniform integer in `[0, hi)`.
        fn below(&mut self, hi: usize) -> usize;
    }

    impl<T: Rng> RngBox for T {
        fn below(&mut self, hi: usize) -> usize {
            self.gen_range(0..hi)
        }
    }

    impl std::fmt::Debug for dyn RngBox + '_ {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "RngBox")
        }
    }

    impl RngAdapter<'_> {
        pub(crate) fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..idx.len()).rev() {
                let j = self.0.below(i + 1);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
    }
}

fn majority_label(ys: &[usize], indices: &[usize]) -> usize {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &i in indices {
        *counts.entry(ys[i]).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(label, _)| label)
        .unwrap_or(0)
}

fn gini(ys: &[usize], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &i in indices {
        *counts.entry(ys[i]).or_insert(0) += 1;
    }
    let n = indices.len() as f64;
    1.0 - counts
        .values()
        .map(|&c| (c as f64 / n).powi(2))
        .sum::<f64>()
}

#[allow(clippy::too_many_arguments)]
fn grow<R: FeatureSampler>(
    xs: &[Vec<f64>],
    ys: &[usize],
    indices: &[usize],
    params: TreeParams,
    depth: usize,
    dims: usize,
    feature_subset: Option<usize>,
    rng: &mut R,
) -> Node {
    let first_label = ys[indices[0]];
    let pure = indices.iter().all(|&i| ys[i] == first_label);
    if pure || depth >= params.max_depth || indices.len() < params.min_samples_split {
        return Node::Leaf {
            label: majority_label(ys, indices),
        };
    }

    let candidate_features = match feature_subset {
        Some(k) => rng.sample(dims, k),
        None => (0..dims).collect(),
    };

    let parent_gini = gini(ys, indices);
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)

    for &f in &candidate_features {
        // Candidate thresholds: midpoints between consecutive sorted values.
        let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][f]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in indices {
                if xs[i][f] <= threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = indices.len() as f64;
            let weighted =
                gini(ys, &left) * left.len() as f64 / n + gini(ys, &right) * right.len() as f64 / n;
            if best.is_none_or(|(b, _, _)| weighted < b) {
                best = Some((weighted, f, threshold));
            }
        }
    }

    // Accept the best valid split whenever the node is impure, even at zero
    // Gini gain: XOR-like labelings need a gainless first cut before any
    // informative one exists, and recursion still terminates because both
    // children are strictly smaller.
    match best {
        Some((_, feature, threshold)) if parent_gini > 0.0 => {
            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            for &i in indices {
                if xs[i][feature] <= threshold {
                    left_idx.push(i);
                } else {
                    right_idx.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(
                    xs,
                    ys,
                    &left_idx,
                    params,
                    depth + 1,
                    dims,
                    feature_subset,
                    rng,
                )),
                right: Box::new(grow(
                    xs,
                    ys,
                    &right_idx,
                    params,
                    depth + 1,
                    dims,
                    feature_subset,
                    rng,
                )),
            }
        }
        _ => Node::Leaf {
            label: majority_label(ys, indices),
        },
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dims, "dimension mismatch in tree predict");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fits_training_data() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0]; // XOR — needs depth 2.
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            assert_eq!(tree.predict(x), y);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_collapses_to_leaf() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0, 1, 2];
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 0,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn pure_node_stops_early() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![5, 5, 5];
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[99.0]), 5);
    }

    #[test]
    fn three_way_split_on_one_feature() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[25.0]), 2);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(DecisionTree::fit(&[], &[], TreeParams::default()).is_err());
        assert!(DecisionTree::fit(&[vec![1.0]], &[0, 1], TreeParams::default()).is_err());
        assert!(DecisionTree::fit(&[vec![]], &[0], TreeParams::default()).is_err());
    }

    #[test]
    fn trait_metadata() {
        let tree =
            DecisionTree::fit(&[vec![0.0], vec![1.0]], &[0, 1], TreeParams::default()).unwrap();
        assert_eq!(tree.dims(), 1);
        assert_eq!(tree.name(), "Decision Tree");
    }
}
