//! Deterministic fault injection: seeded, replayable chaos plans.
//!
//! A [`FaultPlan`] is a pre-drawn, time-sorted list of typed fault events
//! derived entirely from a `(seed, config)` pair: the same pair always
//! yields the same plan, bit for bit, regardless of how many worker
//! threads later replay it. Generating the whole plan up front (rather
//! than sampling faults during the run) is what keeps chaos campaigns
//! worker-count invariant — the simulation consumes faults from an
//! immutable schedule instead of an RNG that races with execution order.
//!
//! The fault taxonomy mirrors the failure modes the co-location paper
//! concedes in §2.3/§6 plus the operational ones any cluster scheduler
//! faces:
//!
//! * **node crashes** — every executor on the node is lost and the node
//!   stays offline for a drawn outage;
//! * **executor crash-restarts** — one executor dies and its work is
//!   re-queued (the owner restarts it through normal placement);
//! * **monitor dropouts** — a node's resource-monitor daemon goes silent,
//!   so sliding windows go *stale* rather than reading zero;
//! * **prediction noise** — a multiplicative perturbation of the memory
//!   footprint a predictor reports for one application, modelling the
//!   mispredicted apps of §6 (factors below 1 under-predict and invite
//!   paging/OOM; factors above 1 over-reserve and waste capacity);
//! * **spot preemptions** — a cloud provider revokes a node from the
//!   spot pool after a short warning lead time (the "two-minute notice").
//!   Unlike a crash, the warning arrives *before* the revocation, so a
//!   draining scheduler can stop placing onto the node and quarantine it
//!   instead of losing work cold. Spot preemptions are opt-in
//!   (`spot_rate` defaults to 0, and spot draws happen after every other
//!   kind), so existing plans stay bit-identical.
//!
//! Intensity 0 produces an empty plan, so a zero-intensity chaos run is
//! definitionally identical to a fault-free one.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One kind of injected fault. Node and application references are plain
/// indices so the plan stays agnostic of any particular cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node loses all executors and refuses work for `outage_secs`.
    NodeCrash {
        /// Index of the crashed node.
        node: usize,
        /// How long the node stays offline, seconds.
        outage_secs: f64,
    },
    /// The youngest executor on the node (if any) crashes and must be
    /// restarted by its owner.
    ExecutorCrash {
        /// Index of the node whose executor crashes.
        node: usize,
    },
    /// The node's monitor daemon reports nothing for `duration_secs`; its
    /// sliding window drains and goes stale.
    MonitorDropout {
        /// Index of the silenced node.
        node: usize,
        /// How long reports are dropped, seconds.
        duration_secs: f64,
    },
    /// From the injection time onward, the named application's predicted
    /// footprints are multiplied by `factor`.
    PredictionNoise {
        /// Index of the perturbed application (submission order).
        app: usize,
        /// Multiplicative perturbation applied to reported footprints.
        factor: f64,
    },
    /// The cloud provider announces at the injection time that `node`
    /// will be revoked from the spot pool `warning_secs` later; the node
    /// then stays gone for `outage_secs` before rejoining.
    SpotPreemption {
        /// Index of the preempted node.
        node: usize,
        /// Lead time between the warning and the actual revocation,
        /// seconds (the classic cloud "two-minute notice").
        warning_secs: f64,
        /// How long the node stays revoked, seconds.
        outage_secs: f64,
    },
}

/// A typed fault with its deterministic injection time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time at which the fault strikes, seconds.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape of a chaos campaign: how many faults of each kind to draw and
/// over what horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Overall fault intensity in `[0, 1]`: scales every per-kind count.
    /// Zero yields an empty plan.
    pub intensity: f64,
    /// Horizon over which injection times are drawn uniformly, seconds.
    pub horizon_secs: f64,
    /// Number of nodes faults may target.
    pub nodes: usize,
    /// Number of applications prediction-noise faults may target.
    pub apps: usize,
    /// Mean node outage (exponentially distributed), seconds.
    pub mean_outage_secs: f64,
    /// Mean monitor-dropout duration (exponentially distributed), seconds.
    pub mean_dropout_secs: f64,
    /// Log-scale standard deviation of the prediction-noise factor
    /// (`factor = exp(N(0, sd))`).
    pub noise_sd: f64,
    /// Spot-preemption count per node at full intensity (`scaled(spot_rate,
    /// nodes)` events). Defaults to 0 — spot faults are opt-in, and their
    /// draws happen after every other kind so enabling them never perturbs
    /// the events existing configs draw.
    pub spot_rate: f64,
    /// Warning lead time between a spot revocation notice and the
    /// revocation itself, seconds.
    pub spot_warning_secs: f64,
    /// Fraction of the horizon over which prediction-noise strike times
    /// are drawn. The historical default of `0.1` models a mis-calibrated
    /// model that is wrong from the start — right for closed systems where
    /// every job is present at `t = 0`. Open systems, where the cluster
    /// fills up over time, should widen this toward `1.0` so mispredictions
    /// can land mid-storm. The default keeps existing plans bit-identical:
    /// the same uniform draw is consumed, only its scale changes.
    pub noise_window_frac: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            intensity: 0.0,
            horizon_secs: 3_600.0,
            nodes: 1,
            apps: 1,
            mean_outage_secs: 300.0,
            mean_dropout_secs: 600.0,
            noise_sd: 0.35,
            spot_rate: 0.0,
            spot_warning_secs: 120.0,
            noise_window_frac: 0.1,
        }
    }
}

/// A seeded, replayable schedule of fault events, sorted by time.
///
/// # Examples
///
/// ```
/// use simkit::faults::{FaultPlan, FaultPlanConfig};
///
/// let cfg = FaultPlanConfig { intensity: 0.5, nodes: 8, apps: 4, ..Default::default() };
/// let a = FaultPlan::generate(7, &cfg);
/// let b = FaultPlan::generate(7, &cfg);
/// assert_eq!(a.events(), b.events(), "same seed, same plan");
/// assert!(FaultPlan::generate(7, &FaultPlanConfig::default()).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; replays are identical to fault-free runs).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Draws a plan deterministically from `seed` and `config`.
    ///
    /// Per-kind event counts scale with `intensity × nodes` (or `× apps`
    /// for prediction noise); times are uniform over the horizon; outage
    /// and dropout durations are exponential around their configured
    /// means. Events are sorted by injection time with generation order
    /// breaking ties, so the plan — and everything downstream of it — is
    /// bit-for-bit reproducible.
    ///
    /// # Panics
    ///
    /// Panics on a negative intensity or a non-positive horizon.
    #[must_use]
    pub fn generate(seed: u64, config: &FaultPlanConfig) -> Self {
        assert!(
            config.intensity >= 0.0 && config.intensity.is_finite(),
            "fault intensity must be a finite non-negative number"
        );
        assert!(config.horizon_secs > 0.0, "fault horizon must be positive");
        let mut rng = SimRng::seed_from(seed ^ 0xFA00_17ED_5EED_0000);
        let mut events = Vec::new();
        if config.intensity == 0.0 || config.nodes == 0 {
            return FaultPlan { events };
        }
        let scaled = |per_unit: f64, units: usize| -> usize {
            (config.intensity * per_unit * units as f64).round() as usize
        };
        let node_crashes = scaled(0.5, config.nodes);
        let exec_crashes = scaled(0.75, config.nodes);
        let dropouts = scaled(0.75, config.nodes);
        let noises = scaled(1.0, config.apps).min(config.apps.saturating_mul(2));

        for _ in 0..node_crashes {
            events.push(FaultEvent {
                at_secs: rng.uniform(0.0, config.horizon_secs),
                kind: FaultKind::NodeCrash {
                    node: rng.uniform_usize(0, config.nodes - 1),
                    outage_secs: rng.exponential(1.0 / config.mean_outage_secs.max(1e-9)),
                },
            });
        }
        for _ in 0..exec_crashes {
            events.push(FaultEvent {
                at_secs: rng.uniform(0.0, config.horizon_secs),
                kind: FaultKind::ExecutorCrash {
                    node: rng.uniform_usize(0, config.nodes - 1),
                },
            });
        }
        for _ in 0..dropouts {
            events.push(FaultEvent {
                at_secs: rng.uniform(0.0, config.horizon_secs),
                kind: FaultKind::MonitorDropout {
                    node: rng.uniform_usize(0, config.nodes - 1),
                    duration_secs: rng.exponential(1.0 / config.mean_dropout_secs.max(1e-9)),
                },
            });
        }
        assert!(
            (0.0..=1.0).contains(&config.noise_window_frac),
            "noise window fraction must lie in [0, 1]"
        );
        if config.apps > 0 {
            for _ in 0..noises {
                events.push(FaultEvent {
                    // Closed systems keep the historical window (first tenth
                    // of the horizon: a mis-calibrated model is wrong from
                    // the start); open systems widen it so mispredictions
                    // strike a loaded cluster, not an empty one.
                    at_secs: rng.uniform(0.0, config.horizon_secs * config.noise_window_frac),
                    kind: FaultKind::PredictionNoise {
                        app: rng.uniform_usize(0, config.apps - 1),
                        factor: rng.log_normal(0.0, config.noise_sd).clamp(0.2, 5.0),
                    },
                });
            }
        }
        // Spot draws come LAST so that enabling them (spot_rate > 0) never
        // changes which values the draws above consume from the RNG stream:
        // a plan with spot_rate = 0 is bit-identical to one generated
        // before this fault kind existed.
        assert!(
            config.spot_rate >= 0.0 && config.spot_rate.is_finite(),
            "spot rate must be a finite non-negative number"
        );
        let spots = scaled(config.spot_rate, config.nodes);
        for _ in 0..spots {
            events.push(FaultEvent {
                // The *warning* lands inside the horizon; the revocation
                // follows warning_secs later.
                at_secs: rng.uniform(0.0, config.horizon_secs),
                kind: FaultKind::SpotPreemption {
                    node: rng.uniform_usize(0, config.nodes - 1),
                    warning_secs: config.spot_warning_secs.max(0.0),
                    outage_secs: rng.exponential(1.0 / config.mean_outage_secs.max(1e-9)),
                },
            });
        }
        // Stable sort: ties keep generation order, preserving determinism.
        events.sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("finite times"));
        FaultPlan { events }
    }

    /// A plan built from explicit events (stably sorted by time), for
    /// trace-driven chaos and targeted tests.
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        FaultPlan { events }
    }

    /// The planned events in injection order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of planned events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// A cursor over the plan for consumption during a replay.
    #[must_use]
    pub fn cursor(&self) -> FaultCursor<'_> {
        FaultCursor {
            events: &self.events,
            next: 0,
        }
    }
}

/// Consumes a [`FaultPlan`] front to back during a simulation.
#[derive(Debug, Clone)]
pub struct FaultCursor<'a> {
    events: &'a [FaultEvent],
    next: usize,
}

impl<'a> FaultCursor<'a> {
    /// Injection time of the next undelivered event, if any.
    #[must_use]
    pub fn next_at(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.at_secs)
    }

    /// Pops the next event if it is due at or before `now_secs`.
    pub fn pop_due(&mut self, now_secs: f64) -> Option<&'a FaultEvent> {
        let event = self.events.get(self.next)?;
        if event.at_secs <= now_secs {
            self.next += 1;
            Some(event)
        } else {
            None
        }
    }

    /// Number of events not yet delivered.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(intensity: f64) -> FaultPlanConfig {
        FaultPlanConfig {
            intensity,
            horizon_secs: 1_000.0,
            nodes: 10,
            apps: 6,
            ..Default::default()
        }
    }

    #[test]
    fn zero_intensity_is_empty() {
        let plan = FaultPlan::generate(42, &cfg(0.0));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.cursor().next_at(), None);
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn same_seed_same_plan_bitwise() {
        let a = FaultPlan::generate(9, &cfg(0.7));
        let b = FaultPlan::generate(9, &cfg(0.7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at_secs.to_bits(), y.at_secs.to_bits());
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, &cfg(0.7));
        let b = FaultPlan::generate(2, &cfg(0.7));
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_are_time_sorted_and_in_bounds() {
        let plan = FaultPlan::generate(3, &cfg(1.0));
        assert!(!plan.is_empty());
        let mut last = 0.0;
        for e in plan.events() {
            assert!(e.at_secs >= last, "events must be time-sorted");
            assert!(e.at_secs < 1_000.0);
            last = e.at_secs;
            match e.kind {
                FaultKind::NodeCrash { node, outage_secs } => {
                    assert!(node < 10);
                    assert!(outage_secs > 0.0);
                }
                FaultKind::ExecutorCrash { node } => assert!(node < 10),
                FaultKind::MonitorDropout {
                    node,
                    duration_secs,
                } => {
                    assert!(node < 10);
                    assert!(duration_secs > 0.0);
                }
                FaultKind::PredictionNoise { app, factor } => {
                    assert!(app < 6);
                    assert!((0.2..=5.0).contains(&factor));
                }
                FaultKind::SpotPreemption { .. } => {
                    unreachable!("spot_rate defaults to 0; no spot events expected")
                }
            }
        }
    }

    #[test]
    fn spot_rate_zero_plans_are_unchanged_by_the_new_kind() {
        // The canonical backward-compatibility pin: a default (spot-free)
        // config draws exactly the same events it always did.
        let plan = FaultPlan::generate(9, &cfg(0.7));
        assert!(!plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::SpotPreemption { .. })));
    }

    #[test]
    fn spot_rate_appends_without_perturbing_existing_draws() {
        let base = FaultPlan::generate(9, &cfg(0.7));
        let spot = FaultPlan::generate(
            9,
            &FaultPlanConfig {
                spot_rate: 0.5,
                ..cfg(0.7)
            },
        );
        assert!(spot.len() > base.len());
        // Every non-spot event survives bitwise: spot draws come last.
        let non_spot: Vec<_> = spot
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::SpotPreemption { .. }))
            .copied()
            .collect();
        assert_eq!(non_spot, base.events());
        for e in spot.events() {
            if let FaultKind::SpotPreemption {
                node,
                warning_secs,
                outage_secs,
            } = e.kind
            {
                assert!(node < 10);
                assert_eq!(warning_secs, 120.0);
                assert!(outage_secs > 0.0);
            }
        }
    }

    #[test]
    fn from_events_sorts_stably() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at_secs: 10.0,
                kind: FaultKind::ExecutorCrash { node: 1 },
            },
            FaultEvent {
                at_secs: 2.0,
                kind: FaultKind::ExecutorCrash { node: 2 },
            },
            FaultEvent {
                at_secs: 10.0,
                kind: FaultKind::ExecutorCrash { node: 3 },
            },
        ]);
        let nodes: Vec<_> = plan
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::ExecutorCrash { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, [2, 1, 3], "ties keep insertion order");
    }

    #[test]
    fn intensity_scales_event_count() {
        let low = FaultPlan::generate(4, &cfg(0.1));
        let high = FaultPlan::generate(4, &cfg(0.9));
        assert!(high.len() > low.len());
    }

    #[test]
    fn cursor_pops_in_order_and_respects_now() {
        let plan = FaultPlan::generate(5, &cfg(0.8));
        let mut cursor = plan.cursor();
        assert_eq!(cursor.remaining(), plan.len());
        let first_at = cursor.next_at().unwrap();
        assert!(cursor.pop_due(first_at - 1e-9).is_none());
        let e = cursor.pop_due(first_at).unwrap();
        assert_eq!(e.at_secs, first_at);
        // Drain everything by the horizon.
        let mut popped = 1;
        while cursor.pop_due(1_000.0).is_some() {
            popped += 1;
        }
        assert_eq!(popped, plan.len());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn negative_intensity_panics() {
        let _ = FaultPlan::generate(
            1,
            &FaultPlanConfig {
                intensity: -0.5,
                ..cfg(0.0)
            },
        );
    }
}
