//! Crash-safe, append-only record journals for resumable campaigns.
//!
//! A campaign that replays hundreds of mixes loses everything when the
//! process dies — unless each committed fold is durably recorded as it
//! happens. This module provides that persistence layer:
//!
//! * **Append-only record log** — each record is `[len: u32 LE]`
//!   `[fnv64(payload): u64 LE]` `[payload]`. Payloads are opaque bytes;
//!   the campaign layer encodes its folds with the [`wire`] helpers.
//! * **Checksummed header binding** — the journal starts with a magic
//!   number and a caller-supplied *binding blob* (campaign definition:
//!   seeds, policies, catalog signature, …) protected by its own FNV-64.
//!   [`Journal::open`] refuses to resume a journal whose binding differs
//!   from the campaign being run, so stale or foreign checkpoints can
//!   never silently corrupt results.
//! * **Atomic creation** — the header is written to a temp file, fsynced
//!   and atomically renamed into place ([`atomic_write`]), so a journal
//!   either exists with a complete header or not at all.
//! * **Torn-tail recovery** — appends go straight to the live file (with
//!   configurable fsync cadence), so a kill mid-append can leave a
//!   partial record at the end. Recovery scans the log, keeps the longest
//!   valid prefix and truncates the torn or corrupt tail instead of
//!   failing: a crash costs at most the records since the last fsync,
//!   never the campaign.
//! * **Deterministic kill points** — [`KillPoint`] aborts an append after
//!   a configured count (optionally mid-record, producing a torn tail on
//!   purpose). This is the fault-injection hook the kill–resume
//!   equivalence tests drive; production runs never set it.
//!
//! The journal stores raw little-endian `f64` bits, so a replayed fold is
//! bit-for-bit the value the interrupted run computed — which is what
//! makes resumed campaign statistics identical to uninterrupted ones.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every journal file: "SMJL" + format version 1.
pub const MAGIC: [u8; 8] = *b"SMJL\x01\x00\x00\x00";

/// Largest accepted record payload (guards the scanner against a corrupt
/// length field committing us to a multi-gigabyte read).
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// FNV-1a 64-bit checksum — the no-dependency integrity check used for
/// both the header binding and every record payload.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Errors raised by journal persistence.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file's header binding does not match this campaign definition.
    BindingMismatch {
        /// FNV-64 of the binding the campaign expects.
        expected: u64,
        /// FNV-64 of the binding found in the file.
        found: u64,
    },
    /// The file is not a journal or its header is damaged (a damaged
    /// header cannot be a torn tail: headers are written atomically).
    Corrupt(String),
    /// A configured [`KillPoint`] fired (test-only fault injection).
    KillPoint {
        /// Appends completed before the abort.
        appends: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BindingMismatch { expected, found } => write!(
                f,
                "journal binding mismatch: campaign {expected:#018x}, file {found:#018x} \
                 (refusing to resume against a different campaign definition)"
            ),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
            JournalError::KillPoint { appends } => {
                write!(f, "kill point fired after {appends} journal appends")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Deterministic abort injected into the append path (test-only).
///
/// The kill–resume equivalence tests use this to simulate a process dying
/// at an arbitrary point of a campaign: the append that would commit
/// record `after_appends` instead returns [`JournalError::KillPoint`].
/// With `torn` set, the abort additionally writes the record header plus
/// a partial payload first — the on-disk state a kill mid-`write(2)`
/// leaves behind — which recovery must truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Number of appends that complete before the abort.
    pub after_appends: u64,
    /// Whether the aborting append leaves a torn (partial) record.
    pub torn: bool,
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: u64,
    appends: u64,
    unsynced: u32,
    flush_every: u32,
    kill: Option<KillPoint>,
}

/// Result of [`Journal::open`]: the journal plus everything recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The journal, ready for appends.
    pub journal: Journal,
    /// Payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail that were truncated (0 on a clean open).
    pub truncated_bytes: u64,
    /// Whether the file was created by this call.
    pub created: bool,
}

impl Journal {
    /// Opens (resuming) or creates the journal at `path`.
    ///
    /// On creation the header — magic, binding blob, binding checksum —
    /// is written via temp file + fsync + atomic rename. On resume the
    /// header is validated against `binding`, the record log is scanned,
    /// and any torn or corrupt tail is truncated; the surviving payloads
    /// are returned in order.
    ///
    /// `flush_every` is the fsync cadence in records (clamped to ≥ 1): 1
    /// makes every committed record durable, larger values trade
    /// durability of the last few records for fewer fsyncs.
    ///
    /// # Errors
    ///
    /// [`JournalError::BindingMismatch`] when the file belongs to a
    /// different campaign definition, [`JournalError::Corrupt`] when the
    /// header is damaged, and [`JournalError::Io`] on filesystem failure.
    pub fn open(path: &Path, binding: &[u8], flush_every: u32) -> Result<Recovered, JournalError> {
        let flush_every = flush_every.max(1);
        if !path.exists() {
            let mut header = Vec::with_capacity(MAGIC.len() + 12 + binding.len());
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(
                &u32::try_from(binding.len())
                    .map_err(|_| {
                        JournalError::Corrupt("binding blob exceeds u32 length".to_string())
                    })?
                    .to_le_bytes(),
            );
            header.extend_from_slice(binding);
            header.extend_from_slice(&fnv64(binding).to_le_bytes());
            atomic_write(path, &header)?;
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok(Recovered {
                journal: Journal {
                    file,
                    path: path.to_path_buf(),
                    records: 0,
                    appends: 0,
                    unsynced: 0,
                    flush_every,
                    kill: None,
                },
                records: Vec::new(),
                truncated_bytes: 0,
                created: true,
            });
        }

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Header: magic + binding length + binding + binding checksum.
        if bytes.len() < MAGIC.len() + 4 {
            return Err(JournalError::Corrupt("file shorter than header".into()));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::Corrupt("bad magic".into()));
        }
        let blen = read_u32(&bytes, MAGIC.len()) as usize;
        let bstart = MAGIC.len() + 4;
        let bend = bstart + blen;
        if bytes.len() < bend + 8 {
            return Err(JournalError::Corrupt("truncated header binding".into()));
        }
        let file_binding = &bytes[bstart..bend];
        let stored_crc = read_u64(&bytes, bend);
        if fnv64(file_binding) != stored_crc {
            return Err(JournalError::Corrupt(
                "header binding checksum mismatch".into(),
            ));
        }
        if file_binding != binding {
            return Err(JournalError::BindingMismatch {
                expected: fnv64(binding),
                found: fnv64(file_binding),
            });
        }

        // Scan records; stop at the first torn or corrupt one.
        let mut records = Vec::new();
        let mut pos = bend + 8;
        let mut valid_end = pos;
        while pos + 12 <= bytes.len() {
            let len = read_u32(&bytes, pos) as usize;
            if len > MAX_RECORD_LEN as usize || pos + 12 + len > bytes.len() {
                break; // torn tail or corrupt length
            }
            let crc = read_u64(&bytes, pos + 4);
            let payload = &bytes[pos + 12..pos + 12 + len];
            if fnv64(payload) != crc {
                break; // corrupt record: drop it and everything after
            }
            records.push(payload.to_vec());
            pos += 12 + len;
            valid_end = pos;
        }

        let truncated = bytes.len() as u64 - valid_end as u64;
        if truncated > 0 {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;

        Ok(Recovered {
            journal: Journal {
                file,
                path: path.to_path_buf(),
                records: records.len() as u64,
                appends: 0,
                unsynced: 0,
                flush_every,
                kill: None,
            },
            records,
            truncated_bytes: truncated,
            created: false,
        })
    }

    /// Arms a deterministic [`KillPoint`] on this journal (test-only).
    pub fn set_kill_point(&mut self, kill: Option<KillPoint>) {
        self.kill = kill;
    }

    /// Number of committed records in the file.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record; fsyncs every `flush_every` appends.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write failure, [`JournalError::KillPoint`]
    /// when an armed kill point fires (after writing a torn partial
    /// record if the kill point is `torn`).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        if let Some(kill) = self.kill {
            if self.appends >= kill.after_appends {
                if kill.torn {
                    // Simulate dying mid-write(2): commit the record
                    // header and half the payload, then abort.
                    let len = u32::try_from(payload.len())
                        .map_err(|_| JournalError::Corrupt("record exceeds u32 length".into()))?;
                    let mut partial = Vec::with_capacity(12 + payload.len() / 2);
                    partial.extend_from_slice(&len.to_le_bytes());
                    partial.extend_from_slice(&fnv64(payload).to_le_bytes());
                    partial.extend_from_slice(&payload[..payload.len() / 2]);
                    self.file.write_all(&partial)?;
                    self.file.sync_data()?;
                }
                return Err(JournalError::KillPoint {
                    appends: self.appends,
                });
            }
        }
        let len = u32::try_from(payload.len())
            .map_err(|_| JournalError::Corrupt("record exceeds u32 length".into()))?;
        if len > MAX_RECORD_LEN {
            return Err(JournalError::Corrupt(format!(
                "record of {len} bytes exceeds MAX_RECORD_LEN"
            )));
        }
        let mut buf = Vec::with_capacity(12 + payload.len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&fnv64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.records += 1;
        self.appends += 1;
        self.unsynced += 1;
        if self.unsynced >= self.flush_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Forces any buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory, `fsync`, atomic rename over the destination, then `fsync`
/// of the parent directory (so the rename itself is durable). Readers
/// observe either the old content or the new — never a partial write.
///
/// # Errors
///
/// Propagates filesystem errors; the temp file is removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write target has no file name"))?;
    let tmp = parent.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename durable. Directories cannot be fsynced on every
        // platform; failure to open or sync the directory is non-fatal
        // for correctness (the rename is already atomic), so ignore it.
        if let Ok(dir) = File::open(&parent) {
            let _ = dir.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Little-endian encode/decode helpers for journal record payloads.
///
/// Values round-trip exactly: `f64`s travel as raw bits, so a replayed
/// fold is the identical IEEE-754 value the interrupted run produced.
pub mod wire {
    use super::JournalError;

    /// Appends a `u64` (little-endian).
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bits (little-endian).
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A cursor over a record payload.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Starts reading at the payload's first byte.
        #[must_use]
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Reads a `u64`.
        ///
        /// # Errors
        ///
        /// [`JournalError::Corrupt`] when the payload is too short.
        pub fn u64(&mut self) -> Result<u64, JournalError> {
            if self.pos + 8 > self.buf.len() {
                return Err(JournalError::Corrupt("record payload too short".into()));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
            self.pos += 8;
            Ok(u64::from_le_bytes(b))
        }

        /// Reads an `f64` from its raw bits.
        ///
        /// # Errors
        ///
        /// [`JournalError::Corrupt`] when the payload is too short.
        pub fn f64(&mut self) -> Result<f64, JournalError> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Whether every byte has been consumed.
        #[must_use]
        pub fn exhausted(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smjl_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_records() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("c.journal");
        let binding = b"campaign-1";
        let mut rec = Journal::open(&path, binding, 1).unwrap();
        assert!(rec.created);
        rec.journal.append(b"alpha").unwrap();
        rec.journal.append(b"").unwrap();
        rec.journal.append(&[7u8; 300]).unwrap();
        drop(rec);
        let back = Journal::open(&path, binding, 1).unwrap();
        assert!(!back.created);
        assert_eq!(back.truncated_bytes, 0);
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.records[0], b"alpha");
        assert_eq!(back.records[1], b"");
        assert_eq!(back.records[2], vec![7u8; 300]);
        assert_eq!(back.journal.records(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binding_mismatch_is_refused() {
        let dir = tmp_dir("binding");
        let path = dir.join("c.journal");
        Journal::open(&path, b"seed=1", 1).unwrap();
        let err = Journal::open(&path, b"seed=2", 1).unwrap_err();
        assert!(matches!(err, JournalError::BindingMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let path = dir.join("c.journal");
        let binding = b"bind";
        let mut rec = Journal::open(&path, binding, 1).unwrap();
        rec.journal.append(b"one").unwrap();
        rec.journal.append(b"two").unwrap();
        drop(rec);
        // Tear the file mid-record: append a valid header + partial body.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&9u32.to_le_bytes()).unwrap();
        f.write_all(&fnv64(b"destined!").to_le_bytes()).unwrap();
        f.write_all(b"dest").unwrap();
        drop(f);
        let mut back = Journal::open(&path, binding, 1).unwrap();
        assert_eq!(back.records.len(), 2);
        assert!(back.truncated_bytes > 0);
        // Appending after recovery produces a clean log again.
        back.journal.append(b"three").unwrap();
        drop(back);
        let again = Journal::open(&path, binding, 1).unwrap();
        assert_eq!(
            again.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_point_aborts_and_optionally_tears() {
        let dir = tmp_dir("kill");
        let path = dir.join("c.journal");
        let binding = b"bind";
        let mut rec = Journal::open(&path, binding, 1).unwrap();
        rec.journal.set_kill_point(Some(KillPoint {
            after_appends: 1,
            torn: true,
        }));
        rec.journal.append(b"first").unwrap();
        let err = rec.journal.append(b"second-record").unwrap_err();
        assert!(
            matches!(err, JournalError::KillPoint { appends: 1 }),
            "{err}"
        );
        drop(rec);
        let back = Journal::open(&path, binding, 1).unwrap();
        assert_eq!(back.records, vec![b"first".to_vec()]);
        assert!(back.truncated_bytes > 0, "torn partial record was written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("c.journal");
        let binding = b"bind";
        let mut rec = Journal::open(&path, binding, 1).unwrap();
        rec.journal.append(b"record-zero").unwrap();
        rec.journal.append(b"record-one").unwrap();
        drop(rec);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let back = Journal::open(&path, binding, 1).unwrap();
        assert_eq!(back.records, vec![b"record-zero".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmp_dir("aw");
        let path = dir.join("out.txt");
        atomic_write(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        atomic_write(&path, b"version-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version-2");
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_round_trips_bits() {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, 42);
        wire::put_f64(&mut buf, -0.0);
        wire::put_f64(&mut buf, 1.0 / 3.0);
        let mut r = wire::Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), 1.0 / 3.0);
        assert!(r.exhausted());
        assert!(r.u64().is_err());
    }
}
