//! Capacity-checked resource accounting.
//!
//! A [`ResourcePool`] models a finite divisible resource (RAM in MB, CPU
//! share in thread-equivalents). Reservations either succeed atomically or
//! fail with [`ResourceError`]; usage can never go negative or exceed
//! capacity, which the property tests pin down.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a reservation or release would violate the pool's
/// invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceError {
    /// The requested amount exceeds what is currently available.
    Exhausted {
        /// Amount that was requested.
        requested: f64,
        /// Amount that was available at the time of the request.
        available: f64,
    },
    /// A release asked to return more than is currently in use.
    OverRelease {
        /// Amount that was released.
        released: f64,
        /// Amount that was actually in use.
        in_use: f64,
    },
    /// The amount was negative, NaN or infinite.
    InvalidAmount(f64),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "resource exhausted: requested {requested:.2}, available {available:.2}"
            ),
            ResourceError::OverRelease { released, in_use } => write!(
                f,
                "over-release: returned {released:.2}, only {in_use:.2} in use"
            ),
            ResourceError::InvalidAmount(a) => write!(f, "invalid resource amount {a}"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// A finite divisible resource with reserve/release semantics.
///
/// # Examples
///
/// ```
/// use simkit::ResourcePool;
///
/// let mut ram = ResourcePool::new("ram_mb", 64_000.0);
/// ram.reserve(24_000.0)?;
/// assert_eq!(ram.available(), 40_000.0);
/// ram.release(24_000.0)?;
/// assert_eq!(ram.in_use(), 0.0);
/// # Ok::<(), simkit::ResourceError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourcePool {
    name: String,
    capacity: f64,
    in_use: f64,
    peak: f64,
}

impl ResourcePool {
    /// Creates a pool with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or non-finite.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be finite and non-negative"
        );
        ResourcePool {
            name: name.into(),
            capacity,
            in_use: 0.0,
            peak: 0.0,
        }
    }

    /// The pool's label (used in diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Amount currently reserved.
    #[must_use]
    pub fn in_use(&self) -> f64 {
        self.in_use
    }

    /// Amount currently free.
    #[must_use]
    pub fn available(&self) -> f64 {
        (self.capacity - self.in_use).max(0.0)
    }

    /// Highest usage observed since construction (or the last
    /// [`ResourcePool::reset_peak`]).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Utilisation in `[0, 1]`; zero-capacity pools report 0.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0.0 {
            0.0
        } else {
            self.in_use / self.capacity
        }
    }

    /// Returns `true` if `amount` could be reserved right now.
    #[must_use]
    pub fn can_reserve(&self, amount: f64) -> bool {
        amount.is_finite() && amount >= 0.0 && self.in_use + amount <= self.capacity + EPS
    }

    /// Reserves `amount` from the pool.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceError::InvalidAmount`] for negative or non-finite
    /// amounts and [`ResourceError::Exhausted`] if the pool cannot satisfy
    /// the request.
    pub fn reserve(&mut self, amount: f64) -> Result<(), ResourceError> {
        if !amount.is_finite() || amount < 0.0 {
            return Err(ResourceError::InvalidAmount(amount));
        }
        if self.in_use + amount > self.capacity + EPS {
            return Err(ResourceError::Exhausted {
                requested: amount,
                available: self.available(),
            });
        }
        self.in_use = (self.in_use + amount).min(self.capacity);
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `amount` back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceError::InvalidAmount`] for negative or non-finite
    /// amounts and [`ResourceError::OverRelease`] if more would be returned
    /// than is in use.
    pub fn release(&mut self, amount: f64) -> Result<(), ResourceError> {
        if !amount.is_finite() || amount < 0.0 {
            return Err(ResourceError::InvalidAmount(amount));
        }
        if amount > self.in_use + EPS {
            return Err(ResourceError::OverRelease {
                released: amount,
                in_use: self.in_use,
            });
        }
        self.in_use = (self.in_use - amount).max(0.0);
        Ok(())
    }

    /// Adjusts an existing reservation from `old` to `new` atomically.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`ResourcePool::reserve`] /
    /// [`ResourcePool::release`]; on error the pool is unchanged.
    pub fn resize(&mut self, old: f64, new: f64) -> Result<(), ResourceError> {
        if !old.is_finite() || old < 0.0 {
            return Err(ResourceError::InvalidAmount(old));
        }
        if !new.is_finite() || new < 0.0 {
            return Err(ResourceError::InvalidAmount(new));
        }
        if new >= old {
            self.reserve(new - old)
        } else {
            self.release(old - new)
        }
    }

    /// Forgets the recorded peak.
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }
}

/// Tolerance for floating-point accumulation error in reserve/release
/// round-trips.
const EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_round_trip() {
        let mut p = ResourcePool::new("ram", 100.0);
        p.reserve(60.0).unwrap();
        assert_eq!(p.in_use(), 60.0);
        assert_eq!(p.available(), 40.0);
        p.release(60.0).unwrap();
        assert_eq!(p.in_use(), 0.0);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut p = ResourcePool::new("ram", 100.0);
        p.reserve(80.0).unwrap();
        let err = p.reserve(30.0).unwrap_err();
        assert!(matches!(err, ResourceError::Exhausted { .. }));
        // Failed reservation leaves state untouched.
        assert_eq!(p.in_use(), 80.0);
    }

    #[test]
    fn over_release_is_reported() {
        let mut p = ResourcePool::new("ram", 100.0);
        p.reserve(10.0).unwrap();
        let err = p.release(20.0).unwrap_err();
        assert!(matches!(err, ResourceError::OverRelease { .. }));
        assert_eq!(p.in_use(), 10.0);
    }

    #[test]
    fn invalid_amounts_rejected() {
        let mut p = ResourcePool::new("ram", 100.0);
        assert!(matches!(
            p.reserve(-1.0),
            Err(ResourceError::InvalidAmount(_))
        ));
        assert!(matches!(
            p.reserve(f64::NAN),
            Err(ResourceError::InvalidAmount(_))
        ));
        assert!(matches!(
            p.release(f64::INFINITY),
            Err(ResourceError::InvalidAmount(_))
        ));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = ResourcePool::new("ram", 100.0);
        p.reserve(70.0).unwrap();
        p.release(50.0).unwrap();
        p.reserve(10.0).unwrap();
        assert_eq!(p.peak(), 70.0);
        p.reset_peak();
        assert_eq!(p.peak(), 30.0);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut p = ResourcePool::new("ram", 100.0);
        p.reserve(20.0).unwrap();
        p.resize(20.0, 50.0).unwrap();
        assert_eq!(p.in_use(), 50.0);
        p.resize(50.0, 5.0).unwrap();
        assert_eq!(p.in_use(), 5.0);
        assert!(p.resize(5.0, 1000.0).is_err());
        assert_eq!(p.in_use(), 5.0, "failed resize leaves pool unchanged");
    }

    #[test]
    fn utilization_and_can_reserve() {
        let mut p = ResourcePool::new("cpu", 16.0);
        assert_eq!(p.utilization(), 0.0);
        p.reserve(8.0).unwrap();
        assert_eq!(p.utilization(), 0.5);
        assert!(p.can_reserve(8.0));
        assert!(!p.can_reserve(8.1));
        let zero = ResourcePool::new("none", 0.0);
        assert_eq!(zero.utilization(), 0.0);
    }

    #[test]
    fn float_accumulation_tolerated() {
        let mut p = ResourcePool::new("ram", 1.0);
        for _ in 0..10 {
            p.reserve(0.1).unwrap();
        }
        // 10 × 0.1 may exceed 1.0 by float error; EPS absorbs it.
        for _ in 0..10 {
            p.release(0.1).unwrap();
        }
        assert!(p.in_use().abs() < 1e-9);
    }
}
