//! The simulation driver: a clock plus an event queue plus a handler loop.

use crate::event::{EventId, EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine over events of type `E`.
///
/// The engine owns the virtual clock and the pending-event set. Client code
/// schedules events, then calls [`Engine::run`] with a handler; the handler
/// may schedule further events (including at the current instant) and they
/// are processed in deterministic `(time, insertion)` order.
///
/// # Examples
///
/// ```
/// use simkit::{Engine, SimTime, SimDuration};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimTime::from_secs(1.0), "tick");
/// let mut log = Vec::new();
/// engine.run(|eng, ev| {
///     log.push((eng.now().as_secs(), ev));
/// });
/// assert_eq!(log, vec![(1.0, "tick")]);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Creates an engine whose pending-event set has room for `capacity`
    /// events, avoiding heap reallocation churn in event-dense simulations.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_backend(capacity, QueueBackend::Heap)
    }

    /// Creates an engine whose pending-event set uses the given
    /// [`QueueBackend`] — pick [`QueueBackend::Calendar`] for simulations
    /// with very large event populations (its pop order is pinned
    /// bit-identical to the default heap).
    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_capacity_and_backend(0, backend)
    }

    /// Combines [`Engine::with_capacity`] and [`Engine::with_backend`].
    #[must_use]
    pub fn with_capacity_and_backend(capacity: usize, backend: QueueBackend) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity_and_backend(capacity, backend),
            processed: 0,
        }
    }

    /// Returns the current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — time travel would
    /// silently corrupt causality, so it is rejected loudly.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules `event` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancels a pending event. Returns `true` if it had not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the event queue is empty, advancing the clock to each
    /// event's timestamp and invoking `handler`.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, E),
    {
        while self.step(&mut handler) {}
    }

    /// Runs until the queue is empty or the clock passes `deadline`.
    /// Events scheduled exactly at `deadline` are processed.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, E),
    {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            self.step(&mut handler);
        }
        // Advance the clock to the deadline even if no event landed on it,
        // so consecutive run_until calls observe monotonic time.
        self.now = self.now.max(deadline);
    }

    /// Processes a single event, if one is pending. Returns whether an event
    /// was processed.
    pub fn step<F>(&mut self, handler: &mut F) -> bool
    where
        F: FnMut(&mut Engine<E>, E),
    {
        match self.queue.pop() {
            Some((at, ev)) => {
                debug_assert!(at >= self.now, "event queue emitted a past event");
                self.now = at;
                self.processed += 1;
                handler(self, ev);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(5.0), Ev::Tick(1));
        e.schedule(SimTime::from_secs(2.0), Ev::Tick(0));
        let mut times = Vec::new();
        e.run(|eng, _| times.push(eng.now().as_secs()));
        assert_eq!(times, vec![2.0, 5.0]);
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        e.run(|eng, ev| {
            if let Ev::Tick(n) = ev {
                count += 1;
                if n < 9 {
                    eng.schedule_after(SimDuration::from_secs(1.0), Ev::Tick(n + 1));
                }
            }
        });
        assert_eq!(count, 10);
        assert_eq!(e.now(), SimTime::from_secs(9.0));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule(SimTime::from_secs(i as f64), Ev::Tick(i));
        }
        let mut count = 0;
        e.run_until(SimTime::from_secs(4.0), |_, _| count += 1);
        assert_eq!(count, 5, "events at t=0..=4 fire");
        assert_eq!(e.pending(), 5);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_peers() {
        let mut e = Engine::new();
        e.schedule(SimTime::ZERO, Ev::Tick(0));
        e.schedule(SimTime::ZERO, Ev::Stop);
        let mut log = Vec::new();
        e.run(|eng, ev| {
            if ev == Ev::Tick(0) {
                eng.schedule_now(Ev::Tick(99));
            }
            log.push(format!("{ev:?}"));
        });
        assert_eq!(log, vec!["Tick(0)", "Stop", "Tick(99)"]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(10.0), Ev::Stop);
        e.run(|eng, _| {
            eng.schedule(SimTime::from_secs(1.0), Ev::Stop);
        });
    }

    #[test]
    fn calendar_backend_drives_the_same_schedule() {
        let mut logs = Vec::new();
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut e = Engine::with_backend(backend);
            e.schedule(SimTime::ZERO, Ev::Tick(0));
            let mut log = Vec::new();
            e.run(|eng, ev| {
                if let Ev::Tick(n) = ev {
                    log.push((eng.now().as_secs(), n));
                    if n < 5 {
                        eng.schedule_after(SimDuration::from_secs(0.5), Ev::Tick(n + 1));
                    }
                }
            });
            assert_eq!(e.now(), SimTime::from_secs(2.5));
            logs.push(log);
        }
        assert_eq!(logs[0], logs[1], "backends replay the same schedule");
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new();
        let id = e.schedule(SimTime::from_secs(1.0), Ev::Tick(0));
        e.schedule(SimTime::from_secs(2.0), Ev::Stop);
        assert!(e.cancel(id));
        let mut fired = Vec::new();
        e.run(|_, ev| fired.push(format!("{ev:?}")));
        assert_eq!(fired, vec!["Stop"]);
    }
}
