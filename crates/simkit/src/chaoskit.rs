//! Seeded chaos search: randomized-but-deterministic episodes, an
//! invariant-violation vocabulary, and delta-debugging shrinking.
//!
//! A chaos-search campaign hunts the fault × arrival × configuration
//! space for states where a scheduler breaks one of its invariants (loses
//! a job, double-books memory, starves a tenant, wedges a breaker). The
//! pieces here are deliberately consumer-agnostic — this module knows
//! nothing about any particular scheduler:
//!
//! * an [`Episode`] is one fully materialised trial: a cluster size, an
//!   opaque configuration-preset index, explicit fault events and explicit
//!   arrival events, all drawn deterministically from a `(seed,
//!   [`EpisodeSpace`])` pair by [`Episode::draw`]. Because the events are
//!   stored verbatim (not as generator parameters), an episode survives
//!   mutation: shrinking can drop events or halve durations and the result
//!   is still a replayable episode;
//! * a [`Violation`] names the broken invariant and carries a
//!   human-readable detail line;
//! * [`shrink`] reduces a violating episode to a (greedily) minimal
//!   reproducer by delta debugging: drop chunks of fault events, drop
//!   chunks of arrivals, halve fault durations — keeping every mutation
//!   that still reproduces the *same* invariant violation, under a hard
//!   budget of invocations of the (expensive) checker.
//!
//! Determinism is the contract everywhere: `Episode::draw(seed, space)`
//! is a pure function, the checker the consumer supplies must be one too,
//! and therefore a whole search — including every shrink — replays bit
//! for bit from a single base seed. The serialised form
//! ([`Episode::to_json`]) is byte-stable for the same reason the
//! `BENCH_*.json` emitters are: floats are formatted with Rust's
//! shortest-round-trip `{:?}`, a pure function of the bits.

use crate::arrivals::{ArrivalEvent, ArrivalPlan, ArrivalPlanConfig, ArrivalProcess};
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The region of fault × arrival × configuration space episodes are drawn
/// from. The consumer fixes the universe (tenant count, job-class count,
/// preset count, horizon); the generator randomises everything inside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSpace {
    /// Smallest cluster an episode may use, nodes.
    pub min_nodes: usize,
    /// Largest cluster an episode may use, nodes.
    pub max_nodes: usize,
    /// Number of tenants arrivals are attributed to.
    pub tenants: usize,
    /// Number of job classes arrivals are drawn from (the consumer maps a
    /// class index to a concrete workload).
    pub job_classes: usize,
    /// Number of opaque configuration presets the consumer defines (e.g.
    /// closed-loop / uncontrolled / admission-controlled); each episode
    /// draws one index in `[0, presets)`.
    pub presets: usize,
    /// Horizon arrivals and faults are drawn over, seconds.
    pub horizon_secs: f64,
    /// Upper bound on the drawn fault intensity (see
    /// [`FaultPlanConfig::intensity`]).
    pub max_intensity: f64,
    /// Upper bound on the drawn spot-preemption rate.
    pub max_spot_rate: f64,
    /// Upper bound on the drawn prediction-noise log-sd.
    pub max_noise_sd: f64,
    /// Lower bound on the drawn mean arrival rate, per second.
    pub min_rate_per_sec: f64,
    /// Upper bound on the drawn mean arrival rate, per second.
    pub max_rate_per_sec: f64,
    /// Hard cap on arrivals per episode (keeps a single trial bounded).
    pub max_jobs: usize,
}

impl Default for EpisodeSpace {
    fn default() -> Self {
        EpisodeSpace {
            min_nodes: 2,
            max_nodes: 4,
            tenants: 3,
            job_classes: 1,
            presets: 1,
            horizon_secs: 4_000.0,
            max_intensity: 1.0,
            max_spot_rate: 0.5,
            max_noise_sd: 1.5,
            min_rate_per_sec: 0.000_5,
            max_rate_per_sec: 0.01,
            max_jobs: 12,
        }
    }
}

/// One fully materialised chaos trial: the drawn configuration plus the
/// explicit fault and arrival events. Mutable by construction — shrinking
/// edits the event lists directly — yet always replayable: the consumer
/// rebuilds plans with [`Episode::fault_plan`] / [`Episode::arrival_plan`]
/// and reruns its checker with [`Episode::seed`] as the schedule seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// The seed the episode was drawn from; also the schedule seed the
    /// consumer should replay with.
    pub seed: u64,
    /// Cluster size, nodes.
    pub nodes: usize,
    /// Opaque configuration-preset index in `[0, space.presets)`.
    pub preset: usize,
    /// Number of tenants arrival events reference.
    pub tenants: usize,
    /// Number of job classes arrival events reference.
    pub job_classes: usize,
    /// Horizon the events were drawn over, seconds.
    pub horizon_secs: f64,
    /// Fault events, time-sorted.
    pub faults: Vec<FaultEvent>,
    /// Arrival events, time-sorted.
    pub arrivals: Vec<ArrivalEvent>,
}

impl Episode {
    /// Draws one episode deterministically from `seed` and `space`.
    ///
    /// The configuration knobs (cluster size, preset, fault intensity,
    /// arrival process) come from a dedicated RNG stream; the fault and
    /// arrival events themselves are drawn through the existing
    /// [`FaultPlan::generate`] / [`ArrivalPlan::generate`] machinery with
    /// the repo's conventional seed offsets, so an episode's event streams
    /// are exactly what a hand-written campaign with the same parameters
    /// would replay. An episode always has at least one arrival (a
    /// zero-arrival trial is vacuous for every invariant).
    ///
    /// # Panics
    ///
    /// Panics if `space` is degenerate (zero tenants/classes/presets, an
    /// inverted node or rate range, or a non-positive horizon).
    #[must_use]
    pub fn draw(seed: u64, space: &EpisodeSpace) -> Episode {
        assert!(space.min_nodes >= 1, "need at least one node");
        assert!(space.max_nodes >= space.min_nodes, "inverted node range");
        assert!(space.tenants >= 1, "need at least one tenant");
        assert!(space.job_classes >= 1, "need at least one job class");
        assert!(space.presets >= 1, "need at least one preset");
        assert!(space.horizon_secs > 0.0, "horizon must be positive");
        assert!(
            space.max_rate_per_sec >= space.min_rate_per_sec && space.min_rate_per_sec >= 0.0,
            "inverted arrival-rate range"
        );
        let mut rng = SimRng::seed_from(seed ^ 0x00C4_A05E_A4C4_0000);
        let nodes = rng.uniform_usize(space.min_nodes, space.max_nodes);
        let preset = rng.uniform_usize(0, space.presets - 1);
        let intensity = rng.uniform(0.0, space.max_intensity.max(0.0));
        let spot_rate = rng.uniform(0.0, space.max_spot_rate.max(0.0));
        let noise_sd = rng.uniform(0.1, space.max_noise_sd.max(0.1));
        let rate = rng.uniform(space.min_rate_per_sec, space.max_rate_per_sec);
        let process = if rng.chance(0.5) {
            ArrivalProcess::Bursty {
                base_rate_per_sec: rate,
                peak_rate_per_sec: rate * rng.uniform(1.0, 4.0),
                period_secs: space.horizon_secs / rng.uniform(1.0, 4.0),
            }
        } else {
            ArrivalProcess::Poisson { rate_per_sec: rate }
        };
        let mean_outage_secs = rng.uniform(30.0, 400.0);
        let mean_dropout_secs = rng.uniform(60.0, 600.0);
        let spot_warning_secs = rng.uniform(10.0, 120.0);

        let arrival_cfg = ArrivalPlanConfig {
            process,
            horizon_secs: space.horizon_secs,
            tenants: space.tenants,
            job_classes: space.job_classes,
            max_jobs: space.max_jobs,
        };
        let mut arrivals = ArrivalPlan::generate(seed ^ 0xA441_5EED, &arrival_cfg)
            .events()
            .to_vec();
        if arrivals.is_empty() {
            arrivals.push(ArrivalEvent {
                at_secs: 0.0,
                tenant: 0,
                job_class: 0,
            });
        }
        let fault_cfg = FaultPlanConfig {
            intensity,
            horizon_secs: space.horizon_secs,
            nodes,
            apps: arrivals.len(),
            mean_outage_secs,
            mean_dropout_secs,
            noise_sd,
            spot_rate,
            spot_warning_secs,
            // Arrivals fill the cluster over time, so mispredictions may
            // strike anywhere in the horizon (the open-system convention).
            noise_window_frac: 1.0,
        };
        let faults = FaultPlan::generate(seed ^ 0xC4A0_5EED, &fault_cfg)
            .events()
            .to_vec();
        Episode {
            seed,
            nodes,
            preset,
            tenants: space.tenants,
            job_classes: space.job_classes,
            horizon_secs: space.horizon_secs,
            faults,
            arrivals,
        }
    }

    /// The episode's fault events as a replayable [`FaultPlan`].
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::from_events(self.faults.clone())
    }

    /// The episode's arrival events as a replayable [`ArrivalPlan`].
    #[must_use]
    pub fn arrival_plan(&self) -> ArrivalPlan {
        ArrivalPlan::from_trace(self.arrivals.clone(), self.horizon_secs)
    }

    /// Byte-stable JSON rendering of the episode — the reproducer format
    /// the chaos-search record embeds. Same bits in, same bytes out.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seed\":{},\"nodes\":{},\"preset\":{},\"tenants\":{},\"job_classes\":{},\
             \"horizon_secs\":{},\"faults\":[",
            self.seed,
            self.nodes,
            self.preset,
            self.tenants,
            self.job_classes,
            fmt_num(self.horizon_secs),
        );
        for (i, event) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_fault_json(&mut out, event);
        }
        out.push_str("],\"arrivals\":[");
        for (i, event) in self.arrivals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_secs\":{},\"tenant\":{},\"job_class\":{}}}",
                fmt_num(event.at_secs),
                event.tenant,
                event.job_class,
            );
        }
        out.push_str("]}");
        out
    }
}

/// Shortest-round-trip JSON number (non-finite values become `null`).
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn push_fault_json(out: &mut String, event: &FaultEvent) {
    let at = fmt_num(event.at_secs);
    let _ = match event.kind {
        FaultKind::NodeCrash { node, outage_secs } => write!(
            out,
            "{{\"at_secs\":{at},\"kind\":\"node_crash\",\"node\":{node},\"outage_secs\":{}}}",
            fmt_num(outage_secs)
        ),
        FaultKind::ExecutorCrash { node } => write!(
            out,
            "{{\"at_secs\":{at},\"kind\":\"executor_crash\",\"node\":{node}}}"
        ),
        FaultKind::MonitorDropout {
            node,
            duration_secs,
        } => write!(
            out,
            "{{\"at_secs\":{at},\"kind\":\"monitor_dropout\",\"node\":{node},\
             \"duration_secs\":{}}}",
            fmt_num(duration_secs)
        ),
        FaultKind::PredictionNoise { app, factor } => write!(
            out,
            "{{\"at_secs\":{at},\"kind\":\"prediction_noise\",\"app\":{app},\"factor\":{}}}",
            fmt_num(factor)
        ),
        FaultKind::SpotPreemption {
            node,
            warning_secs,
            outage_secs,
        } => write!(
            out,
            "{{\"at_secs\":{at},\"kind\":\"spot_preemption\",\"node\":{node},\
             \"warning_secs\":{},\"outage_secs\":{}}}",
            fmt_num(warning_secs),
            fmt_num(outage_secs)
        ),
    };
}

/// One broken invariant: which one, and what the checker saw.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable name of the broken invariant (e.g. `"job-conservation"`).
    /// Shrinking only accepts mutations that reproduce the *same* name.
    pub invariant: String,
    /// Human-readable description of what was observed.
    pub detail: String,
}

impl Violation {
    /// Builds a violation from an invariant name and a detail line.
    #[must_use]
    pub fn new(invariant: impl Into<String>, detail: impl Into<String>) -> Self {
        Violation {
            invariant: invariant.into(),
            detail: detail.into(),
        }
    }
}

/// Outcome of one [`shrink`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkResult {
    /// The minimal episode found (greedy 1-minimal under chunk removal
    /// unless the budget ran out first).
    pub episode: Episode,
    /// The violation the minimal episode reproduces.
    pub violation: Violation,
    /// Checker invocations consumed.
    pub checks: usize,
    /// Whether the budget ran out before reaching a fixpoint.
    pub exhausted: bool,
}

struct Shrinker<F> {
    check: F,
    budget: usize,
    checks: usize,
    exhausted: bool,
}

impl<F: FnMut(&Episode) -> Option<Violation>> Shrinker<F> {
    /// Runs the checker on a candidate, accepting it only if it reproduces
    /// the invariant being shrunk. A spent budget rejects everything.
    fn reproduces(&mut self, candidate: &Episode, invariant: &str) -> Option<Violation> {
        if self.checks >= self.budget {
            self.exhausted = true;
            return None;
        }
        self.checks += 1;
        (self.check)(candidate).filter(|v| v.invariant == invariant)
    }

    /// ddmin-style chunk removal over the fault list: try dropping blocks
    /// of halving size, keeping every drop that still reproduces.
    fn drop_fault_chunks(
        &mut self,
        invariant: &str,
        best: &mut Episode,
        kept: &mut Violation,
    ) -> bool {
        let mut progress = false;
        let mut chunk = best.faults.len().div_ceil(2).max(1);
        while !best.faults.is_empty() {
            let mut reduced = false;
            let mut start = 0;
            while start < best.faults.len() {
                let end = (start + chunk).min(best.faults.len());
                let mut candidate = best.clone();
                candidate.faults.drain(start..end);
                if let Some(v) = self.reproduces(&candidate, invariant) {
                    *best = candidate;
                    *kept = v;
                    reduced = true;
                    progress = true;
                } else {
                    start = end;
                }
                if self.exhausted {
                    return progress;
                }
            }
            if chunk == 1 {
                if !reduced {
                    break;
                }
            } else {
                chunk = (chunk / 2).max(1);
            }
        }
        progress
    }

    /// Same chunk removal over the arrival list.
    fn drop_arrival_chunks(
        &mut self,
        invariant: &str,
        best: &mut Episode,
        kept: &mut Violation,
    ) -> bool {
        let mut progress = false;
        let mut chunk = best.arrivals.len().div_ceil(2).max(1);
        while !best.arrivals.is_empty() {
            let mut reduced = false;
            let mut start = 0;
            while start < best.arrivals.len() {
                let end = (start + chunk).min(best.arrivals.len());
                let mut candidate = best.clone();
                candidate.arrivals.drain(start..end);
                if let Some(v) = self.reproduces(&candidate, invariant) {
                    *best = candidate;
                    *kept = v;
                    reduced = true;
                    progress = true;
                } else {
                    start = end;
                }
                if self.exhausted {
                    return progress;
                }
            }
            if chunk == 1 {
                if !reduced {
                    break;
                }
            } else {
                chunk = (chunk / 2).max(1);
            }
        }
        progress
    }

    /// Halves each fault duration (and pulls prediction-noise factors
    /// halfway toward 1) while the violation persists.
    fn halve_durations(
        &mut self,
        invariant: &str,
        best: &mut Episode,
        kept: &mut Violation,
    ) -> bool {
        let mut progress = false;
        loop {
            let mut any = false;
            for i in 0..best.faults.len() {
                while let Some(kind) = halved_kind(&best.faults[i].kind) {
                    let mut candidate = best.clone();
                    candidate.faults[i].kind = kind;
                    if let Some(v) = self.reproduces(&candidate, invariant) {
                        *best = candidate;
                        *kept = v;
                        any = true;
                        progress = true;
                    } else {
                        break;
                    }
                    if self.exhausted {
                        return progress;
                    }
                }
            }
            if !any || self.exhausted {
                break;
            }
        }
        progress
    }
}

/// A halved version of a fault's duration fields, or `None` once every
/// field is at its floor (1 s for durations, ±5 % around 1 for factors).
fn halved_kind(kind: &FaultKind) -> Option<FaultKind> {
    match *kind {
        FaultKind::NodeCrash { node, outage_secs } if outage_secs > 1.0 => {
            Some(FaultKind::NodeCrash {
                node,
                outage_secs: outage_secs / 2.0,
            })
        }
        FaultKind::MonitorDropout {
            node,
            duration_secs,
        } if duration_secs > 1.0 => Some(FaultKind::MonitorDropout {
            node,
            duration_secs: duration_secs / 2.0,
        }),
        FaultKind::PredictionNoise { app, factor } if (factor - 1.0).abs() > 0.05 => {
            Some(FaultKind::PredictionNoise {
                app,
                factor: 1.0 + (factor - 1.0) / 2.0,
            })
        }
        FaultKind::SpotPreemption {
            node,
            warning_secs,
            outage_secs,
        } if outage_secs > 1.0 || warning_secs > 1.0 => Some(FaultKind::SpotPreemption {
            node,
            warning_secs: if warning_secs > 1.0 {
                warning_secs / 2.0
            } else {
                warning_secs
            },
            outage_secs: if outage_secs > 1.0 {
                outage_secs / 2.0
            } else {
                outage_secs
            },
        }),
        _ => None,
    }
}

/// Delta-debugs `original` down to a minimal episode that still
/// reproduces `violation.invariant`, invoking `check` at most `budget`
/// times.
///
/// The passes alternate until a fixpoint: drop fault chunks, drop arrival
/// chunks, halve fault durations. Every accepted mutation must reproduce
/// the *same* invariant name — a mutation that surfaces a different
/// violation is rejected, so the reproducer stays tied to the bug being
/// shrunk. With a deterministic checker the whole run is deterministic.
#[must_use]
pub fn shrink<F>(original: &Episode, violation: Violation, budget: usize, check: F) -> ShrinkResult
where
    F: FnMut(&Episode) -> Option<Violation>,
{
    let invariant = violation.invariant.clone();
    let mut shrinker = Shrinker {
        check,
        budget,
        checks: 0,
        exhausted: false,
    };
    let mut best = original.clone();
    let mut kept = violation;
    loop {
        let mut progress = false;
        progress |= shrinker.drop_fault_chunks(&invariant, &mut best, &mut kept);
        progress |= shrinker.drop_arrival_chunks(&invariant, &mut best, &mut kept);
        progress |= shrinker.halve_durations(&invariant, &mut best, &mut kept);
        if !progress || shrinker.exhausted {
            break;
        }
    }
    ShrinkResult {
        episode: best,
        violation: kept,
        checks: shrinker.checks,
        exhausted: shrinker.exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> EpisodeSpace {
        EpisodeSpace {
            presets: 3,
            job_classes: 4,
            max_rate_per_sec: 0.02,
            ..EpisodeSpace::default()
        }
    }

    #[test]
    fn same_seed_same_episode_bitwise() {
        let a = Episode::draw(7, &space());
        let b = Episode::draw(7, &space());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Episode::draw(1, &space());
        let b = Episode::draw(2, &space());
        assert_ne!(a, b);
    }

    #[test]
    fn episodes_stay_inside_their_space() {
        let s = space();
        for seed in 0..32 {
            let e = Episode::draw(seed, &s);
            assert!((s.min_nodes..=s.max_nodes).contains(&e.nodes));
            assert!(e.preset < s.presets);
            assert!(!e.arrivals.is_empty(), "episodes are never vacuous");
            assert!(e.arrivals.len() <= s.max_jobs);
            for a in &e.arrivals {
                assert!(a.tenant < s.tenants);
                assert!(a.job_class < s.job_classes);
                assert!(a.at_secs >= 0.0 && a.at_secs < s.horizon_secs);
            }
            for f in &e.faults {
                assert!(f.at_secs >= 0.0 && f.at_secs < s.horizon_secs);
            }
        }
    }

    #[test]
    fn plans_round_trip_the_events() {
        let e = Episode::draw(11, &space());
        assert_eq!(e.fault_plan().events(), &e.faults[..]);
        assert_eq!(e.arrival_plan().events(), &e.arrivals[..]);
        assert_eq!(e.arrival_plan().horizon_secs(), e.horizon_secs);
    }

    /// A synthetic checker: the "bug" fires iff the episode still contains
    /// a node-crash on node 0 AND at least two arrivals. The shrinker must
    /// find a 1-fault, 2-arrival reproducer.
    fn synthetic_check(e: &Episode) -> Option<Violation> {
        let crash = e
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::NodeCrash { node: 0, .. }));
        if crash && e.arrivals.len() >= 2 {
            Some(Violation::new("synthetic", "crash on node 0 with 2 jobs"))
        } else {
            None
        }
    }

    #[test]
    fn shrinking_reaches_the_minimal_reproducer() {
        let mut episode = Episode::draw(5, &space());
        // Make sure the bug is present regardless of the draw.
        episode.faults.push(FaultEvent {
            at_secs: 1.0,
            kind: FaultKind::NodeCrash {
                node: 0,
                outage_secs: 640.0,
            },
        });
        while episode.arrivals.len() < 3 {
            episode.arrivals.push(ArrivalEvent {
                at_secs: 0.0,
                tenant: 0,
                job_class: 0,
            });
        }
        let violation = synthetic_check(&episode).expect("bug must be present");
        let result = shrink(&episode, violation, 10_000, synthetic_check);
        assert!(!result.exhausted);
        assert_eq!(result.episode.faults.len(), 1, "one fault suffices");
        assert_eq!(result.episode.arrivals.len(), 2, "two arrivals suffice");
        assert!(matches!(
            result.episode.faults[0].kind,
            FaultKind::NodeCrash { node: 0, outage_secs } if outage_secs <= 1.0
        ));
        // The reproducer still reproduces.
        assert!(synthetic_check(&result.episode).is_some());
        assert!(result.checks > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let mut episode = Episode::draw(9, &space());
        episode.faults.push(FaultEvent {
            at_secs: 2.0,
            kind: FaultKind::NodeCrash {
                node: 0,
                outage_secs: 100.0,
            },
        });
        let violation = synthetic_check(&episode);
        if let Some(v) = violation {
            let a = shrink(&episode, v.clone(), 10_000, synthetic_check);
            let b = shrink(&episode, v, 10_000, synthetic_check);
            assert_eq!(a.episode, b.episode);
            assert_eq!(a.checks, b.checks);
        }
    }

    #[test]
    fn shrink_budget_is_respected() {
        let mut episode = Episode::draw(5, &space());
        episode.faults.push(FaultEvent {
            at_secs: 1.0,
            kind: FaultKind::NodeCrash {
                node: 0,
                outage_secs: 640.0,
            },
        });
        while episode.arrivals.len() < 3 {
            episode.arrivals.push(ArrivalEvent {
                at_secs: 0.0,
                tenant: 0,
                job_class: 0,
            });
        }
        let violation = synthetic_check(&episode).expect("bug must be present");
        let result = shrink(&episode, violation, 3, synthetic_check);
        assert!(result.checks <= 3);
        assert!(result.exhausted);
        // Whatever came out still reproduces the violation.
        assert!(synthetic_check(&result.episode).is_some());
    }

    #[test]
    fn mutations_that_change_the_invariant_are_rejected() {
        // Checker that reports a *different* invariant once faults drop
        // below 2: shrinking must not follow it below that line.
        let check = |e: &Episode| -> Option<Violation> {
            if e.faults.len() >= 2 {
                Some(Violation::new("primary", "two faults"))
            } else {
                Some(Violation::new("secondary", "one fault"))
            }
        };
        let mut episode = Episode::draw(3, &space());
        while episode.faults.len() < 4 {
            episode.faults.push(FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::ExecutorCrash { node: 0 },
            });
        }
        let result = shrink(
            &episode,
            Violation::new("primary", "two faults"),
            10_000,
            check,
        );
        assert_eq!(result.episode.faults.len(), 2);
        assert_eq!(result.violation.invariant, "primary");
    }

    #[test]
    fn episode_json_is_stable_and_complete() {
        let e = Episode::draw(13, &space());
        let json = e.to_json();
        assert!(json.starts_with("{\"seed\":13,"));
        assert!(json.contains("\"faults\":["));
        assert!(json.contains("\"arrivals\":["));
        assert_eq!(json, e.to_json());
    }
}
