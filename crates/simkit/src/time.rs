//! Virtual-clock types: [`SimTime`] (an instant) and [`SimDuration`] (a span).
//!
//! Both wrap an `f64` number of seconds. Simulated campaigns span from
//! sub-second profiling runs to multi-hour schedules, so a floating-point
//! clock with ~15 significant digits is more than precise enough and keeps
//! arithmetic trivial. The newtypes exist so that instants and spans cannot
//! be mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; construction from a non-finite or negative
/// value is rejected by [`SimTime::from_secs`] (panics), keeping the total
/// order sound.
///
/// # Examples
///
/// ```
/// use simkit::{SimTime, SimDuration};
/// let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
/// assert_eq!(t.as_secs(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May be zero but never negative.
///
/// # Examples
///
/// ```
/// use simkit::SimDuration;
/// let d = SimDuration::from_secs(90.0);
/// assert_eq!(d.as_mins(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the start of the run.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite; such values would
    /// poison the event queue's total order.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates an instant `mins` minutes after the start of the run.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs`].
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        SimTime::from_secs(mins * 60.0)
    }

    /// Returns the number of seconds since the start of the run.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the number of minutes since the start of the run.
    #[must_use]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a negative duration).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a span of `mins` minutes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimDuration::from_secs`].
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        SimDuration::from_secs(mins * 60.0)
    }

    /// Creates a span of `hours` hours.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimDuration::from_secs`].
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        SimDuration::from_secs(hours * 3600.0)
    }

    /// Returns the span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the span in minutes.
    #[must_use]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the span in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns `true` if the span has zero length.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// The dimensionless ratio of two spans.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

// `SimTime` values are always finite (enforced at construction), so the
// total order is genuine. Eq/Ord are implemented manually because f64 only
// offers PartialOrd.
impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Eq for SimDuration {}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is always finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(100.0);
        let d = SimDuration::from_secs(40.0);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn minutes_and_hours_convert() {
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_hours(1.0).as_mins(), 60.0);
        assert_eq!(SimTime::from_mins(3.0).as_secs(), 180.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_from_subtraction_rejected() {
        let _ = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 2.5).as_secs(), 25.0);
        assert_eq!((d / 4.0).as_secs(), 2.5);
        assert_eq!(d / SimDuration::from_secs(4.0), 2.5);
    }

    #[test]
    fn duration_sums() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
    }
}
