//! A deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by `(SimTime, sequence)`:
//! events fire in timestamp order, and events scheduled for the same instant
//! fire in the order they were inserted. That tie-break is what makes whole
//! campaigns bit-for-bit replayable from a seed.
//!
//! Two interchangeable backends store the pending set, selected at
//! construction via [`QueueBackend`]:
//!
//! * a **binary heap** — O(log n) push/pop, the reference structure;
//! * a **calendar queue** (bucketed timing wheel, Brown 1988) — amortized
//!   O(1) push/pop under the roughly uniform event populations long
//!   simulations produce, with automatic bucket-count/width resizing and a
//!   lazy *overflow day* holding far-future events until the wheel reaches
//!   their day. Pop order is pinned bit-identical to the heap (the same
//!   `(SimTime, sequence)` key) by a property-test oracle.
//!
//! Lifecycle bookkeeping (which sequence numbers are live, cancelled or
//! already fired) lives in a slab: a `VecDeque` of one-byte states indexed
//! by `sequence - base`, rather than a pair of hash sets. Every push, pop
//! and cancel is hash-free, and retired prefixes — fired *and* cancelled
//! slots — compact away eagerly so the slab's size tracks the *span* of
//! live events, not the total ever scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Which data structure backs an [`EventQueue`]'s pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Binary heap: O(log n) push/pop. The default and the reference
    /// implementation the calendar queue is pinned against.
    #[default]
    Heap,
    /// Calendar queue: a bucketed timing wheel with automatic resizing and
    /// a lazy overflow day. Amortized O(1) push/pop when event times are
    /// spread roughly evenly, which is what large simulations produce.
    Calendar,
}

/// Lifecycle of one scheduled sequence number.
///
/// Invariant: an event's pending-set entry exists iff its slot is `Live`
/// or `Cancelled` — or the slot was `Cancelled` and has already compacted
/// below `base_seq`, in which case the buried tombstone is recognised by
/// `slot()` returning `None` and skipped without bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Live,
    Cancelled,
    Fired,
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order is reversed so the BinaryHeap (a max-heap) pops the earliest event,
// and among equal timestamps the lowest sequence number.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .field("payload", &self.payload)
            .finish()
    }
}

/// Inserts into a vec kept sorted **descending** by `(at, seq)`, so the
/// earliest entry sits at the end for O(1) removal.
fn insert_desc<E>(v: &mut Vec<Scheduled<E>>, ev: Scheduled<E>) {
    let key = (ev.at, ev.seq);
    let idx = v.partition_point(|e| (e.at, e.seq) > key);
    v.insert(idx, ev);
}

/// Smallest bucket count the calendar queue shrinks to.
const MIN_BUCKETS: usize = 16;

/// A calendar queue (bucketed timing wheel).
///
/// Bucket `b` — an *absolute*, unwrapped index — covers times
/// `[b·width, (b+1)·width)` and is stored at `b % nbuckets`. A *day* is one
/// full wheel of `nbuckets` buckets. The cursor walks buckets in absolute
/// order; events in days after the cursor's live in the lazily sorted
/// `overflow` list and migrate into the wheel when the cursor reaches their
/// day, so one distant timer never forces a sparse scan of the whole wheel.
///
/// Buckets may also hold events from *later laps* (same wrapped index,
/// later day) after a cursor rewind; the pop path tolerates this by
/// checking each candidate's absolute bucket against the cursor.
#[derive(Debug)]
struct CalendarQueue<E> {
    /// Bucket width in seconds.
    width: f64,
    /// Each bucket sorted descending by `(at, seq)`: its earliest event is
    /// at the end.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Absolute bucket index the cursor is on: no pending event maps to an
    /// earlier absolute bucket.
    cur_abs: u64,
    /// The overflow day: events in days after the cursor's. Kept
    /// unsorted so overflow pushes stay O(1) — near a day boundary most
    /// pushes land here, and a sorted insert would cost O(len) each —
    /// and sorted descending by `(at, seq)` lazily, at most once per day
    /// crossing (see [`CalendarQueue::sort_overflow`]).
    overflow: Vec<Scheduled<E>>,
    /// Whether `overflow` is currently sorted descending by `(at, seq)`.
    overflow_sorted: bool,
    len: usize,
}

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue {
            width: 1.0,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            cur_abs: 0,
            overflow: Vec::new(),
            overflow_sorted: true,
            len: 0,
        }
    }

    fn nbuckets(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Absolute bucket index of a timestamp. The `f64 → u64` cast
    /// saturates, so far-future times clamp to the last representable
    /// bucket and still order correctly within it by `(at, seq)`.
    fn abs_bucket(&self, at: SimTime) -> u64 {
        (at.as_secs() / self.width) as u64
    }

    fn push(&mut self, ev: Scheduled<E>) {
        if self.len + 1 > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        let abs = self.abs_bucket(ev.at);
        if abs < self.cur_abs {
            // Behind the cursor: rewind. Placement is by absolute time, so
            // existing entries stay put; the overflow-day invariant (days
            // strictly after the cursor's) also survives a decrease.
            self.cur_abs = abs;
        }
        let n = self.nbuckets();
        if abs / n <= self.cur_abs / n {
            insert_desc(&mut self.buckets[(abs % n) as usize], ev);
        } else {
            self.overflow.push(ev);
            self.overflow_sorted = false;
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let b = self.position_min()?;
        let ev = self.buckets[b].pop();
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        ev
    }

    fn peek(&mut self) -> Option<&Scheduled<E>> {
        let b = self.position_min()?;
        self.buckets[b].last()
    }

    /// Advances the cursor to the bucket whose last entry is the earliest
    /// pending event and returns that bucket's wrapped index.
    fn position_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let n = self.nbuckets();
        for _ in 0..n {
            let b = (self.cur_abs % n) as usize;
            if let Some(last) = self.buckets[b].last() {
                if self.abs_bucket(last.at) == self.cur_abs {
                    return Some(b);
                }
            }
            self.cur_abs += 1;
            if self.cur_abs.is_multiple_of(n) {
                self.migrate_day();
            }
        }
        // A whole lap without a hit: every pending event is at least a day
        // out. Jump straight to the earliest one instead of spinning.
        self.direct_seek();
        Some((self.cur_abs % n) as usize)
    }

    /// Restores the overflow's descending `(at, seq)` order if pushes
    /// have disturbed it. Sorting is deterministic (the key is unique) and
    /// amortized: once sorted, the list stays sorted until the next
    /// overflow push.
    fn sort_overflow(&mut self) {
        if !self.overflow_sorted {
            self.overflow
                .sort_unstable_by_key(|ev| std::cmp::Reverse((ev.at, ev.seq)));
            self.overflow_sorted = true;
        }
    }

    /// Pulls overflow events whose day the cursor has reached into their
    /// buckets.
    fn migrate_day(&mut self) {
        self.sort_overflow();
        let n = self.nbuckets();
        let day = self.cur_abs / n;
        while self
            .overflow
            .last()
            .is_some_and(|ev| self.abs_bucket(ev.at) / n <= day)
        {
            let Some(ev) = self.overflow.pop() else {
                break;
            };
            let idx = (self.abs_bucket(ev.at) % n) as usize;
            insert_desc(&mut self.buckets[idx], ev);
        }
    }

    /// Sets the cursor to the absolute bucket of the earliest pending
    /// event (buckets and overflow considered), migrating the overflow day
    /// forward if the jump crossed into it.
    fn direct_seek(&mut self) {
        let mut best: Option<(SimTime, u64)> = None;
        for bucket in &self.buckets {
            if let Some(ev) = bucket.last() {
                let key = (ev.at, ev.seq);
                if best.is_none_or(|k| key < k) {
                    best = Some(key);
                }
            }
        }
        self.sort_overflow();
        if let Some(ev) = self.overflow.last() {
            let key = (ev.at, ev.seq);
            if best.is_none_or(|k| key < k) {
                best = Some(key);
            }
        }
        if let Some((at, _)) = best {
            self.cur_abs = self.abs_bucket(at);
            self.migrate_day();
        }
    }

    /// Redistributes every pending event across `new_len` buckets, with
    /// the bucket width re-estimated from the population's average event
    /// separation (≈3 separations per bucket, Brown's rule) so occupancy
    /// stays O(1) per bucket as the queue grows and shrinks. Entirely
    /// deterministic: the new layout is a function of the queue contents.
    fn resize(&mut self, new_len: usize) {
        let new_len = new_len.max(MIN_BUCKETS);
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        all.append(&mut self.overflow);
        all.sort_unstable_by_key(|ev| (ev.at, ev.seq));
        if all.len() >= 2 {
            let span = all[all.len() - 1].at.as_secs() - all[0].at.as_secs();
            let separation = span / (all.len() - 1) as f64;
            if separation.is_finite() && separation > 0.0 {
                self.width = separation * 3.0;
            }
        }
        if self.buckets.len() != new_len {
            self.buckets = (0..new_len).map(|_| Vec::new()).collect();
        }
        self.cur_abs = all.first().map_or(0, |ev| self.abs_bucket(ev.at));
        let n = new_len as u64;
        let day = self.cur_abs / n;
        // Descending iteration keeps each destination sorted descending
        // with plain pushes.
        for ev in all.into_iter().rev() {
            let abs = self.abs_bucket(ev.at);
            if abs / n <= day {
                self.buckets[(abs % n) as usize].push(ev);
            } else {
                self.overflow.push(ev);
            }
        }
        // The descending rebuild leaves the overflow sorted.
        self.overflow_sorted = true;
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.overflow_sorted = true;
        self.cur_abs = 0;
        self.len = 0;
    }

    fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.overflow.capacity()
    }

    fn shrink_to_fit(&mut self) {
        for bucket in &mut self.buckets {
            bucket.shrink_to_fit();
        }
        self.overflow.shrink_to_fit();
    }
}

/// The backend-dispatched pending set. Both variants store and return
/// whole [`Scheduled`] entries in `(at, seq)` order; the lifecycle slab in
/// [`EventQueue`] is backend-agnostic.
#[derive(Debug)]
enum Pending<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Calendar(CalendarQueue<E>),
}

impl<E> Pending<E> {
    fn push(&mut self, ev: Scheduled<E>) {
        match self {
            Pending::Heap(h) => h.push(ev),
            Pending::Calendar(c) => c.push(ev),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            Pending::Heap(h) => h.pop(),
            Pending::Calendar(c) => c.pop(),
        }
    }

    /// Key of the earliest entry. Takes `&mut self`: the calendar queue
    /// repositions its cursor to answer.
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Pending::Heap(h) => h.peek().map(|ev| (ev.at, ev.seq)),
            Pending::Calendar(c) => c.peek().map(|ev| (ev.at, ev.seq)),
        }
    }

    fn clear(&mut self) {
        match self {
            Pending::Heap(h) => h.clear(),
            Pending::Calendar(c) => c.clear(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            Pending::Heap(h) => h.reserve(additional),
            // Calendar buckets grow organically as events land in them.
            Pending::Calendar(_) => {}
        }
    }

    fn capacity(&self) -> usize {
        match self {
            Pending::Heap(h) => h.capacity(),
            Pending::Calendar(c) => c.capacity(),
        }
    }

    fn shrink_to_fit(&mut self) {
        match self {
            Pending::Heap(h) => h.shrink_to_fit(),
            Pending::Calendar(c) => c.shrink_to_fit(),
        }
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled for a [`SimTime`] and popped in
/// `(time, insertion order)` order. Cancellation is lazy: a cancelled event
/// stays in the pending set but is skipped when reached.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    pending: Pending<E>,
    next_seq: u64,
    /// Lifecycle slab: state of sequence number `base_seq + i` at index
    /// `i`. Sequences below `base_seq` have retired and been compacted out.
    states: VecDeque<Slot>,
    base_seq: u64,
    /// Number of `Slot::Live` entries (= the queue's length).
    live_count: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty heap-backed queue.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity_and_backend(0, QueueBackend::Heap)
    }

    /// Creates an empty queue on the given backend.
    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_capacity_and_backend(0, backend)
    }

    /// Creates an empty heap-backed queue with room for `capacity` pending
    /// events, so a simulation with a known event population never
    /// reallocates the heap mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_backend(capacity, QueueBackend::Heap)
    }

    /// Creates an empty queue on the given backend with room for
    /// `capacity` pending events (a hint the calendar backend ignores:
    /// its buckets size themselves from the live population).
    #[must_use]
    pub fn with_capacity_and_backend(capacity: usize, backend: QueueBackend) -> Self {
        let pending = match backend {
            QueueBackend::Heap => Pending::Heap(BinaryHeap::with_capacity(capacity)),
            QueueBackend::Calendar => Pending::Calendar(CalendarQueue::new()),
        };
        EventQueue {
            pending,
            next_seq: 0,
            states: VecDeque::with_capacity(capacity),
            base_seq: 0,
            live_count: 0,
        }
    }

    /// The backend this queue was constructed with.
    #[must_use]
    pub fn backend(&self) -> QueueBackend {
        match self.pending {
            Pending::Heap(_) => QueueBackend::Heap,
            Pending::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Reserves room for at least `additional` more pending events on top
    /// of the current length.
    pub fn reserve(&mut self, additional: usize) {
        self.pending.reserve(additional);
        self.states.reserve(additional);
    }

    /// Number of events the pending set can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.pending.capacity()
    }

    /// State slot of `seq`, if it is still tracked (not compacted away and
    /// not from a different queue).
    fn slot(&self, seq: u64) -> Option<Slot> {
        let idx = seq.checked_sub(self.base_seq)?;
        self.states.get(usize::try_from(idx).ok()?).copied()
    }

    fn set_slot(&mut self, seq: u64, slot: Slot) {
        debug_assert!(seq >= self.base_seq);
        let idx = (seq - self.base_seq) as usize;
        self.states[idx] = slot;
    }

    /// Drops the retired prefix of the slab: `Fired` slots have left the
    /// pending set, and a leading `Cancelled` slot needs no bookkeeping
    /// either — its tombstone is recognised later by its sequence falling
    /// below `base_seq`. Compacting both keeps cancel-heavy workloads from
    /// holding a needlessly long slab span.
    fn compact_front(&mut self) {
        while matches!(self.states.front(), Some(Slot::Fired | Slot::Cancelled)) {
            self.states.pop_front();
            self.base_seq += 1;
        }
    }

    /// Schedules `payload` to fire at `at`; returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.pending.push(Scheduled {
            at,
            seq: self.next_seq,
            payload,
        });
        self.states.push_back(Slot::Live);
        self.live_count += 1;
        self.next_seq += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.slot(id.0) == Some(Slot::Live) {
            self.set_slot(id.0, Slot::Cancelled);
            self.live_count -= 1;
            self.compact_front();
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.pending.pop() {
            match self.slot(ev.seq) {
                Some(Slot::Live) => {
                    self.set_slot(ev.seq, Slot::Fired);
                    self.compact_front();
                    self.live_count -= 1;
                    return Some((ev.at, ev.payload));
                }
                Some(_) => {
                    // A cancelled tombstone still tracked: retire its slot.
                    self.set_slot(ev.seq, Slot::Fired);
                    self.compact_front();
                }
                // Below base_seq: a cancelled tombstone whose slot already
                // compacted away. Nothing left to record.
                None => {}
            }
        }
        None
    }

    /// Returns the timestamp of the earliest live event without removing
    /// it. Cancelled tombstones reached at the head are discarded as a
    /// side effect (which is why this takes `&mut self`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some((at, seq)) = self.pending.peek_key() {
            if self.slot(seq) == Some(Slot::Live) {
                return Some(at);
            }
            // Tombstone: drop the pending entry and retire its slot if it
            // has not already compacted away.
            let _ = self.pending.pop();
            if self.slot(seq).is_some() {
                self.set_slot(seq, Slot::Fired);
                self.compact_front();
            }
        }
        None
    }

    /// Returns the number of live (not fired, not cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Returns `true` if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event. Capacity is retained; call
    /// [`EventQueue::shrink_to_fit`] afterwards to release it when the
    /// queue is reused across differently sized runs.
    pub fn clear(&mut self) {
        self.pending.clear();
        self.states.clear();
        self.base_seq = self.next_seq;
        self.live_count = 0;
    }

    /// Releases excess capacity held by the pending set and the lifecycle
    /// slab — the `clear`-then-shrink path keeps long campaigns from
    /// holding peak-size allocations across mixes.
    pub fn shrink_to_fit(&mut self) {
        self.pending.shrink_to_fit();
        self.states.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Runs a closure against a queue on each backend in turn, so the
    /// behavioral tests below pin both implementations.
    fn on_both_backends(mut check: impl FnMut(EventQueue<i64>)) {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            check(EventQueue::with_backend(backend));
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_both_backends(|mut q| {
            q.push(t(3.0), 3);
            q.push(t(1.0), 1);
            q.push(t(2.0), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "{:?}", q.backend());
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        on_both_backends(|mut q| {
            for i in 0..10 {
                q.push(t(5.0), i);
            }
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{:?}", q.backend());
        });
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let keep = q.push(t(1.0), "keep");
        let drop = q.push(t(0.5), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let _ = keep;
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        on_both_backends(|mut q| {
            let head = q.push(t(1.0), 1);
            q.push(t(2.0), 2);
            q.cancel(head);
            assert_eq!(q.peek_time(), Some(t(2.0)), "{:?}", q.backend());
        });
    }

    #[test]
    fn peek_time_discards_multiple_tombstones_and_preserves_live_head() {
        // Regression for the cancelled-head path: several tombstones in a
        // row must all be skipped, the cancelled ids must stay dead (a
        // later cancel of them returns false), and the surviving head must
        // still pop normally after the peek.
        on_both_backends(|mut q| {
            let a = q.push(t(1.0), 1);
            let b = q.push(t(1.5), 2);
            q.push(t(2.0), 3);
            q.cancel(a);
            q.cancel(b);
            assert_eq!(q.peek_time(), Some(t(2.0)));
            assert_eq!(q.len(), 1);
            assert!(!q.cancel(a), "tombstone discarded by peek stays dead");
            assert!(!q.cancel(b));
            assert_eq!(q.pop().map(|(_, e)| e), Some(3));
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), 1);
        assert!(q.pop().is_some());
        assert!(
            !q.cancel(id),
            "cancelling an already-fired event is a no-op"
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let before = q.capacity();
        for i in 0..64 {
            q.push(t(i as f64), i);
        }
        assert_eq!(q.capacity(), before, "no reallocation within capacity");
        q.reserve(128);
        assert!(q.capacity() >= 64 + 128);
        // Queue semantics are unchanged.
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
    }

    #[test]
    fn clear_empties_queue() {
        on_both_backends(|mut q| {
            let id = q.push(t(1.0), 1);
            q.clear();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
            assert!(!q.cancel(id), "cleared events cannot be cancelled");
            // The queue remains usable with fresh sequence numbers.
            q.push(t(2.0), 2);
            assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        });
    }

    #[test]
    fn fired_bookkeeping_compacts_eagerly() {
        // Popping in seq order leaves no slab entries behind; interleaved
        // cancels retire with the heap tombstones they shadow.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100).map(|i| q.push(t(i as f64), i)).collect();
        for id in ids.iter().skip(1).step_by(2) {
            q.cancel(*id);
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 50);
        assert_eq!(q.states.len(), 0, "all slots compacted after drain");
        assert_eq!(q.base_seq, 100);
    }

    #[test]
    fn cancelled_prefix_compacts_eagerly() {
        // A leading run of cancellations must not hold slab slots: only
        // the live span remains tracked, and the buried tombstones drain
        // invisibly when the pending set reaches them.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100).map(|i| q.push(t(i as f64), i)).collect();
        for id in &ids[..60] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 40);
        assert_eq!(q.states.len(), 40, "cancelled prefix compacted away");
        assert_eq!(q.base_seq, 60);
        // Cancelling a compacted id again stays false.
        assert!(!q.cancel(ids[0]));
        // The live events still pop in order through the buried tombstones.
        assert_eq!(q.pop().map(|(_, e)| e), Some(60));
        assert_eq!(q.base_seq, 61);
        // Interleaved cancel/pop keeps the slab span equal to the live span.
        q.cancel(ids[61]);
        assert_eq!(q.base_seq, 62, "front cancel compacts immediately");
        assert_eq!(q.pop().map(|(_, e)| e), Some(62));
        assert_eq!(q.len(), 37);
        assert_eq!(
            q.states.len(),
            37,
            "slab span tracks live events under interleaved cancel/pop"
        );
        // peek_time across a buried tombstone: cancel the head, then peek.
        q.cancel(ids[63]);
        assert_eq!(q.peek_time(), Some(t(64.0)));
        let mut drained = 0;
        while q.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 36);
        assert_eq!(q.states.len(), 0);
    }

    #[test]
    fn shrink_to_fit_releases_capacity_after_clear() {
        let mut q = EventQueue::with_capacity(4096);
        for i in 0..4096 {
            q.push(t(i as f64), i);
        }
        q.clear();
        q.shrink_to_fit();
        assert!(q.capacity() < 4096, "capacity released: {}", q.capacity());
        // Still fully usable afterwards.
        q.push(t(1.0), 7);
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
    }

    #[test]
    fn out_of_order_pops_keep_slab_bounded_by_span() {
        // Events fire in time order, not seq order: the slab holds the
        // outstanding span but compacts as the oldest seqs retire.
        let mut q = EventQueue::new();
        // Descending times: seq 0 fires last.
        let n = 64u64;
        for i in 0..n {
            q.push(t((n - i) as f64), i);
        }
        // Pop half (the latest-scheduled, earliest-firing half).
        for _ in 0..n / 2 {
            q.pop();
        }
        // seq 0 (firing last) is still pending, so nothing compacts yet…
        assert_eq!(q.states.len() as u64, n);
        // …but draining the rest retires everything.
        while q.pop().is_some() {}
        assert_eq!(q.states.len(), 0);
    }

    #[test]
    fn calendar_queue_survives_growth_and_shrink() {
        // Push enough to force several doublings (and width re-estimates),
        // drain most to force halvings, and check global order throughout.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let n = 1000i64;
        for i in 0..n {
            // A scrambled but deterministic time pattern with ties.
            let at = ((i * 2_654_435_761) % 977) as f64 * 0.25;
            q.push(t(at), i);
        }
        assert_eq!(q.len(), 1000);
        let mut prev: Option<(SimTime, i64)> = None;
        let mut popped = 0i64;
        let mut repushed = 0i64;
        while let Some((at, e)) = q.pop() {
            if let Some((pat, pe)) = prev {
                assert!(
                    pat < at || (pat == at && pe < e),
                    "order violation: ({pat}, {pe}) before ({at}, {e})"
                );
            }
            prev = Some((at, e));
            popped += 1;
            // Interleave a bounded number of re-pushes early in the drain
            // to stress cursor rewinds and same-time ties.
            if popped % 7 == 0 && repushed < 50 {
                q.push(at, n + repushed);
                repushed += 1;
                prev = None; // the re-pushed event shares the popped time
            }
        }
        assert_eq!(popped, n + repushed);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_queue_handles_far_future_overflow_day() {
        // Events spread across wildly different magnitudes exercise the
        // overflow day and direct seek: a tight cluster now, one event a
        // million seconds out, then a rewind behind the cursor.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.push(t(1e6), 99);
        for i in 0..20 {
            q.push(t(i as f64 * 0.01), i);
        }
        for i in 0..20 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
        // Everything near has drained; the far event is next.
        assert_eq!(q.peek_time(), Some(t(1e6)));
        // A late push behind the cursor must still pop first.
        q.push(t(0.5), 7);
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
        assert_eq!(q.pop().map(|(_, e)| e), Some(99));
        assert!(q.pop().is_none());
    }
}
