//! A deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by `(SimTime, sequence)`:
//! events fire in timestamp order, and events scheduled for the same instant
//! fire in the order they were inserted. That tie-break is what makes whole
//! campaigns bit-for-bit replayable from a seed.
//!
//! Lifecycle bookkeeping (which sequence numbers are live, cancelled or
//! already fired) lives in a slab: a `VecDeque` of one-byte states indexed
//! by `sequence - base`, rather than a pair of hash sets. Every push, pop
//! and cancel is hash-free, and fired prefixes compact away eagerly so the
//! slab's size tracks the *span* of outstanding events, not the total ever
//! scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Lifecycle of one scheduled sequence number.
///
/// Invariant: an event's heap entry exists iff its slot is `Live` or
/// `Cancelled`; the slot turns `Fired` exactly when the entry leaves the
/// heap (popped live, or skipped as a tombstone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Live,
    Cancelled,
    Fired,
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order is reversed so the BinaryHeap (a max-heap) pops the earliest event,
// and among equal timestamps the lowest sequence number.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled for a [`SimTime`] and popped in
/// `(time, insertion order)` order. Cancellation is lazy: a cancelled event
/// stays in the heap but is skipped when reached.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Lifecycle slab: state of sequence number `base_seq + i` at index
    /// `i`. Sequences below `base_seq` have fired and been compacted out.
    states: VecDeque<Slot>,
    base_seq: u64,
    /// Number of `Slot::Live` entries (= the queue's length).
    live_count: usize,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .field("payload", &self.payload)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            states: VecDeque::new(),
            base_seq: 0,
            live_count: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// a simulation with a known event population never reallocates the
    /// heap mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            states: VecDeque::with_capacity(capacity),
            base_seq: 0,
            live_count: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events on top
    /// of the current length.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.states.reserve(additional);
    }

    /// Number of events the heap can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// State slot of `seq`, if it is still tracked (not compacted away and
    /// not from a different queue).
    fn slot(&self, seq: u64) -> Option<Slot> {
        let idx = seq.checked_sub(self.base_seq)?;
        self.states.get(usize::try_from(idx).ok()?).copied()
    }

    fn set_slot(&mut self, seq: u64, slot: Slot) {
        debug_assert!(seq >= self.base_seq);
        let idx = (seq - self.base_seq) as usize;
        self.states[idx] = slot;
    }

    /// Drops the fired prefix of the slab: once the oldest tracked
    /// sequences have left the heap there is nothing to remember about
    /// them, so long campaigns don't accumulate bookkeeping for every
    /// event ever scheduled.
    fn compact_front(&mut self) {
        while self.states.front() == Some(&Slot::Fired) {
            self.states.pop_front();
            self.base_seq += 1;
        }
    }

    /// Schedules `payload` to fire at `at`; returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            payload,
        });
        self.states.push_back(Slot::Live);
        self.live_count += 1;
        self.next_seq += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.slot(id.0) == Some(Slot::Live) {
            self.set_slot(id.0, Slot::Cancelled);
            self.live_count -= 1;
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            let was_live = self.slot(ev.seq) == Some(Slot::Live);
            self.set_slot(ev.seq, Slot::Fired);
            self.compact_front();
            if was_live {
                self.live_count -= 1;
                return Some((ev.at, ev.payload));
            }
        }
        None
    }

    /// Returns the timestamp of the earliest live event without removing
    /// it. Cancelled tombstones reached at the head are discarded as a
    /// side effect (which is why this takes `&mut self`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.slot(ev.seq) == Some(Slot::Live) {
                return Some(ev.at);
            }
            // Tombstone: drop the heap entry and retire its slot.
            let seq = ev.seq;
            self.heap.pop();
            self.set_slot(seq, Slot::Fired);
            self.compact_front();
        }
        None
    }

    /// Returns the number of live (not fired, not cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Returns `true` if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event. Capacity is retained; call
    /// [`EventQueue::shrink_to_fit`] afterwards to release it when the
    /// queue is reused across differently sized runs.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.states.clear();
        self.base_seq = self.next_seq;
        self.live_count = 0;
    }

    /// Releases excess capacity held by the heap and the lifecycle slab —
    /// the `clear`-then-shrink path keeps long campaigns from holding
    /// peak-size allocations across mixes.
    pub fn shrink_to_fit(&mut self) {
        self.heap.shrink_to_fit();
        self.states.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 'c');
        q.push(t(1.0), 'a');
        q.push(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let keep = q.push(t(1.0), "keep");
        let drop = q.push(t(0.5), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let _ = keep;
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let head = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn peek_time_discards_multiple_tombstones_and_preserves_live_head() {
        // Regression for the cancelled-head path: several tombstones in a
        // row must all be skipped, the cancelled ids must stay dead (a
        // later cancel of them returns false), and the surviving head must
        // still pop normally after the peek.
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), 'a');
        let b = q.push(t(1.5), 'b');
        q.push(t(2.0), 'c');
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(a), "tombstone discarded by peek stays dead");
        assert!(!q.cancel(b));
        assert_eq!(q.pop().map(|(_, e)| e), Some('c'));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), 1);
        assert!(q.pop().is_some());
        assert!(
            !q.cancel(id),
            "cancelling an already-fired event is a no-op"
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let before = q.capacity();
        for i in 0..64 {
            q.push(t(i as f64), i);
        }
        assert_eq!(q.capacity(), before, "no reallocation within capacity");
        q.reserve(128);
        assert!(q.capacity() >= 64 + 128);
        // Queue semantics are unchanged.
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), 1);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(!q.cancel(id), "cleared events cannot be cancelled");
        // The queue remains usable with fresh sequence numbers.
        q.push(t(2.0), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn fired_bookkeeping_compacts_eagerly() {
        // Popping in seq order leaves no slab entries behind; interleaved
        // cancels retire with the heap tombstones they shadow.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100).map(|i| q.push(t(i as f64), i)).collect();
        for id in ids.iter().skip(1).step_by(2) {
            q.cancel(*id);
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 50);
        assert_eq!(q.states.len(), 0, "all slots compacted after drain");
        assert_eq!(q.base_seq, 100);
    }

    #[test]
    fn shrink_to_fit_releases_capacity_after_clear() {
        let mut q = EventQueue::with_capacity(4096);
        for i in 0..4096 {
            q.push(t(i as f64), i);
        }
        q.clear();
        q.shrink_to_fit();
        assert!(q.capacity() < 4096, "capacity released: {}", q.capacity());
        // Still fully usable afterwards.
        q.push(t(1.0), 7);
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
    }

    #[test]
    fn out_of_order_pops_keep_slab_bounded_by_span() {
        // Events fire in time order, not seq order: the slab holds the
        // outstanding span but compacts as the oldest seqs retire.
        let mut q = EventQueue::new();
        // Descending times: seq 0 fires last.
        let n = 64u64;
        for i in 0..n {
            q.push(t((n - i) as f64), i);
        }
        // Pop half (the latest-scheduled, earliest-firing half).
        for _ in 0..n / 2 {
            q.pop();
        }
        // seq 0 (firing last) is still pending, so nothing compacts yet…
        assert_eq!(q.states.len() as u64, n);
        // …but draining the rest retires everything.
        while q.pop().is_some() {}
        assert_eq!(q.states.len(), 0);
    }
}
