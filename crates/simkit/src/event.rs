//! A deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by `(SimTime, sequence)`:
//! events fire in timestamp order, and events scheduled for the same instant
//! fire in the order they were inserted. That tie-break is what makes whole
//! campaigns bit-for-bit replayable from a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order is reversed so the BinaryHeap (a max-heap) pops the earliest event,
// and among equal timestamps the lowest sequence number.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled for a [`SimTime`] and popped in
/// `(time, insertion order)` order. Cancellation is lazy: a cancelled event
/// stays in the heap but is skipped when reached.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Sequence numbers currently in the heap and not cancelled.
    live: std::collections::HashSet<EventId>,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .field("payload", &self.payload)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// a simulation with a known event population never reallocates the
    /// heap mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            live: std::collections::HashSet::with_capacity(capacity),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Reserves room for at least `additional` more pending events on top
    /// of the current length.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.live.reserve(additional);
    }

    /// Number of events the heap can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `payload` to fire at `at`; returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            payload,
        });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&EventId(ev.seq)) {
                continue;
            }
            self.live.remove(&EventId(ev.seq));
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&EventId(ev.seq)) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&EventId(seq));
                continue;
            }
            return Some(ev.at);
        }
        None
    }

    /// Returns the number of live (not fired, not cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 'c');
        q.push(t(1.0), 'a');
        q.push(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let keep = q.push(t(1.0), "keep");
        let drop = q.push(t(0.5), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        let _ = keep;
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let head = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(t(1.0), 1);
        assert!(q.pop().is_some());
        assert!(
            !q.cancel(id),
            "cancelling an already-fired event is a no-op"
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let before = q.capacity();
        for i in 0..64 {
            q.push(t(i as f64), i);
        }
        assert_eq!(q.capacity(), before, "no reallocation within capacity");
        q.reserve(128);
        assert!(q.capacity() >= 64 + 128);
        // Queue semantics are unchanged.
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
